"""repro — a reproduction of *Optimization of Object-Oriented Recursive
Queries using Cost-Controlled Strategies* (Lanzelotte, Valduriez, Zaït;
SIGMOD 1992).

The library implements the paper's full stack:

* a conceptual schema model with classes, relations, ``isa``
  inheritance, inverse attributes and methods (:mod:`repro.schema`);
* query graphs with tree-shaped adornments and recursive views
  (:mod:`repro.querygraph`), plus an OQL-like text front-end
  (:mod:`repro.lang`);
* a simulated direct-storage object store with pages, an LRU buffer
  pool, clustering, fragments, B⁺-trees and path indices
  (:mod:`repro.physical`);
* the Processing-Tree plan algebra (:mod:`repro.plans`);
* the Figure-5 cost model and the Section 4.6 simplified/symbolic model
  (:mod:`repro.cost`);
* an executor with semi-naive fixpoint evaluation and measured I/O
  (:mod:`repro.engine`);
* the cost-controlled optimizer — rewrite, translate, generatePT,
  transformPT with selection/join push-through-recursion decided by
  cost — plus deductive/naive/exhaustive baselines (:mod:`repro.core`);
* synthetic workloads and the paper's canned queries
  (:mod:`repro.workloads`).

Quick start::

    from repro import (
        generate_music_database, MusicConfig,
        cost_controlled_optimizer, Engine,
    )
    from repro.workloads import fig3_query

    db = generate_music_database(MusicConfig(lineages=8, generations=8))
    db.build_paper_indexes()
    result = cost_controlled_optimizer(db.physical).optimize(fig3_query())
    rows = Engine(db.physical).execute(result.plan).rows
"""

from repro.core import (
    Optimizer,
    OptimizerConfig,
    OptimizationResult,
    cost_controlled_optimizer,
    deductive_optimizer,
    exhaustive_optimizer,
    naive_optimizer,
)
from repro.cost import (
    CostParameters,
    DetailedCostModel,
    SimplifiedCostModel,
    SimplifiedParameters,
)
from repro.engine import Engine, ExecutionResult, ReferenceEvaluator
from repro.errors import ReproError
from repro.physical import BufferPool, ObjectStore, PhysicalSchema
from repro.schema import Catalog, build_music_catalog
from repro.workloads import (
    MusicConfig,
    MusicDatabase,
    fig2_query,
    fig3_query,
    generate_music_database,
    join_push_query,
)

__version__ = "1.0.0"

__all__ = [
    "Optimizer",
    "OptimizerConfig",
    "OptimizationResult",
    "cost_controlled_optimizer",
    "deductive_optimizer",
    "exhaustive_optimizer",
    "naive_optimizer",
    "CostParameters",
    "DetailedCostModel",
    "SimplifiedCostModel",
    "SimplifiedParameters",
    "Engine",
    "ExecutionResult",
    "ReferenceEvaluator",
    "ReproError",
    "BufferPool",
    "ObjectStore",
    "PhysicalSchema",
    "Catalog",
    "build_music_catalog",
    "MusicConfig",
    "MusicDatabase",
    "fig2_query",
    "fig3_query",
    "generate_music_database",
    "join_push_query",
    "__version__",
]
