"""The feedback loop: telemetry → recalibration → regression detection.

The paper's push/no-push decisions are only as good as the cost
model's constants and cardinality estimates; this module makes the
optimizer *cost-controlled* in the closed-loop sense by feeding the
measured actuals of :class:`~repro.obs.history.QueryTelemetryStore`
back into the decision machinery:

* **online recalibration** — reuses the NNLS fit of
  :mod:`repro.cost.calibrate`, but sources the probes from accumulated
  production observations instead of a synthetic probe workload.  The
  result is an updated :class:`~repro.cost.params.CostParameters` the
  service can hot-swap behind a flag;
* **plan-regression detection** — when drift invalidation or a
  recalibration makes the plan cache re-optimize a cached query, the
  old and new PTs are diffed (operator inventory + push/no-push
  choice) and the new plan is put on watch.  Once it has enough runs,
  its *measured* latency history is compared against the old plan's;
  beyond ``regression_ratio`` the change is flagged as a
  ``plan_regression`` event carrying both plan fingerprints — and the
  old plan is kept around so the service can *pin* it back.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cost.params import CostParameters
from repro.errors import ServiceError
from repro.obs.explain import EVAL_COST, PAGE_READ_COST
from repro.obs.history import (
    Observation,
    OperatorActual,
    OperatorEstimate,
    PlanHistory,
    QueryTelemetryStore,
    plan_fingerprint,
)
from repro.obs.profile import PlanProfiler, assign_node_ids

__all__ = [
    "FeedbackConfig",
    "FeedbackManager",
    "PlanChange",
    "build_observation",
    "distributed_plan_estimate",
    "operator_estimates",
    "plan_diff",
    "plan_pushes_into_recursion",
]


@dataclass
class FeedbackConfig:
    """Knobs of the control loop."""

    #: Per-plan observation ring size.
    history_window: int = 128
    #: How many plan histories to keep (least-recently-observed drop).
    max_plans: int = 256
    #: JSONL file the telemetry survives restarts in; ``None`` keeps
    #: history in memory only.
    persist_path: Optional[str] = None
    #: Size cap (bytes) on the JSONL file; exceeding it triggers an
    #: oldest-first rotation + compaction.  ``None`` = unbounded.
    history_max_bytes: Optional[int] = None
    #: A re-optimized plan whose median measured latency exceeds the
    #: old plan's by more than this factor is flagged as a regression.
    regression_ratio: float = 1.5
    #: Runs of the new plan required before the comparison is made.
    regression_min_runs: int = 3
    #: Observations required before :meth:`FeedbackManager.recalibrate`
    #: will fit (the NNLS itself needs at least five).
    recalibrate_min_samples: int = 8
    #: Profile every Nth query so per-operator actual costs accumulate
    #: with bounded overhead; 0 records cardinalities only.
    profile_sample_every: int = 0
    #: Automatically pin the old plan when a regression is flagged.
    auto_pin: bool = False


@dataclass
class PlanChange:
    """One re-optimization of a cached query, under watch."""

    canonical: str
    old_fingerprint: str
    new_fingerprint: str
    old_plan: object
    old_cost: float
    new_cost: float
    reason: str
    diff: dict = field(default_factory=dict)
    at: float = field(default_factory=time.time)
    #: ``None`` while pending, then ``"regression"`` or ``"ok"``.
    verdict: Optional[str] = None


# -- plan structure helpers ---------------------------------------------------


def plan_pushes_into_recursion(plan) -> bool:
    """Whether a PT carries a selection inside a ``Fix`` body (the
    paper's push-through-recursion choice)."""
    from repro.plans.nodes import Fix, Sel

    for node in plan.walk():
        if isinstance(node, Fix):
            for inner in node.body.walk():
                if isinstance(inner, Sel):
                    return True
    return False


def _operator_inventory(plan) -> Dict[str, int]:
    inventory: Dict[str, int] = {}
    for node in plan.walk():
        key = f"{type(node).__name__} {node.label()}"
        inventory[key] = inventory.get(key, 0) + 1
    return inventory


def plan_diff(old_plan, new_plan) -> dict:
    """Operator-tree diff between two PTs: the push decision on each
    side plus the operators only one side has."""
    old_ops = _operator_inventory(old_plan)
    new_ops = _operator_inventory(new_plan)
    removed = [
        op
        for op, count in old_ops.items()
        for _ in range(count - new_ops.get(op, 0))
        if count > new_ops.get(op, 0)
    ]
    added = [
        op
        for op, count in new_ops.items()
        for _ in range(count - old_ops.get(op, 0))
        if count > old_ops.get(op, 0)
    ]
    return {
        "old_push": plan_pushes_into_recursion(old_plan),
        "new_push": plan_pushes_into_recursion(new_plan),
        "removed": removed,
        "added": added,
        "old_size": sum(old_ops.values()),
        "new_size": sum(new_ops.values()),
    }


def operator_estimates(plan, cost_model) -> Dict[str, OperatorEstimate]:
    """Per-node estimates keyed by the stable pre-order node ids —
    computed once per plan registration, not per query."""
    if cost_model is None:
        return {}
    try:
        _report, captured = cost_model.annotated_report(plan)
    except Exception:
        return {}
    node_ids = assign_node_ids(plan)
    estimates: Dict[str, OperatorEstimate] = {}
    for node in plan.walk():
        node_id = node_ids[id(node)]
        if node_id in estimates:
            continue
        entry = OperatorEstimate(node_id, node.label(), type(node).__name__)
        capture = captured.get(id(node))
        if capture is not None:
            entry.est_rows = round(capture.tuples, 4)
            entry.est_cost = round(capture.cost, 4)
        estimates[node_id] = entry
    return estimates


def distributed_plan_estimate(cost_model) -> Optional[Dict[str, float]]:
    """Aggregate the cost model's per-Fix distributed term breakdowns
    (:attr:`~repro.cost.model.DetailedCostModel.fix_breakdowns`, filled
    by the last ``report``/``annotated_report``) into one plan-level
    estimate; ``None`` when the plan was costed at ``shards == 1``."""
    breakdowns = getattr(cost_model, "fix_breakdowns", None)
    if not breakdowns:
        return None
    total: Dict[str, float] = {
        "shards": 0.0,
        "rounds": 0.0,
        "exchange_tuples": 0.0,
        "exchange_frames": 0.0,
        "network": 0.0,
        "disk_base": 0.0,
        "disk": 0.0,
        "skew": 1.0,
    }
    for breakdown in breakdowns.values():
        total["shards"] = max(total["shards"], float(breakdown["shards"]))
        total["skew"] = max(total["skew"], float(breakdown["skew"]))
        for key in (
            "rounds",
            "exchange_tuples",
            "exchange_frames",
            "network",
            "disk_base",
            "disk",
        ):
            total[key] += float(breakdown.get(key, 0.0))
    return total


def build_observation(
    request_id: str,
    estimated_cost: float,
    measured_cost: float,
    execute_seconds: float,
    rows: int,
    runtime,
    profiler: Optional[PlanProfiler] = None,
    weight: float = 1.0,
    committed: bool = True,
) -> Observation:
    """Turn one execution's metrics into a telemetry observation.

    Profiled runs carry full per-node actuals (rows, cost, time,
    reads, evals); plain runs carry the per-node cardinalities the
    engine already counts in
    :attr:`~repro.engine.metrics.RuntimeMetrics.tuples_by_node` — free
    either way on the serving hot path.

    ``weight``/``committed`` carry the overhead governor's sampling
    design: head-sampled runs record their inverse admission
    probability, and runs the governor skipped detailed observability
    for are marked uncommitted so recalibration excludes them (see
    :meth:`QueryTelemetryStore.calibration_samples`).
    """
    # Imported here (not at module scope): calibrate pulls in the
    # engine, whose import re-enters this package.
    from repro.cost.calibrate import events_of

    operators: Dict[str, OperatorActual] = {}
    if profiler is not None:
        for node_id, profile in profiler.profiles.items():
            reads = profile.page_reads + profile.index_page_reads
            operators[node_id] = OperatorActual(
                rows=profile.tuples_out,
                cost=reads * PAGE_READ_COST
                + profile.predicate_evals * EVAL_COST,
                seconds=profile.wall_seconds,
                page_reads=reads,
                predicate_evals=profile.predicate_evals,
            )
    else:
        for node_id, count in runtime.tuples_by_node.items():
            operators[node_id] = OperatorActual(rows=count)
    distributed = None
    if getattr(runtime, "shards_used", 0) > 1:
        distributed = {
            "shards": float(runtime.shards_used),
            "rounds": float(runtime.exchange_rounds),
            "exchange_tuples": float(runtime.exchange_tuples),
            "exchange_bytes": float(runtime.exchange_bytes),
            "exchange_frames": float(runtime.exchange_frames),
            "max_shard_reads": float(
                max(runtime.reads_by_shard.values(), default=0)
            ),
            "observed_skew": runtime.observed_skew(),
            "barrier_wait_s": runtime.barrier_wait_seconds,
        }
    return Observation(
        at=time.time(),
        request_id=request_id,
        estimated_cost=estimated_cost,
        measured_cost=measured_cost,
        execute_seconds=execute_seconds,
        rows=rows,
        events=events_of(runtime),
        operators=operators,
        profiled=profiler is not None,
        distributed=distributed,
        weight=weight,
        committed=committed,
    )


class FeedbackManager:
    """Owns the telemetry store, the pending plan changes, and the
    recalibration entry point.  Thread-safe; one per service."""

    def __init__(self, config: Optional[FeedbackConfig] = None) -> None:
        self.config = config or FeedbackConfig()
        self.store = QueryTelemetryStore(
            window=self.config.history_window,
            max_plans=self.config.max_plans,
            persist_path=self.config.persist_path,
            max_bytes=self.config.history_max_bytes,
        )
        self._lock = threading.Lock()
        #: canonical query -> plan change awaiting a verdict.
        self._pending: Dict[str, PlanChange] = {}
        #: canonical query -> the last change flagged as a regression
        #: (keeps the old plan object alive for pinning).
        self._regressions: Dict[str, PlanChange] = {}
        self._sample_counter = 0
        self.recalibrations = 0
        self.regressions_flagged = 0
        self.last_calibration: Optional[dict] = None

    # -- the per-query path --------------------------------------------------

    def should_profile(self) -> bool:
        """Sampling decision for the periodic profiled run."""
        every = self.config.profile_sample_every
        if every <= 0:
            return False
        with self._lock:
            self._sample_counter += 1
            return self._sample_counter % every == 0

    def register_plan(
        self, canonical: str, plan, plan_cost: float, cost_model=None
    ) -> str:
        """Fingerprint a (new or re-registered) plan and freeze its
        per-node estimates; returns the fingerprint."""
        fingerprint = plan_fingerprint(plan)
        estimates = operator_estimates(plan, cost_model)
        self.store.register_plan(
            canonical,
            fingerprint,
            plan_cost,
            estimates,
            # annotated_report above refreshed the model's per-Fix
            # distributed breakdowns for exactly this plan.
            distributed=distributed_plan_estimate(cost_model),
        )
        return fingerprint

    def plan_changed(
        self,
        canonical: str,
        old_plan,
        old_cost: float,
        new_plan,
        new_cost: float,
        reason: str,
    ) -> Optional[dict]:
        """A cached query was re-optimized; put the new plan on watch.

        Returns the recorded ``plan_change`` event, or ``None`` when
        the "new" plan is structurally identical to the old one.
        """
        old_fp = plan_fingerprint(old_plan)
        new_fp = plan_fingerprint(new_plan)
        if old_fp == new_fp:
            return None
        change = PlanChange(
            canonical,
            old_fp,
            new_fp,
            old_plan,
            old_cost,
            new_cost,
            reason,
            plan_diff(old_plan, new_plan),
        )
        with self._lock:
            self._pending[canonical] = change
        return self.store.record_event(
            "plan_change",
            query=canonical,
            old_fingerprint=old_fp,
            new_fingerprint=new_fp,
            reason=reason,
            diff=change.diff,
        )

    def observe(
        self, canonical: str, fingerprint: str, observation: Observation
    ) -> Optional[dict]:
        """Record one execution; returns a ``plan_regression`` event
        when this run settles a pending plan change as a regression."""
        self.store.record(fingerprint, observation)
        return self._judge_pending(canonical, fingerprint)

    def _judge_pending(
        self, canonical: str, fingerprint: str
    ) -> Optional[dict]:
        with self._lock:
            change = self._pending.get(canonical)
            if change is None or change.new_fingerprint != fingerprint:
                return None
        new_history = self.store.plan(change.new_fingerprint)
        old_history = self.store.plan(change.old_fingerprint)
        if (
            new_history is None
            or len(new_history.observations) < self.config.regression_min_runs
        ):
            return None
        with self._lock:
            self._pending.pop(canonical, None)
        if old_history is None or not old_history.observations:
            return None  # nothing to compare against
        old_median = old_history.median_latency() or 0.0
        new_median = new_history.median_latency() or 0.0
        ratio = new_median / max(old_median, 1e-9)
        if ratio <= self.config.regression_ratio:
            change.verdict = "ok"
            self.store.record_event(
                "plan_change_ok",
                query=canonical,
                old_fingerprint=change.old_fingerprint,
                new_fingerprint=change.new_fingerprint,
                latency_ratio=round(ratio, 3),
            )
            return None
        change.verdict = "regression"
        with self._lock:
            self._regressions[canonical] = change
            self.regressions_flagged += 1
        return self.store.record_event(
            "plan_regression",
            query=canonical,
            old_fingerprint=change.old_fingerprint,
            new_fingerprint=change.new_fingerprint,
            old_median_ms=round(old_median * 1000, 3),
            new_median_ms=round(new_median * 1000, 3),
            latency_ratio=round(ratio, 3),
            reason=change.reason,
            diff=change.diff,
            auto_pin=self.config.auto_pin,
        )

    # -- pinning support -----------------------------------------------------

    def regression_for(self, canonical: str) -> Optional[PlanChange]:
        """The last flagged regression of a query (old plan included)."""
        with self._lock:
            return self._regressions.get(canonical)

    def record_pin(self, canonical: str, fingerprint: str, pinned: bool) -> dict:
        with self._lock:
            if pinned:
                self._regressions.pop(canonical, None)
                self._pending.pop(canonical, None)
        return self.store.record_event(
            "plan_pinned" if pinned else "plan_unpinned",
            query=canonical,
            fingerprint=fingerprint,
        )

    # -- recalibration -------------------------------------------------------

    def recalibrate(self, base: Optional[CostParameters] = None):
        """Fit fresh unit weights from the accumulated production
        actuals (the online counterpart of
        :func:`repro.cost.calibrate.calibrate`); returns
        ``(CalibratedWeights, CostParameters, report_dict)``."""
        from repro.cost.calibrate import EVENT_NAMES, fit_from_samples

        samples = self.store.calibration_samples()
        # The fit is underdetermined below one sample per *exercised*
        # event weight (features the workload never produced — e.g. the
        # exchange columns on a single-store deployment — cost nothing).
        exercised = sum(
            1
            for name in EVENT_NAMES
            if any(sample.get(name, 0.0) for sample in samples)
        )
        needed = max(self.config.recalibrate_min_samples, exercised)
        if len(samples) < needed:
            raise ServiceError(
                f"recalibration needs at least {needed} observed "
                f"queries, have {len(samples)}"
            )
        weights = fit_from_samples(samples)
        params = weights.to_parameters(base)
        params, distributed_report = self._refit_distributed(params)
        with self._lock:
            self.recalibrations += 1
        report = {
            "samples": len(samples),
            "residual": round(weights.residual, 6),
            "weights": {
                name: round(value, 6)
                for name, value in weights.weights.items()
            },
            "parameters": {
                "page_read": params.page_read,
                "eval_per_tuple": params.eval_per_tuple,
                "tuple_cpu": params.tuple_cpu,
                "index_page": params.index_page,
                "network_per_tuple": params.network_per_tuple,
                "network_per_round": params.network_per_round,
                "shard_skew": params.shard_skew,
            },
        }
        if distributed_report is not None:
            report["distributed"] = distributed_report
        self.last_calibration = report
        self.store.record_event("recalibration", **report)
        return weights, params, report

    def _refit_distributed(self, params: CostParameters):
        """Refit ``shard_skew`` against the sharded observations: pick
        the candidate (1.0, each observed skew, their mean, the current
        value) that minimizes the store's distributed-term q-error.
        The argmin over a set containing the incumbent guarantees the
        misestimate never gets worse; on a skewed workload it strictly
        improves.  No sharded observations -> ``params`` unchanged."""
        from dataclasses import replace

        before = self.store.distributed_misestimate(params)
        if before is None:
            return params, None
        skews = self.store.observed_skews()
        candidates = {1.0, max(1.0, params.shard_skew)}
        candidates.update(skews)
        if skews:
            candidates.add(sum(skews) / len(skews))
        best_skew = max(1.0, params.shard_skew)
        best_score = before
        for candidate in sorted(candidates):
            trial = replace(params, shard_skew=candidate)
            score = self.store.distributed_misestimate(trial)
            if score is not None and score < best_score:
                best_skew, best_score = candidate, score
        params = replace(params, shard_skew=best_skew)
        return params, {
            "sharded_samples": len(skews),
            "observed_skew": (
                round(sum(skews) / len(skews), 4) if skews else 1.0
            ),
            "shard_skew": round(best_skew, 4),
            "misestimate_before": round(before, 4),
            "misestimate_after": round(best_score, 4),
        }

    # -- reporting -----------------------------------------------------------

    def misestimate_by_query(self) -> Dict[str, dict]:
        return self.store.misestimate_by_query()

    def snapshot(self) -> dict:
        with self._lock:
            pending = [
                {
                    "query": change.canonical,
                    "old_fingerprint": change.old_fingerprint,
                    "new_fingerprint": change.new_fingerprint,
                    "reason": change.reason,
                }
                for change in self._pending.values()
            ]
            regressions = [
                {
                    "query": change.canonical,
                    "old_fingerprint": change.old_fingerprint,
                    "new_fingerprint": change.new_fingerprint,
                    "reason": change.reason,
                }
                for change in self._regressions.values()
            ]
        return {
            "recalibrations": self.recalibrations,
            "regressions_flagged": self.regressions_flagged,
            "pending_changes": pending,
            "regressions": regressions,
            "last_calibration": self.last_calibration,
            "tracked_plans": len(self.store),
        }

    def close(self) -> None:
        self.store.close()
