"""Persistent query telemetry: estimated vs. measured, per plan, per
operator, across restarts.

PR 2's ``EXPLAIN ANALYZE`` pairs the cost model's per-node estimates
with one execution's actuals — and then throws the pairing away.  The
:class:`QueryTelemetryStore` keeps it: for every executed query it
records, per **plan fingerprint** (a structural hash of the PT, stable
across processes) and per **operator** (the stable pre-order node ids
of :func:`repro.obs.profile.assign_node_ids`, the same ids that key
:attr:`~repro.engine.metrics.RuntimeMetrics.tuples_by_node`), the
estimated vs. measured cardinalities, page reads, predicate
evaluations and wall time.

The store is bounded in memory (a ring of observations per plan, an
LRU bound on the number of plans) and persistable as JSONL — one
self-describing record per line (``plan`` / ``obs`` / ``event``) — so
telemetry survives service restarts and can be shipped as a CI
artifact.  :mod:`repro.obs.feedback` builds the control loop on top:
online cost-model recalibration and plan-regression detection.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

__all__ = [
    "plan_fingerprint",
    "OperatorEstimate",
    "OperatorActual",
    "Observation",
    "PlanHistory",
    "QueryTelemetryStore",
]


def plan_fingerprint(plan) -> str:
    """A structural hash of a processing tree, stable across processes.

    Hashes the pre-order sequence of ``(kind, label, arity)`` triples,
    so two PTs with the same operators in the same shape — however they
    were produced — share a fingerprint, while any re-ordering, push
    decision, or operator substitution changes it.
    """
    hasher = hashlib.sha256()
    for node in plan.walk():
        hasher.update(type(node).__name__.encode("utf-8"))
        hasher.update(b"\x1f")
        hasher.update(node.label().encode("utf-8"))
        hasher.update(b"\x1f")
        hasher.update(str(len(node.children)).encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()[:16]


def query_class(canonical: str) -> str:
    """Short stable id for one canonical query text (a metrics-label
    safe stand-in for the text itself)."""
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]


def q_error(estimated: float, actual: float) -> float:
    """The symmetric misestimate ratio ``max(est/act, act/est)``.

    1.0 is a perfect estimate; both zero is also perfect; one-sided
    zero is scored against a one-unit floor instead of infinity so a
    single empty operator cannot dominate a mean.
    """
    if estimated <= 0 and actual <= 0:
        return 1.0
    est = max(abs(estimated), 1.0 if estimated <= 0 else 1e-9)
    act = max(abs(actual), 1.0 if actual <= 0 else 1e-9)
    return max(est / act, act / est)


@dataclass
class OperatorEstimate:
    """The cost model's per-node prediction, fixed at plan time."""

    node_id: str
    label: str
    kind: str
    est_rows: Optional[float] = None
    est_cost: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "label": self.label,
            "kind": self.kind,
            "est_rows": self.est_rows,
            "est_cost": self.est_cost,
        }


@dataclass
class OperatorActual:
    """One execution's measured counters for one node (profiled runs
    carry everything; unprofiled runs carry cardinalities only)."""

    rows: int = 0
    cost: Optional[float] = None
    seconds: Optional[float] = None
    page_reads: Optional[float] = None
    predicate_evals: Optional[int] = None

    def to_dict(self) -> dict:
        payload: Dict[str, object] = {"rows": self.rows}
        if self.cost is not None:
            payload["cost"] = round(self.cost, 4)
        if self.seconds is not None:
            payload["ms"] = round(self.seconds * 1000, 4)
        if self.page_reads is not None:
            payload["page_reads"] = round(self.page_reads, 2)
        if self.predicate_evals is not None:
            payload["predicate_evals"] = self.predicate_evals
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "OperatorActual":
        return cls(
            rows=int(payload.get("rows", 0)),
            cost=payload.get("cost"),
            seconds=(
                payload["ms"] / 1000.0 if payload.get("ms") is not None else None
            ),
            page_reads=payload.get("page_reads"),
            predicate_evals=payload.get("predicate_evals"),
        )


@dataclass
class Observation:
    """One executed query, as remembered by the telemetry store."""

    at: float
    request_id: str
    estimated_cost: float
    measured_cost: float
    execute_seconds: float
    rows: int
    #: Query-level event counts — the calibration features of
    #: :data:`repro.cost.calibrate.EVENT_NAMES`.
    events: Dict[str, float] = field(default_factory=dict)
    #: Per-node actuals keyed by pre-order node id.
    operators: Dict[str, OperatorActual] = field(default_factory=dict)
    profiled: bool = False
    #: Distributed actuals (None for single-store runs): exchanged
    #: tuples/bytes/frames, rounds, shard width, the max per-shard
    #: logical reads, observed max/mean load skew and barrier wait —
    #: the measured counterparts of the distributed cost terms.
    distributed: Optional[Dict[str, float]] = None
    #: Inverse sampling probability assigned by the overhead governor.
    #: A head-sampled run admitted at 1-in-*stride* carries *stride*,
    #: so downstream estimators can weight it back to unbiased.
    weight: float = 1.0
    #: False when the governor skipped detailed observability for this
    #: run — the observation still feeds latency/regression tracking,
    #: but recalibration must not consume it (its event counters were
    #: collected outside the sampling design).
    committed: bool = True

    def to_dict(self) -> dict:
        payload = {
            "at": round(self.at, 3),
            "request_id": self.request_id,
            "estimated_cost": round(self.estimated_cost, 4),
            "measured_cost": round(self.measured_cost, 4),
            "execute_ms": round(self.execute_seconds * 1000, 4),
            "rows": self.rows,
            "events": {k: round(v, 4) for k, v in self.events.items()},
            "operators": {
                node_id: actual.to_dict()
                for node_id, actual in self.operators.items()
            },
            "profiled": self.profiled,
        }
        if self.distributed is not None:
            payload["distributed"] = {
                k: round(float(v), 6) for k, v in self.distributed.items()
            }
        if self.weight != 1.0:
            payload["weight"] = round(self.weight, 4)
        if not self.committed:
            payload["committed"] = False
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Observation":
        return cls(
            at=float(payload.get("at", 0.0)),
            request_id=payload.get("request_id", ""),
            estimated_cost=float(payload.get("estimated_cost", 0.0)),
            measured_cost=float(payload.get("measured_cost", 0.0)),
            execute_seconds=float(payload.get("execute_ms", 0.0)) / 1000.0,
            rows=int(payload.get("rows", 0)),
            events={
                k: float(v) for k, v in (payload.get("events") or {}).items()
            },
            operators={
                node_id: OperatorActual.from_dict(op)
                for node_id, op in (payload.get("operators") or {}).items()
            },
            profiled=bool(payload.get("profiled")),
            distributed=(
                {
                    k: float(v)
                    for k, v in payload["distributed"].items()
                }
                if payload.get("distributed")
                else None
            ),
            weight=float(payload.get("weight", 1.0)),
            committed=bool(payload.get("committed", True)),
        )


@dataclass
class PlanHistory:
    """Everything remembered about one plan fingerprint."""

    fingerprint: str
    canonical: str
    plan_cost: float
    estimates: Dict[str, OperatorEstimate] = field(default_factory=dict)
    observations: Deque[Observation] = field(default_factory=deque)
    total_runs: int = 0
    #: The distributed cost model's term decomposition for the plan's
    #: fixpoints (summed over Fix nodes): estimated exchange volume,
    #: network cost, skew-free disk share and assumed skew.  ``None``
    #: for plans costed at ``shards == 1``.
    distributed_estimate: Optional[Dict[str, float]] = None

    # -- derived -------------------------------------------------------------

    def latencies(self) -> List[float]:
        return [obs.execute_seconds for obs in self.observations]

    def median_latency(self) -> Optional[float]:
        values = sorted(self.latencies())
        if not values:
            return None
        middle = len(values) // 2
        if len(values) % 2:
            return values[middle]
        return (values[middle - 1] + values[middle]) / 2.0

    def cost_misestimate(self) -> Optional[float]:
        """Mean query-level q-error of estimated vs. measured cost."""
        ratios = [
            q_error(obs.estimated_cost, obs.measured_cost)
            for obs in self.observations
        ]
        return sum(ratios) / len(ratios) if ratios else None

    def operator_misestimates(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-node mean q-errors: rows (every run) and cost (profiled
        runs only)."""
        rows_sums: Dict[str, List[float]] = {}
        cost_sums: Dict[str, List[float]] = {}
        for obs in self.observations:
            for node_id, actual in obs.operators.items():
                estimate = self.estimates.get(node_id)
                if estimate is None:
                    continue
                if estimate.est_rows is not None:
                    rows_sums.setdefault(node_id, []).append(
                        q_error(estimate.est_rows, actual.rows)
                    )
                if estimate.est_cost is not None and actual.cost is not None:
                    cost_sums.setdefault(node_id, []).append(
                        q_error(estimate.est_cost, actual.cost)
                    )
        summary: Dict[str, Dict[str, Optional[float]]] = {}
        for node_id in self.estimates:
            rows = rows_sums.get(node_id)
            cost = cost_sums.get(node_id)
            if rows is None and cost is None:
                continue
            estimate = self.estimates[node_id]
            summary[node_id] = {
                "label": estimate.label,
                "kind": estimate.kind,
                "est_rows": estimate.est_rows,
                "rows_q_error": (
                    round(sum(rows) / len(rows), 4) if rows else None
                ),
                "cost_q_error": (
                    round(sum(cost) / len(cost), 4) if cost else None
                ),
                "samples": max(
                    len(rows) if rows else 0, len(cost) if cost else 0
                ),
            }
        return summary

    def distributed_misestimate(self, params) -> Optional[float]:
        """Mean q-error of the distributed cost terms — network, disk
        and skew — under ``params``, over the sharded observations.

        Each observation scores the mean of three symmetric ratios:

        * **network** — the model's exchange charge for the *estimated*
          wire volume vs. the same charge for the *measured* volume;
        * **disk** — the skew-inflated per-shard disk share vs. the
          measured max-shard logical reads (a barrier round is gated by
          its most loaded shard);
        * **skew** — ``params.shard_skew`` vs. the observed max/mean
          shard load.

        ``None`` when the plan has no distributed estimate or no
        sharded observations; recalibration minimizes this directly.
        """
        est = self.distributed_estimate
        if not est:
            return None
        ratios: List[float] = []
        for obs in self.observations:
            act = obs.distributed
            if not act:
                continue
            est_network = (
                est.get("exchange_tuples", 0.0) * params.network_per_tuple
                + est.get("exchange_frames", 0.0) * params.network_per_round
            )
            act_network = (
                act.get("exchange_tuples", 0.0) * params.network_per_tuple
                + act.get("exchange_frames", 0.0) * params.network_per_round
            )
            est_disk = est.get("disk_base", 0.0) * max(1.0, params.shard_skew)
            act_disk = act.get("max_shard_reads", 0.0)
            observed = max(1.0, act.get("observed_skew", 1.0))
            terms = [
                q_error(est_network, act_network),
                q_error(est_disk, act_disk),
                q_error(max(1.0, params.shard_skew), observed),
            ]
            ratios.append(sum(terms) / len(terms))
        return sum(ratios) / len(ratios) if ratios else None

    def mean_operator_misestimate(self) -> Optional[float]:
        """The headline number: the mean per-operator cost q-error
        across profiled runs (falling back to the rows q-error where a
        node was never profiled)."""
        per_node = self.operator_misestimates()
        values = [
            entry["cost_q_error"]
            if entry["cost_q_error"] is not None
            else entry["rows_q_error"]
            for entry in per_node.values()
        ]
        values = [v for v in values if v is not None and math.isfinite(v)]
        return sum(values) / len(values) if values else None

    def snapshot(self, recent: int = 3) -> dict:
        median = self.median_latency()
        return {
            "fingerprint": self.fingerprint,
            "plan_cost": round(self.plan_cost, 2),
            "runs": self.total_runs,
            "window": len(self.observations),
            "median_execute_ms": (
                round(median * 1000, 3) if median is not None else None
            ),
            "cost_misestimate": (
                round(self.cost_misestimate(), 4)
                if self.cost_misestimate() is not None
                else None
            ),
            "mean_operator_misestimate": (
                round(self.mean_operator_misestimate(), 4)
                if self.mean_operator_misestimate() is not None
                else None
            ),
            "operators": self.operator_misestimates(),
            "distributed_estimate": (
                {
                    k: round(float(v), 4)
                    for k, v in self.distributed_estimate.items()
                }
                if self.distributed_estimate
                else None
            ),
            "recent": [
                obs.to_dict() for obs in list(self.observations)[-recent:]
            ],
        }


class QueryTelemetryStore:
    """Bounded, persistable history of estimated vs. measured execution.

    ``window`` bounds the per-plan observation ring; ``max_plans``
    bounds the number of plan histories (least-recently-observed plans
    are dropped).  ``persist_path`` enables append-only JSONL
    persistence: every registration/observation/event is written as one
    line, and :meth:`load` replays a file back into memory (respecting
    the same bounds), so a restarted service resumes with its history.

    ``max_bytes`` bounds the JSONL file itself.  When an append would
    push the file past the cap, the store *compacts*: it atomically
    rewrites the file from the live in-memory state — which already
    holds exactly the newest ``window`` observations per plan — keeping
    the most-recently-observed plans first-class and dropping the
    oldest plans/observations until the rewrite fits in half the cap
    (headroom for subsequent appends).  Nothing in the newest window of
    the most recent plans is ever lost to compaction.
    """

    def __init__(
        self,
        window: int = 128,
        max_plans: int = 256,
        persist_path: Optional[str] = None,
        event_window: int = 128,
        max_bytes: Optional[int] = None,
    ) -> None:
        if window < 1:
            raise ValueError("telemetry window must be >= 1")
        if max_plans < 1:
            raise ValueError("telemetry max_plans must be >= 1")
        if max_bytes is not None and max_bytes < 4096:
            raise ValueError("telemetry max_bytes must be >= 4096")
        self.window = window
        self.max_plans = max_plans
        self.persist_path = persist_path
        self.max_bytes = max_bytes
        self._plans: "OrderedDict[str, PlanHistory]" = OrderedDict()
        #: canonical text -> fingerprints seen for it, oldest first.
        self._by_query: Dict[str, List[str]] = {}
        self.events: Deque[dict] = deque(maxlen=event_window)
        self._lock = threading.Lock()
        self._sink = None
        self._sink_bytes = 0
        self.dropped_plans = 0
        self.compactions = 0
        if persist_path:
            self.load(persist_path)
            self._sink = open(persist_path, "a", encoding="utf-8")
            try:
                self._sink_bytes = os.path.getsize(persist_path)
            except OSError:
                self._sink_bytes = 0
            if max_bytes is not None and self._sink_bytes > max_bytes:
                with self._lock:
                    self._compact_locked()

    # -- recording -----------------------------------------------------------

    def register_plan(
        self,
        canonical: str,
        fingerprint: str,
        plan_cost: float,
        estimates: Optional[Dict[str, OperatorEstimate]] = None,
        distributed: Optional[Dict[str, float]] = None,
    ) -> PlanHistory:
        """Create (or refresh the estimates of) one plan history."""
        with self._lock:
            history = self._register_locked(
                canonical, fingerprint, plan_cost, estimates or {}, distributed
            )
            record = {
                "kind": "plan",
                "fingerprint": fingerprint,
                "canonical": canonical,
                "plan_cost": round(plan_cost, 4),
                "estimates": [
                    e.to_dict() for e in (estimates or {}).values()
                ],
            }
            if distributed:
                record["distributed"] = {
                    k: round(float(v), 6) for k, v in distributed.items()
                }
            self._persist(record)
            return history

    def _register_locked(
        self,
        canonical: str,
        fingerprint: str,
        plan_cost: float,
        estimates: Dict[str, OperatorEstimate],
        distributed: Optional[Dict[str, float]] = None,
    ) -> PlanHistory:
        history = self._plans.get(fingerprint)
        if history is None:
            history = PlanHistory(
                fingerprint,
                canonical,
                plan_cost,
                observations=deque(maxlen=self.window),
            )
            self._plans[fingerprint] = history
            fps = self._by_query.setdefault(canonical, [])
            if fingerprint not in fps:
                fps.append(fingerprint)
            while len(self._plans) > self.max_plans:
                dropped_fp, dropped = self._plans.popitem(last=False)
                self.dropped_plans += 1
                survivors = self._by_query.get(dropped.canonical, [])
                if dropped_fp in survivors:
                    survivors.remove(dropped_fp)
                if not survivors:
                    self._by_query.pop(dropped.canonical, None)
        else:
            history.plan_cost = plan_cost
        if estimates:
            history.estimates = dict(estimates)
        if distributed:
            history.distributed_estimate = dict(distributed)
        return history

    def record(self, fingerprint: str, observation: Observation) -> None:
        """Append one execution to a registered plan's ring."""
        with self._lock:
            history = self._plans.get(fingerprint)
            if history is None:
                return
            history.observations.append(observation)
            history.total_runs += 1
            self._plans.move_to_end(fingerprint)
            self._persist(
                {
                    "kind": "obs",
                    "fingerprint": fingerprint,
                    **observation.to_dict(),
                }
            )

    def record_event(self, name: str, **payload) -> dict:
        """Remember one control-loop event (plan change, regression,
        recalibration, pin)."""
        event = {"event": name, "at": round(time.time(), 3), **payload}
        with self._lock:
            self.events.append(event)
            self._persist({"kind": "event", **event})
        return event

    # -- queries -------------------------------------------------------------

    def plan(self, fingerprint: str) -> Optional[PlanHistory]:
        with self._lock:
            return self._plans.get(fingerprint)

    def plans_for(self, canonical: str) -> List[PlanHistory]:
        with self._lock:
            return [
                self._plans[fp]
                for fp in self._by_query.get(canonical, [])
                if fp in self._plans
            ]

    def latencies(self, fingerprint: str) -> List[float]:
        with self._lock:
            history = self._plans.get(fingerprint)
            return history.latencies() if history else []

    def calibration_samples(self) -> List[Dict[str, float]]:
        """Every *committed* observation as a calibration sample: the
        event-count features, the ``target`` measured cost, and the
        governor-assigned inverse sampling ``weight``.

        Uncommitted observations (runs the overhead governor skipped
        detailed observability for) are excluded: their event counters
        sit outside the sampling design, and mixing them in would bias
        the weighted fit the head-sampled weights exist to keep honest.
        """
        with self._lock:
            samples = []
            for history in self._plans.values():
                for obs in history.observations:
                    if not obs.events or not obs.committed:
                        continue
                    samples.append(
                        {
                            **obs.events,
                            "target": obs.measured_cost,
                            "weight": obs.weight,
                        }
                    )
            return samples

    def distributed_misestimate(self, params) -> Optional[float]:
        """Mean distributed-term q-error under ``params`` across every
        plan that ran sharded (``None`` if none did) — the objective
        the feedback loop's distributed recalibration minimizes."""
        with self._lock:
            ratios = [
                value
                for history in self._plans.values()
                for value in [history.distributed_misestimate(params)]
                if value is not None
            ]
            return sum(ratios) / len(ratios) if ratios else None

    def observed_skews(self) -> List[float]:
        """Every sharded observation's measured max/mean load skew —
        the candidate set distributed recalibration searches over."""
        with self._lock:
            return [
                max(1.0, obs.distributed.get("observed_skew", 1.0))
                for history in self._plans.values()
                for obs in history.observations
                if obs.distributed
            ]

    def misestimate_by_query(self) -> Dict[str, dict]:
        """Per-query-class misestimate summary (the Prometheus gauge
        source): mean query-level cost q-error and the mean
        per-operator misestimate over every plan of the class."""
        with self._lock:
            summary: Dict[str, dict] = {}
            for canonical, fps in self._by_query.items():
                cost_ratios: List[float] = []
                op_ratios: List[float] = []
                runs = 0
                for fp in fps:
                    history = self._plans.get(fp)
                    if history is None:
                        continue
                    runs += history.total_runs
                    ratio = history.cost_misestimate()
                    if ratio is not None:
                        cost_ratios.append(ratio)
                    op_ratio = history.mean_operator_misestimate()
                    if op_ratio is not None:
                        op_ratios.append(op_ratio)
                summary[query_class(canonical)] = {
                    "query": canonical,
                    "runs": runs,
                    "plans": len(fps),
                    "cost_misestimate": (
                        round(sum(cost_ratios) / len(cost_ratios), 4)
                        if cost_ratios
                        else None
                    ),
                    "operator_misestimate": (
                        round(sum(op_ratios) / len(op_ratios), 4)
                        if op_ratios
                        else None
                    ),
                }
            return summary

    def snapshot(
        self, query: Optional[str] = None, limit: int = 20
    ) -> dict:
        """The ``history`` protocol payload."""
        with self._lock:
            queries = []
            for canonical, fps in self._by_query.items():
                if query is not None and query not in canonical:
                    continue
                plans = [
                    self._plans[fp].snapshot()
                    for fp in fps
                    if fp in self._plans
                ]
                queries.append(
                    {
                        "query": canonical,
                        "class": query_class(canonical),
                        "plans": plans,
                    }
                )
            queries.sort(
                key=lambda entry: -sum(p["runs"] for p in entry["plans"])
            )
            return {
                "plans": len(self._plans),
                "dropped_plans": self.dropped_plans,
                "compactions": self.compactions,
                "queries": queries[:limit],
                "events": list(self.events),
            }

    # -- persistence ---------------------------------------------------------

    def _persist(self, payload: dict) -> None:
        """Append one JSONL record (caller holds ``_lock``), compacting
        first when the append would push the file past ``max_bytes``."""
        if self._sink is None:
            return
        line = json.dumps(payload, default=str) + "\n"
        size = len(line.encode("utf-8"))
        if (
            self.max_bytes is not None
            and self._sink_bytes + size > self.max_bytes
        ):
            self._compact_locked()
        self._sink.write(line)
        self._sink.flush()
        self._sink_bytes += size

    def _plan_record(self, history: PlanHistory) -> dict:
        record = {
            "kind": "plan",
            "fingerprint": history.fingerprint,
            "canonical": history.canonical,
            "plan_cost": round(history.plan_cost, 4),
            "estimates": [e.to_dict() for e in history.estimates.values()],
        }
        if history.distributed_estimate:
            record["distributed"] = {
                k: round(float(v), 6)
                for k, v in history.distributed_estimate.items()
            }
        return record

    def _compact_locked(self) -> None:
        """Atomically rewrite the JSONL file from live state, dropping
        the *oldest* plans (and, if one plan alone overflows, its
        oldest observations) until the rewrite fits ``max_bytes // 2``.
        The bounded event ring is always kept."""
        if self._sink is None or self.max_bytes is None:
            return
        target = max(self.max_bytes // 2, 1)

        def measure(line: str) -> int:
            return len(line.encode("utf-8")) + 1

        event_lines = [
            json.dumps({"kind": "event", **event}, default=str)
            for event in self.events
        ]
        remaining = target - sum(measure(line) for line in event_lines)
        # Walk plans newest-observed first; each block is the plan
        # registration line followed by its observations oldest-first
        # (reload order must rebuild the ring correctly).
        kept_blocks: List[List[str]] = []
        for fingerprint, history in reversed(list(self._plans.items())):
            plan_line = json.dumps(self._plan_record(history), default=str)
            obs_lines = [
                json.dumps(
                    {"kind": "obs", "fingerprint": fingerprint, **obs.to_dict()},
                    default=str,
                )
                for obs in history.observations
            ]
            block = [plan_line] + obs_lines
            size = sum(measure(line) for line in block)
            if size > remaining:
                # Partial fit: the plan line plus the newest
                # observations that still fit, then stop — everything
                # older is compacted away.
                trimmed = [plan_line]
                size = measure(plan_line)
                tail: List[str] = []
                for line in reversed(obs_lines):
                    line_size = measure(line)
                    if size + line_size > remaining:
                        break
                    tail.append(line)
                    size += line_size
                if size <= remaining:
                    trimmed.extend(reversed(tail))
                    kept_blocks.append(trimmed)
                break
            kept_blocks.append(block)
            remaining -= size
        tmp_path = self.persist_path + ".compact"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            # Oldest plan first so a reload reconstructs the same LRU
            # order the live store has.
            for block in reversed(kept_blocks):
                for line in block:
                    handle.write(line + "\n")
            for line in event_lines:
                handle.write(line + "\n")
        self._sink.close()
        os.replace(tmp_path, self.persist_path)
        self._sink = open(self.persist_path, "a", encoding="utf-8")
        self._sink_bytes = os.path.getsize(self.persist_path)
        self.compactions += 1

    def load(self, path: str) -> int:
        """Replay a JSONL telemetry file into memory; returns the
        number of lines applied.  Unknown/corrupt lines are skipped —
        a truncated tail (crash mid-write) must not poison a restart."""
        applied = 0
        try:
            handle = open(path, "r", encoding="utf-8")
        except FileNotFoundError:
            return 0
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if self._apply(payload):
                    applied += 1
        return applied

    def _apply(self, payload: dict) -> bool:
        kind = payload.get("kind")
        if kind == "plan":
            estimates = {
                entry["node_id"]: OperatorEstimate(
                    entry["node_id"],
                    entry.get("label", ""),
                    entry.get("kind", ""),
                    entry.get("est_rows"),
                    entry.get("est_cost"),
                )
                for entry in payload.get("estimates", [])
                if "node_id" in entry
            }
            with self._lock:
                self._register_locked(
                    payload.get("canonical", ""),
                    payload.get("fingerprint", ""),
                    float(payload.get("plan_cost", 0.0)),
                    estimates,
                    distributed=(
                        {
                            k: float(v)
                            for k, v in payload["distributed"].items()
                        }
                        if payload.get("distributed")
                        else None
                    ),
                )
            return True
        if kind == "obs":
            fingerprint = payload.get("fingerprint", "")
            with self._lock:
                history = self._plans.get(fingerprint)
                if history is None:
                    return False
                history.observations.append(Observation.from_dict(payload))
                history.total_runs += 1
                self._plans.move_to_end(fingerprint)
            return True
        if kind == "event":
            with self._lock:
                self.events.append(
                    {k: v for k, v in payload.items() if k != "kind"}
                )
            return True
        return False

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)
