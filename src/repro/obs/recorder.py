"""The flight recorder: self-contained diagnostic bundles + replay.

When a query raises an anomaly — or an operator asks with
``repro diagnose`` — the service snapshots everything needed to debug
and *re-execute* the request on another machine into one JSON bundle:

.. code-block:: text

    bundle_version      schema version of this format (currently 1)
    created_at          unix seconds
    reason              "anomaly" | "diagnose"
    request_id          service request id (when recorded in-service)
    anomalies           the triggering anomaly records (metric,
                        value, baseline, robust z-score)
    sampling            the governor's decision for the run
    query               {text, canonical, class}
    plan                {fingerprint, rendered, estimated_cost}
    knobs               {parallelism, batch_size, shards,
                         max_fix_iterations}
    cost_parameters     the CostParameters the optimizer priced with
                        (null = stock defaults)
    database            the seeded generator recipe the store was
                        built from ({db, seed, lineages, generations,
                        selectivity, buffer_pages}) — replay rebuilds
                        an identical store from it
    store               {schema, stats} fingerprints of the live store
    execution           {row_count, answer_fingerprint, measured_cost,
                         execute_ms, fix_iterations}
    trace               committed tail-sampled trace (optional)
    profile             committed per-node profile (optional)
    telemetry           recent observation window for the plan
    baselines           anomaly-detector baselines for the class
    environment         python/platform strings

Everything in the bundle is derived from *seeded* inputs — the
generator recipe rebuilds a bit-identical store, and the
cost-controlled optimizer's randomized reoptimization is itself seeded
— so :func:`replay_bundle` re-optimizes and re-executes
deterministically and asserts both the plan fingerprint and the
answer-set fingerprint match the originals.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = [
    "BUNDLE_VERSION",
    "FlightRecorder",
    "answer_fingerprint",
    "build_bundle",
    "database_from_config",
    "load_bundle",
    "replay_bundle",
]

BUNDLE_VERSION = 1


def answer_fingerprint(rows: List[dict]) -> str:
    """Order-insensitive digest of an answer set.

    Canonicalizes every binding (records collapse to oids, keys
    sorted), sorts the canonical rows, and hashes their reprs — stable
    across processes for the seeded stores replay rebuilds.
    """

    from repro.engine.eval_expr import canonical_row

    hasher = hashlib.sha256()
    for line in sorted(repr(canonical_row(row)) for row in rows):
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()[:16]


def database_from_config(config: Dict[str, Any]):
    """Rebuild a workload database from its bundle recipe.

    The same helper backs ``repro run``'s database construction, so a
    bundle recorded by the service replays against a bit-identical
    store.
    """

    from repro.workloads import (
        MusicConfig,
        PartsConfig,
        generate_music_database,
        generate_parts_database,
    )

    kind = config.get("db", "music")
    seed = int(config.get("seed", 1992))
    lineages = int(config.get("lineages", 8))
    generations = int(config.get("generations", 8))
    if kind == "parts":
        return generate_parts_database(
            PartsConfig(
                assemblies=max(1, lineages // 2),
                depth=max(2, generations // 2),
                seed=seed,
            )
        )
    db = generate_music_database(
        MusicConfig(
            lineages=lineages,
            generations=generations,
            selective_fraction=float(config.get("selectivity", 0.15)),
            buffer_pages=int(config.get("buffer_pages", 256)),
            seed=seed,
        )
    )
    db.build_paper_indexes()
    return db


def build_bundle(
    *,
    reason: str,
    query_text: str,
    canonical: str,
    query_cls: str,
    plan,
    fingerprint: str,
    estimated_cost: float,
    rows: List[dict],
    measured_cost: float,
    execute_seconds: float,
    fix_iterations: int,
    knobs: Dict[str, Any],
    physical,
    database: Optional[Dict[str, Any]] = None,
    cost_parameters: Optional[Any] = None,
    request_id: Optional[int] = None,
    anomalies: Optional[List[dict]] = None,
    sampling: Optional[Dict[str, Any]] = None,
    trace: Optional[dict] = None,
    profile: Optional[dict] = None,
    telemetry: Optional[dict] = None,
    baselines: Optional[dict] = None,
) -> Dict[str, Any]:
    """Assemble one self-contained diagnostic bundle."""

    # Imported lazily: repro.service.plan_cache sits above this module
    # in the import graph (the service imports the recorder).
    from dataclasses import asdict

    from repro.plans import render_tree
    from repro.service.plan_cache import schema_fingerprint, stats_fingerprint

    bundle: Dict[str, Any] = {
        "bundle_version": BUNDLE_VERSION,
        "created_at": round(time.time(), 3),
        "reason": reason,
        "request_id": request_id,
        "anomalies": list(anomalies or ()),
        "sampling": sampling,
        "query": {
            "text": query_text,
            "canonical": canonical,
            "class": query_cls,
        },
        "plan": {
            "fingerprint": fingerprint,
            "rendered": render_tree(plan),
            "estimated_cost": round(estimated_cost, 4),
        },
        "knobs": dict(knobs),
        "cost_parameters": (
            asdict(cost_parameters) if cost_parameters is not None else None
        ),
        "database": dict(database) if database else None,
        "store": {
            "schema": schema_fingerprint(physical),
            "stats": stats_fingerprint(physical),
        },
        "execution": {
            "row_count": len(rows),
            "answer_fingerprint": answer_fingerprint(rows),
            "measured_cost": round(measured_cost, 4),
            "execute_ms": round(execute_seconds * 1000, 3),
            "fix_iterations": fix_iterations,
        },
        "trace": trace,
        "profile": profile,
        "telemetry": telemetry,
        "baselines": baselines,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    }
    return bundle


class FlightRecorder:
    """Writes bundles to a directory (or keeps them in memory only).

    Caps both the total bundles written and the bundles per query
    class, so an anomaly storm on one hot class cannot fill the disk
    or drown out other classes.  Thread-safe.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        max_bundles: int = 64,
        per_class: int = 4,
        keep_recent: int = 8,
    ) -> None:
        self.directory = directory
        self.max_bundles = max_bundles
        self.per_class = per_class
        self._lock = threading.Lock()
        self._by_class: Dict[str, int] = {}
        self.written = 0
        self.suppressed = 0
        #: Most recent bundles, newest last — the ``diagnose`` op can
        #: hand them out even when no directory is configured.
        self.recent: "deque[Dict[str, Any]]" = deque(maxlen=keep_recent)
        if directory:
            os.makedirs(directory, exist_ok=True)

    def admit(self, query_cls: str) -> bool:
        """Cheap pre-check: would a bundle for this class be recorded?

        Bundle *assembly* (answer-set fingerprinting, telemetry
        snapshots) dwarfs the cap check, so callers ask first and skip
        the build entirely during an anomaly storm on a capped class.
        A refusal counts as a suppression.
        """

        with self._lock:
            count = self._by_class.get(query_cls, 0)
            if self.written >= self.max_bundles or count >= self.per_class:
                self.suppressed += 1
                return False
        return True

    def record(self, bundle: Dict[str, Any]) -> Optional[str]:
        """Persist *bundle*; returns its path (None when memory-only
        or suppressed by the caps)."""

        query_cls = bundle.get("query", {}).get("class", "unknown")
        with self._lock:
            count = self._by_class.get(query_cls, 0)
            if self.written >= self.max_bundles or count >= self.per_class:
                self.suppressed += 1
                return None
            self._by_class[query_cls] = count + 1
            self.written += 1
            self.recent.append(bundle)
            serial = self.written
        if not self.directory:
            return None
        name = f"bundle-{query_cls or 'unknown'}-{serial:04d}.json"
        path = os.path.join(self.directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=2, default=str)
        return path

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "directory": self.directory,
                "written": self.written,
                "suppressed": self.suppressed,
                "by_class": dict(self._by_class),
            }


def load_bundle(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    version = bundle.get("bundle_version")
    if version != BUNDLE_VERSION:
        raise ValueError(
            f"unsupported bundle_version {version!r} (expected {BUNDLE_VERSION})"
        )
    return bundle


def replay_bundle(bundle: Dict[str, Any], database=None) -> Dict[str, Any]:
    """Deterministically re-execute a bundle; returns a match report.

    Rebuilds the store from the bundle's generator recipe (unless a
    prebuilt *database* is supplied), re-optimizes the recorded query
    under the recorded cost parameters — the optimizer's randomized
    reoptimization is seeded, so this is deterministic — re-executes
    under the recorded knobs, and compares plan fingerprint and
    answer-set fingerprint against the originals.
    """

    from repro.core.baselines import cost_controlled_optimizer
    from repro.cost.model import DetailedCostModel
    from repro.cost.params import CostParameters
    from repro.engine.evaluator import Engine
    from repro.lang.compile import compile_text
    from repro.obs.history import plan_fingerprint
    from repro.service.plan_cache import schema_fingerprint

    if database is None:
        recipe = bundle.get("database")
        if not recipe:
            raise ValueError(
                "bundle carries no database recipe; pass a prebuilt database"
            )
        database = database_from_config(recipe)
    physical = database.physical

    report: Dict[str, Any] = {
        "schema_match": schema_fingerprint(physical)
        == bundle["store"]["schema"],
    }

    params_dict = bundle.get("cost_parameters")
    model = None
    if params_dict is not None:
        import dataclasses

        known = {f.name for f in dataclasses.fields(CostParameters)}
        params = CostParameters(
            **{k: v for k, v in params_dict.items() if k in known}
        )
        model = DetailedCostModel(physical, params)

    graph = compile_text(bundle["query"]["text"], database.catalog)
    result = cost_controlled_optimizer(physical, model).optimize(graph)
    replayed_fp = plan_fingerprint(result.plan)

    knobs = bundle.get("knobs", {})
    shards = max(1, int(knobs.get("shards", 1)))
    cluster = None
    if shards > 1:
        from repro.dist import ShardCluster

        cluster = ShardCluster(physical, shards)
    engine = Engine(
        physical,
        max_fix_iterations=int(knobs.get("max_fix_iterations", 256)),
        parallelism=max(1, int(knobs.get("parallelism", 1))),
        batch_size=knobs.get("batch_size") or None,
        batch_layout=knobs.get("batch_layout") or None,
        shards=shards,
        cluster=cluster,
    )
    execution = engine.execute(result.plan)
    replayed_answer = answer_fingerprint(execution.rows)

    expected_fp = bundle["plan"]["fingerprint"]
    expected_answer = bundle["execution"]["answer_fingerprint"]
    report.update(
        {
            "plan_fingerprint": replayed_fp,
            "expected_plan_fingerprint": expected_fp,
            "plan_match": replayed_fp == expected_fp,
            "answer_fingerprint": replayed_answer,
            "expected_answer_fingerprint": expected_answer,
            "answer_match": replayed_answer == expected_answer,
            "row_count": len(execution.rows),
            "expected_row_count": bundle["execution"]["row_count"],
            "estimated_cost": round(result.cost, 4),
            "fix_iterations": execution.metrics.fix_iterations,
        }
    )
    report["matched"] = bool(report["plan_match"] and report["answer_match"])
    return report
