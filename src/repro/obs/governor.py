"""The observability overhead governor.

The paper's discipline — spend optimization effort only while it pays —
applied to observability itself.  Full tracing + profiling on every
request is unaffordable at production traffic; turning it off entirely
means the one anomalous request per million leaves no artifact.  The
governor keeps *total observability cost under an explicit budget*
(a fraction of execute wall time, ``--obs-budget``, default 5%) by
degrading detail per query class only when — and only where — the spend
actually exceeds the budget:

* **Under budget**: undegraded classes run with full buffered detail
  (tail-sampling decides post-hoc what to keep); previously degraded
  classes earn their probability back gradually — ``recover_factor``
  per decision, and only while spend sits below
  ``recover_ratio × budget`` (hysteresis) — and return to full detail
  only once it reaches 1.
  Without the dead band a degraded class alternates degrade/recover
  right at the budget line and spends half its runs at full detail.

* **Over budget**: the classes *responsible* for the spend (those whose
  own share of recent observability seconds exceeds
  ``dominant_share × budget``) are degraded to deterministic head
  sampling — probability halves per over-budget decision down to
  ``min_probability``, and the 1-in-*stride* admitted runs carry
  ``weight = stride`` so recalibration stays unbiased.  Minor classes
  keep full detail: their absolute overhead is negligible and they are
  exactly the rare queries worth observing.  Only under gross overload
  (spend > ``overload_ratio × budget``) does degradation hit every
  class.

* **Anomaly pinning**: once a class raises an anomaly it is pinned to
  full detail for ``anomaly_pin_runs`` runs, so follow-up occurrences
  of a production incident always yield complete tail-sampled traces.

Observability spend is *modeled*, not separately clocked (clocking the
clock would itself blow the budget): each profiler metering probe and
each trace span/event is charged a per-unit cost measured once at
startup with a micro-benchmark of the probe body.  Charges and wall
time decay exponentially (``decay`` per request), so the spent fraction
tracks a recent window rather than all history.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from .sampler import SamplingDecision, StrideSampler

__all__ = ["GovernorConfig", "ObservabilityGovernor", "measure_probe_cost"]


#: Bench-to-production scale applied to the measured probe cost.  The
#: micro-benchmark runs the metering wrapper over a flat synthetic
#: stream; in a live plan the same probe sits at the bottom of a deep
#: generator chain reading live counter objects under cache pressure,
#: which costs several times the tight-loop figure.  The governor
#: deliberately models spend HIGH: over-charging degrades detail a bit
#: earlier than strictly necessary, under-charging silently blows the
#: throughput budget the whole feature exists to honour.
PROBE_COST_SCALE = 32.0


def measure_probe_cost(samples: int = 4096) -> float:
    """Seconds one profiler metering probe costs, measured in-process.

    Benchmarks the *real* per-batch metering wrapper
    (:meth:`repro.obs.profile.PlanProfiler._metered_batches` — two
    clock reads, counter deltas, one generator resumption per batch)
    over a synthetic batch stream, then scales by
    :data:`PROBE_COST_SCALE` (see its docstring).
    """

    from repro.obs.profile import NodeProfile, PlanProfiler

    class _Counters:
        physical_reads = 0
        index_page_reads = 0.0
        predicate_evals = 0

    class _Batch:
        __slots__ = ("rows",)

        def __init__(self) -> None:
            self.rows = ()

        def __len__(self) -> int:
            return len(self.rows)

    profiler = PlanProfiler()
    profiler._buffer = profiler._metrics = _Counters()
    profile = NodeProfile(node_id="bench", label="bench", kind="Bench")
    batch = _Batch()

    def stream():
        for _ in range(samples):
            yield batch

    clock = time.perf_counter
    start = clock()
    for _ in profiler._metered_batches(profile, stream()):
        pass
    elapsed = clock() - start
    return max(elapsed / samples * PROBE_COST_SCALE, 1e-8)


@dataclass
class GovernorConfig:
    """Tuning knobs for :class:`ObservabilityGovernor`."""

    #: Observability budget as a fraction of execute wall time.
    budget: float = 0.05
    #: Exponential decay applied to spend/wall accumulators per charge;
    #: 0.99 ≈ a sliding window of the last ~100 requests.
    decay: float = 0.99
    #: Per-over-budget-decision probability multiplier for dominant classes.
    degrade_factor: float = 0.5
    #: Per-recovery-decision probability multiplier.  Deliberately much
    #: slower than ``degrade_factor`` is fast: backing off must be
    #: immediate, earning detail back can take its time.
    recover_factor: float = 1.25
    #: Hysteresis: probability recovers only while spend sits below
    #: ``recover_ratio × budget``.  Without the dead band a degraded
    #: class alternates degrade/recover decisions right at the budget
    #: line and (with symmetric factors) spends half its runs at full
    #: detail — twice the budget's worth.
    recover_ratio: float = 0.5
    #: Sampling probability floor — even the hottest class keeps
    #: 1-in-64 fully observed runs.
    min_probability: float = 1.0 / 64.0
    #: A brand-new query class gets this many full-detail runs
    #: unconditionally (its first anomaly must not go unobserved).
    grace_runs: int = 2
    #: Full-detail runs granted to a class after it raises an anomaly.
    anomaly_pin_runs: int = 64
    #: A class is "dominant" (degradable) when its own recent obs spend
    #: exceeds this share of the budget.
    dominant_share: float = 0.5
    #: Spend beyond ``overload_ratio × budget`` degrades every class.
    overload_ratio: float = 2.0
    #: Seconds charged per profiler probe; measured at startup if None.
    probe_cost: Optional[float] = None
    #: Seconds charged per trace span/event; defaults to probe_cost.
    span_cost: Optional[float] = None
    #: LRU bound on tracked query classes.
    max_classes: int = 512


class _ClassState:
    __slots__ = (
        "probability",
        "runs",
        "sampled_runs",
        "anomalies",
        "pin_remaining",
        "obs_seconds",
    )

    def __init__(self) -> None:
        self.probability = 1.0
        self.runs = 0
        self.sampled_runs = 0
        self.anomalies = 0
        self.pin_remaining = 0
        self.obs_seconds = 0.0


class ObservabilityGovernor:
    """Budgeted per-query-class sampling decisions.  Thread-safe."""

    def __init__(self, config: Optional[GovernorConfig] = None) -> None:
        self.config = config or GovernorConfig()
        self.probe_cost = (
            self.config.probe_cost
            if self.config.probe_cost is not None
            else measure_probe_cost()
        )
        self.span_cost = (
            self.config.span_cost
            if self.config.span_cost is not None
            else self.probe_cost
        )
        self._lock = threading.Lock()
        self._classes: "OrderedDict[str, _ClassState]" = OrderedDict()
        self._sampler = StrideSampler()
        # EWMA accumulators: recent observability seconds vs recent
        # execute wall seconds.  Their ratio is the spent fraction.
        self._obs_seconds = 0.0
        self._work_seconds = 0.0
        # Lifetime counters for the stats op / Prometheus.
        self.decisions: Dict[str, int] = {"full": 0, "head": 0, "skip": 0}
        self.commits = 0
        self.drops = 0
        self.anomalies_noted = 0
        self.charged_obs_seconds = 0.0
        self.charged_wall_seconds = 0.0

    # -- internals ----------------------------------------------------------

    def _state(self, query_class: str) -> _ClassState:
        state = self._classes.get(query_class)
        if state is None:
            state = _ClassState()
            self._classes[query_class] = state
            while len(self._classes) > self.config.max_classes:
                evicted, _ = self._classes.popitem(last=False)
                self._sampler.forget(evicted)
        else:
            self._classes.move_to_end(query_class)
        return state

    def _spent_locked(self) -> float:
        if self._work_seconds <= 0.0:
            return 0.0
        return self._obs_seconds / self._work_seconds

    # -- the decision -------------------------------------------------------

    def decide(self, query_class: str) -> SamplingDecision:
        """The observability verdict for one request of *query_class*."""

        config = self.config
        with self._lock:
            state = self._state(query_class)
            state.runs += 1
            mode, weight, reason = "full", 1.0, "under-budget"
            if state.pin_remaining > 0:
                state.pin_remaining -= 1
                reason = "anomaly-pinned"
            elif state.runs <= config.grace_runs:
                reason = "new-class"
            else:
                spent = self._spent_locked()
                degrade = False
                if spent > config.budget:
                    share = state.obs_seconds / max(self._work_seconds, 1e-9)
                    dominant = share > config.budget * config.dominant_share
                    overloaded = spent > config.budget * config.overload_ratio
                    degrade = dominant or overloaded
                    if not degrade:
                        reason = "minor-class"
                if degrade:
                    state.probability = max(
                        config.min_probability,
                        state.probability * config.degrade_factor,
                    )
                elif spent <= config.budget * config.recover_ratio:
                    state.probability = min(
                        1.0, state.probability * config.recover_factor
                    )
                # A degraded class stays on stride sampling until its
                # probability has climbed all the way back to 1 —
                # flipping straight to full detail the moment the spend
                # window dips under budget would duty-cycle the hot
                # class between "everything on" and "everything off"
                # around the budget instead of settling near the
                # sampling rate the budget actually affords.
                if state.probability < 1.0:
                    admitted, stride = self._sampler.admit(
                        query_class, state.probability
                    )
                    weight = float(stride)
                    if admitted:
                        mode, reason = "head", "head-sample"
                    else:
                        mode, reason = "skip", "degraded"
            sampled = mode != "skip"
            if sampled:
                state.sampled_runs += 1
            self.decisions[mode] += 1
            return SamplingDecision(
                mode=mode,
                sampled=sampled,
                weight=weight,
                reason=reason,
                query_class=query_class,
            )

    # -- accounting ---------------------------------------------------------

    def charge(
        self,
        query_class: str,
        wall_seconds: float,
        probes: int = 0,
        spans: int = 0,
    ) -> float:
        """Charge one request's modeled observability spend and wall
        time against the budget window.  Returns the charged seconds."""

        obs = probes * self.probe_cost + spans * self.span_cost
        wall = max(wall_seconds, 0.0)
        decay = self.config.decay
        with self._lock:
            self._obs_seconds = self._obs_seconds * decay + obs
            self._work_seconds = self._work_seconds * decay + wall
            self.charged_obs_seconds += obs
            self.charged_wall_seconds += wall
            state = self._classes.get(query_class)
            if state is not None:
                state.obs_seconds = state.obs_seconds * decay + obs
        return obs

    def settle(self, committed: bool) -> None:
        """Record a tail decision: buffered artifacts kept or dropped."""

        with self._lock:
            if committed:
                self.commits += 1
            else:
                self.drops += 1

    def note_anomaly(self, query_class: str) -> None:
        """Pin *query_class* to full detail after an anomaly."""

        with self._lock:
            state = self._state(query_class)
            state.anomalies += 1
            state.pin_remaining = self.config.anomaly_pin_runs
            state.probability = 1.0
            self._sampler.forget(query_class)
            self.anomalies_noted += 1

    # -- reporting ----------------------------------------------------------

    def spent_fraction(self) -> float:
        with self._lock:
            return self._spent_locked()

    def snapshot(self, top: int = 32) -> Dict[str, Any]:
        """Stats for the ``governor`` service op and ``repro feedback``."""

        with self._lock:
            classes = sorted(
                self._classes.items(), key=lambda kv: kv[1].runs, reverse=True
            )[:top]
            return {
                "budget": self.config.budget,
                "spent_fraction": round(self._spent_locked(), 6),
                "probe_cost_us": round(self.probe_cost * 1e6, 4),
                "span_cost_us": round(self.span_cost * 1e6, 4),
                "decisions": dict(self.decisions),
                "commits": self.commits,
                "drops": self.drops,
                "anomalies": self.anomalies_noted,
                "charged_obs_seconds": round(self.charged_obs_seconds, 6),
                "charged_wall_seconds": round(self.charged_wall_seconds, 6),
                "classes": [
                    {
                        "query_class": name,
                        "probability": round(state.probability, 6),
                        "runs": state.runs,
                        "sampled_runs": state.sampled_runs,
                        "anomalies": state.anomalies,
                        "pinned": state.pin_remaining > 0,
                    }
                    for name, state in classes
                ],
            }
