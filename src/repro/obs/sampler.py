"""Sampling decisions and tail-committable observability buffers.

The overhead governor (:mod:`repro.obs.governor`) answers *whether* a
request gets detailed observability; this module holds the vocabulary it
answers in:

:class:`SamplingDecision`
    The per-request verdict — ``full`` (trace + profile buffered),
    ``head`` (this request was the deterministic 1-in-*stride* winner
    for a degraded class; artifacts buffered and the resulting telemetry
    sample carries ``weight = stride`` so calibration stays unbiased),
    or ``skip`` (cheap counters only).

:class:`StrideSampler` / :func:`stride_for`
    Deterministic head sampling.  Every ``round(1/p)``-th call per key
    is admitted — no RNG, so replays and tests are exactly reproducible
    and the admitted fraction converges to ``p`` without variance.

:class:`BufferedRun`
    The tail-sampling buffer for one execution: a capped
    :class:`~repro.obs.trace.Tracer` and a
    :class:`~repro.obs.profile.PlanProfiler` record during the run, and
    at completion the service either *commits* the artifacts (the run
    turned out slow, misestimated, or anomalous — they go to the slow
    log / flight recorder) or *drops* them (the common fast case; the
    buffers are simply garbage-collected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "SamplingDecision",
    "StrideSampler",
    "stride_for",
    "BufferedRun",
    "FULL_DETAIL",
]


@dataclass(frozen=True)
class SamplingDecision:
    """The governor's per-request observability verdict."""

    #: ``full`` | ``head`` | ``skip``.
    mode: str
    #: True when trace + profile are buffered for this run.
    sampled: bool
    #: Inverse sampling probability.  ``full`` runs carry 1.0; a
    #: ``head`` run admitted at 1-in-*stride* carries *stride*, so the
    #: calibration fit can weight it back to an unbiased estimate.
    weight: float
    #: Why the governor decided this way (``under-budget``,
    #: ``anomaly-pinned``, ``head-sample``, ``degraded``, ...).
    reason: str
    #: The query class the decision was made for.
    query_class: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "sampled": self.sampled,
            "weight": round(self.weight, 4),
            "reason": self.reason,
        }


#: The decision handed out when no governor is configured: everything
#: observable, weight 1 — the pre-governor behavior.
FULL_DETAIL = SamplingDecision(
    mode="full", sampled=True, weight=1.0, reason="governor-off"
)


def stride_for(probability: float) -> int:
    """The deterministic stride implementing probability *p*: admit
    every ``round(1/p)``-th item."""

    if probability >= 1.0:
        return 1
    return max(1, int(round(1.0 / max(probability, 1e-6))))


class StrideSampler:
    """Deterministic per-key head sampler.

    ``admit(key, p)`` returns ``(admitted, stride)`` where exactly one
    call in every ``stride`` consecutive calls for the same key is
    admitted.  Deterministic by construction: the n-th call for a key
    is admitted iff ``n % stride == 0``.
    """

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def admit(self, key: str, probability: float) -> Tuple[bool, int]:
        stride = stride_for(probability)
        count = self._counters.get(key, 0) + 1
        self._counters[key] = count
        return count % stride == 0, stride

    def forget(self, key: str) -> None:
        self._counters.pop(key, None)


class BufferedRun:
    """Buffered (tail-committable) observability for one execution.

    The tracer and profiler record during the run exactly as in
    always-on mode — but nothing downstream (slow log, flight recorder,
    telemetry artifacts) sees them until :meth:`commit`.  A
    :meth:`drop` simply abandons the buffers.  The commit/drop call is
    made by the service *after* execution, when latency, misestimate
    and anomaly verdicts are known — that is what makes the sampling
    "tail-based".
    """

    __slots__ = ("decision", "tracer", "profiler", "committed", "commit_reason")

    def __init__(
        self,
        decision: SamplingDecision,
        tracer: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        self.decision = decision
        self.tracer = tracer
        self.profiler = profiler
        #: None while undecided; True/False after commit()/drop().
        self.committed: Optional[bool] = None
        self.commit_reason: Optional[str] = None

    def commit(self, reason: str) -> None:
        self.committed = True
        self.commit_reason = reason

    def drop(self) -> None:
        self.committed = False

    def obs_units(self) -> Tuple[int, int]:
        """``(probes, spans)`` recorded so far — the units the governor
        charges against its budget."""

        probes = self.profiler.probe_count() if self.profiler is not None else 0
        spans = self.tracer.span_count() if self.tracer is not None else 0
        return probes, spans
