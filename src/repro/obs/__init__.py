"""Observability: search traces, runtime profiles, EXPLAIN ANALYZE.

The paper's whole argument is *cost-controlled* search: push/no-push
decisions justified by comparing costed Processing Trees.  This package
makes those decisions — and their runtime consequences — inspectable:

* :mod:`repro.obs.trace` — a lightweight span tracer threaded through
  the optimizer's four phases (rewrite, translate, generatePT,
  transformPT) and the randomized strategies, so the full plan-space
  walk is reconstructable, exportable as JSON or Chrome
  ``chrome://tracing`` format;
* :mod:`repro.obs.profile` — per-operator runtime profiling of plan
  execution (tuples out, page reads, predicate evaluations, wall time
  per PT node, per-Fix-iteration deltas);
* :mod:`repro.obs.explain` — merges the cost model's per-node
  estimates with the profiler's actuals into an ``EXPLAIN ANALYZE``
  tree (the continuous Figure 5/6 estimated-vs-measured audit);
* :mod:`repro.obs.history` — the persistent
  :class:`~repro.obs.history.QueryTelemetryStore`: per plan
  fingerprint and per operator, estimated vs. measured cardinalities,
  reads, evaluations and wall time, bounded in memory and persistable
  as JSONL across restarts;
* :mod:`repro.obs.feedback` — the control loop on top of the store:
  online cost-model recalibration from production actuals and
  plan-regression detection with pinning support;
* :mod:`repro.obs.governor` / :mod:`repro.obs.sampler` — the overhead
  governor: keeps total observability spend under an explicit budget
  by per-query-class head sampling plus tail-based (buffered
  commit-or-drop) trace/profile retention;
* :mod:`repro.obs.anomaly` — streaming EWMA+MAD anomaly detection per
  query class over latency, misestimate, skew and barrier-wait;
* :mod:`repro.obs.recorder` — the flight recorder: self-contained
  diagnostic bundles replayed deterministically by ``repro replay``;
* :mod:`repro.obs.log` — the unified structured (JSON or text) logging
  used across the service, distribution and engine layers.
"""

from repro.obs.anomaly import Anomaly, AnomalyConfig, AnomalyDetector
from repro.obs.explain import ExplainNode, build_explain, render_explain
from repro.obs.feedback import (
    FeedbackConfig,
    FeedbackManager,
    PlanChange,
    build_observation,
    operator_estimates,
    plan_diff,
)
from repro.obs.history import (
    Observation,
    OperatorActual,
    OperatorEstimate,
    PlanHistory,
    QueryTelemetryStore,
    plan_fingerprint,
)
from repro.obs.governor import GovernorConfig, ObservabilityGovernor
from repro.obs.log import configure_logging, get_logger
from repro.obs.profile import FixIterationProfile, NodeProfile, PlanProfiler
from repro.obs.progress import ProgressTracker, QueryProgress
from repro.obs.recorder import (
    FlightRecorder,
    build_bundle,
    load_bundle,
    replay_bundle,
)
from repro.obs.sampler import BufferedRun, SamplingDecision
from repro.obs.trace import NULL_TRACER, Span, SpanEvent, Tracer

__all__ = [
    "Tracer",
    "Span",
    "SpanEvent",
    "NULL_TRACER",
    "PlanProfiler",
    "NodeProfile",
    "FixIterationProfile",
    "build_explain",
    "render_explain",
    "ExplainNode",
    "QueryTelemetryStore",
    "PlanHistory",
    "Observation",
    "OperatorActual",
    "OperatorEstimate",
    "plan_fingerprint",
    "ProgressTracker",
    "QueryProgress",
    "FeedbackConfig",
    "FeedbackManager",
    "PlanChange",
    "build_observation",
    "operator_estimates",
    "plan_diff",
    "GovernorConfig",
    "ObservabilityGovernor",
    "SamplingDecision",
    "BufferedRun",
    "Anomaly",
    "AnomalyConfig",
    "AnomalyDetector",
    "FlightRecorder",
    "build_bundle",
    "load_bundle",
    "replay_bundle",
    "configure_logging",
    "get_logger",
]
