"""``EXPLAIN ANALYZE``: the cost model's estimates next to the
engine's actuals, per PT node.

The paper validates its cost model once, offline (Figures 5 and 6:
estimated vs. measured cost per plan).  This module turns that into a
per-query, per-operator audit: :func:`build_explain` walks an optimized
plan, pairs each node's *estimated* rows/cost (from
:meth:`~repro.cost.model.DetailedCostModel.annotated_report`, which
accumulates over the Fix iterations the model predicts) with the
*actual* rows, wall time, page reads and predicate evaluations the
:class:`~repro.obs.profile.PlanProfiler` measured, and
:func:`render_explain` prints the annotated tree through the standard
plan printer.  ``Fix`` nodes additionally list their semi-naive
iterations (new tuples and wall time per round).

Exports: :meth:`ExplainTree.to_dict` (JSON) and
:meth:`ExplainTree.to_chrome_trace` (a synthesized flame view of
inclusive per-node wall time, loadable in ``chrome://tracing``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.profile import PlanProfiler, assign_node_ids
from repro.plans.display import render_tree
from repro.plans.nodes import PlanNode

__all__ = ["ExplainNode", "ExplainTree", "build_explain", "render_explain"]

#: Unit weights mirroring RuntimeMetrics.measured_cost, so per-node
#: actual cost is in the same currency as the model's estimate.
PAGE_READ_COST = 1.0
EVAL_COST = 0.1
#: Network unit weights mirroring RuntimeMetrics.measured_cost (the
#: CostParameters defaults), so the measured wire volumes price into
#: the same currency as the distributed model's network estimate.
NETWORK_TUPLE_COST = 0.005
NETWORK_FRAME_COST = 0.05


@dataclass
class ExplainNode:
    """One PT operator with estimates and (optionally) actuals."""

    node_id: str
    label: str
    kind: str
    est_cost: Optional[float] = None
    est_rows: Optional[float] = None
    est_visits: int = 0
    actual_rows: Optional[int] = None
    actual_cost: Optional[float] = None
    actual_seconds: Optional[float] = None
    exclusive_seconds: Optional[float] = None
    page_reads: Optional[int] = None
    index_page_reads: Optional[float] = None
    predicate_evals: Optional[int] = None
    fix_iterations: List[dict] = field(default_factory=list)
    #: Distributed est-vs-act terms for a sharded Fix node:
    #: ``{"est": {...}, "act": {...}}`` with the network/disk/skew
    #: decomposition of :mod:`repro.cost.distributed` on the est side
    #: and the measured exchange volumes on the act side.
    distributed: Optional[Dict[str, Dict[str, float]]] = None
    children: List["ExplainNode"] = field(default_factory=list)

    @property
    def analyzed(self) -> bool:
        return self.actual_rows is not None

    def to_dict(self) -> dict:
        payload: Dict[str, object] = {
            "node_id": self.node_id,
            "label": self.label,
            "kind": self.kind,
            "est_rows": _round(self.est_rows),
            "est_cost": _round(self.est_cost),
        }
        if self.analyzed:
            payload.update(
                {
                    "actual_rows": self.actual_rows,
                    "actual_cost": _round(self.actual_cost),
                    "actual_ms": _round_ms(self.actual_seconds),
                    "exclusive_ms": _round_ms(self.exclusive_seconds),
                    "page_reads": self.page_reads,
                    "index_page_reads": _round(self.index_page_reads),
                    "predicate_evals": self.predicate_evals,
                }
            )
        if self.fix_iterations:
            payload["fix_iterations"] = list(self.fix_iterations)
        if self.distributed is not None:
            payload["distributed"] = {
                side: {key: _round(value) for key, value in terms.items()}
                for side, terms in self.distributed.items()
            }
        payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def annotation(self) -> str:
        """The one-line estimate/actual summary shown after the label."""
        est = (
            f"est rows={_fmt(self.est_rows)} cost={_fmt(self.est_cost)}"
        )
        if not self.analyzed:
            return f"({est})"
        actual = (
            f"act rows={self.actual_rows} cost={_fmt(self.actual_cost)} "
            f"time={_fmt_ms(self.actual_seconds)} "
            f"reads={self.page_reads}"
        )
        return f"({est} | {actual})"

    def extra_lines(self) -> List[str]:
        """Per-iteration actuals listed under a Fix node.

        Distributed rounds additionally show their shard fan-out and
        per-round exchange volume (tuples and frame bytes, both legs).
        """
        lines = []
        for entry in self.fix_iterations:
            what = "base" if entry["iteration"] == 0 else f"iter {entry['iteration']}"
            line = f"[{what}: +{entry['new_tuples']} tuples in {entry['ms']:.3f}ms"
            if entry.get("shards") is not None:
                line += (
                    f" | shards={entry['shards']}"
                    f" exchanged={entry.get('exchange_tuples', 0)} tuples"
                    f"/{entry.get('exchange_bytes', 0)}B"
                )
            lines.append(line + "]")
        if self.distributed is not None:
            est = self.distributed.get("est", {})
            act = self.distributed.get("act", {})
            lines.append(
                "[distributed:"
                f" network est={_fmt(est.get('network'))}"
                f" act={_fmt(act.get('network'))}"
                f" | disk est={_fmt(est.get('disk'))}"
                f" act={_fmt(act.get('disk'))}"
                f" | skew est={_fmt(est.get('skew'))}"
                f" act={_fmt(act.get('skew'))}]"
            )
        return lines


class ExplainTree:
    """The whole annotated plan plus roll-up totals."""

    def __init__(
        self,
        plan: PlanNode,
        root: ExplainNode,
        by_id: Dict[str, ExplainNode],
        node_ids: Dict[int, str],
        analyzed: bool,
    ) -> None:
        self.plan = plan
        self.root = root
        self.by_id = by_id
        self.node_ids = node_ids
        self.analyzed = analyzed

    def node_for(self, plan_node: PlanNode) -> Optional[ExplainNode]:
        node_id = self.node_ids.get(id(plan_node))
        return self.by_id.get(node_id) if node_id is not None else None

    def to_dict(self) -> dict:
        return {
            "analyzed": self.analyzed,
            "estimated_cost": _round(self.root.est_cost),
            "actual_cost": _round(self.root.actual_cost),
            "plan": self.root.to_dict(),
        }

    def to_chrome_trace(self) -> dict:
        """A flame view of inclusive per-node wall time: children are
        laid out sequentially inside their parent's extent (the real
        execution interleaves pulls, so offsets are synthetic — the
        *durations* are the measured inclusive times)."""
        trace_events: List[dict] = []

        def emit(node: ExplainNode, start_us: float, depth: int) -> None:
            duration_us = (node.actual_seconds or 0.0) * 1e6
            trace_events.append(
                {
                    "name": f"{node.node_id} {node.label}",
                    "cat": "execute",
                    "ph": "X",
                    "ts": round(start_us, 3),
                    "dur": round(duration_us, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "rows": node.actual_rows,
                        "est_rows": _round(node.est_rows),
                        "page_reads": node.page_reads,
                    },
                }
            )
            offset = start_us
            for child in node.children:
                emit(child, offset, depth + 1)
                offset += (child.actual_seconds or 0.0) * 1e6

        emit(self.root, 0.0, 0)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def build_explain(
    plan: PlanNode,
    cost_model,
    profiler: Optional[PlanProfiler] = None,
) -> ExplainTree:
    """Pair a plan's per-node estimates with profiled actuals.

    ``cost_model`` is a :class:`~repro.cost.model.DetailedCostModel`;
    ``profiler`` is the :class:`PlanProfiler` passed to
    ``Engine.execute`` (omit for a plain ``EXPLAIN``)."""
    _report, estimates = cost_model.annotated_report(plan)
    node_ids = assign_node_ids(plan)
    by_id: Dict[str, ExplainNode] = {}

    def build(node: PlanNode) -> ExplainNode:
        node_id = node_ids[id(node)]
        if node_id in by_id:  # shared subtree: reuse the annotated node
            return by_id[node_id]
        explain = ExplainNode(node_id, node.label(), type(node).__name__)
        by_id[node_id] = explain
        captured = estimates.get(id(node))
        if captured is not None:
            explain.est_cost = captured.cost
            explain.est_rows = captured.tuples
            explain.est_visits = captured.visits
        else:
            # Not separately costed (e.g. the leaf under an
            # index-assisted selection); fall back to a bare estimate.
            try:
                explain.est_rows = cost_model.estimator.estimate(node).tuples
            except Exception:
                pass
        if profiler is not None:
            profile = profiler.profiles.get(node_id)
            if profile is not None:
                explain.actual_rows = profile.tuples_out
                explain.actual_seconds = profile.wall_seconds
                explain.exclusive_seconds = profiler.exclusive_seconds(node_id)
                explain.page_reads = profile.page_reads
                explain.index_page_reads = profile.index_page_reads
                explain.predicate_evals = profile.predicate_evals
                explain.actual_cost = (
                    (profile.page_reads + profile.index_page_reads)
                    * PAGE_READ_COST
                    + profile.predicate_evals * EVAL_COST
                )
                explain.fix_iterations = [
                    it.to_dict() for it in profile.fix_iterations
                ]
        breakdown = getattr(cost_model, "fix_breakdowns", {}).get(id(node))
        if breakdown is not None:
            explain.distributed = {"est": dict(breakdown)}
            actual = _distributed_actuals(explain.fix_iterations)
            if actual is not None:
                if explain.page_reads is not None:
                    actual["disk"] = float(explain.page_reads) * PAGE_READ_COST
                explain.distributed["act"] = actual
        explain.children = [build(child) for child in node.children]
        return explain

    root = build(plan)
    return ExplainTree(plan, root, by_id, node_ids, profiler is not None)


def render_explain(tree: ExplainTree) -> str:
    """Render the annotated PT through the standard plan printer."""
    def annotate(plan_node: PlanNode):
        explain = tree.node_for(plan_node)
        if explain is None:
            return "", []
        return f"  {explain.annotation()}", explain.extra_lines()

    return render_tree(tree.plan, annotate=annotate)


def _distributed_actuals(iterations: List[dict]) -> Optional[Dict[str, float]]:
    """Aggregate a Fix node's sharded per-round actuals into the same
    network/disk/skew terms the distributed cost model estimates."""
    sharded = [entry for entry in iterations if entry.get("shards") is not None]
    if not sharded:
        return None
    tuples = float(sum(entry.get("exchange_tuples", 0) for entry in sharded))
    frames = float(sum(entry.get("exchange_frames", 0) for entry in sharded))
    skews = [entry["skew"] for entry in sharded if entry.get("skew") is not None]
    actual: Dict[str, float] = {
        "shards": float(max(entry["shards"] for entry in sharded)),
        "rounds": float(len(sharded)),
        "exchange_tuples": tuples,
        "exchange_frames": frames,
        "exchange_bytes": float(
            sum(entry.get("exchange_bytes", 0) for entry in sharded)
        ),
        "network": tuples * NETWORK_TUPLE_COST + frames * NETWORK_FRAME_COST,
        "skew": (sum(skews) / len(skews)) if skews else 1.0,
        "barrier_wait_ms": float(
            sum(entry.get("barrier_wait_ms", 0.0) for entry in sharded)
        ),
    }
    return actual


def _round(value: Optional[float]) -> Optional[float]:
    return round(value, 2) if value is not None else None


def _round_ms(seconds: Optional[float]) -> Optional[float]:
    return round(seconds * 1000, 3) if seconds is not None else None


def _fmt(value: Optional[float]) -> str:
    return f"{value:.1f}" if value is not None else "?"


def _fmt_ms(seconds: Optional[float]) -> str:
    return f"{seconds * 1000:.2f}ms" if seconds is not None else "?"
