"""Per-operator runtime profiling of plan execution.

The engine streams bindings through nested generators — one per PT
node.  :class:`PlanProfiler` wraps each node's generator and charges
every ``next()`` call's wall time, physical page reads, index page
reads and predicate evaluations to that node (*inclusive* of its
children, since a parent's pull drives its subtree; the *exclusive*
share is recovered from the tree structure at report time).  ``Fix``
nodes additionally record one entry per semi-naive iteration: the new
tuples the round produced and how long it took.

Node identity: :func:`assign_node_ids` numbers the plan's nodes in
pre-order (``n0``, ``n1``, ...).  These ids are stable for a given
plan shape, key the engine's per-node tuple counters
(:attr:`~repro.engine.metrics.RuntimeMetrics.tuples_by_node`), and
match the ids shown by ``EXPLAIN ANALYZE``.

Profiling is strictly opt-in: ``Engine.execute(plan, profiler=...)``;
when no profiler is passed the engine's generators are returned
unwrapped and the hot path pays nothing.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, Optional

__all__ = [
    "assign_node_ids",
    "FixIterationProfile",
    "NodeProfile",
    "PlanProfiler",
    "FIX_ITERATION_RING",
]

#: Bound on per-Fix-node iteration records.  A long-running request
#: whose recursion grinds through tens of thousands of small rounds
#: must not grow its profile without limit; once the ring is full the
#: *oldest* rounds are dropped (and counted), keeping the newest
#: window — the rounds an operator debugging the live query cares
#: about.
FIX_ITERATION_RING = 512


#: Single-slot memo for :func:`assign_node_ids`.  The service executes
#: the same cached plan object over and over; holding a strong
#: reference to the last plan keeps its node ids (which key on
#: ``id(node)``) valid, and swapping the whole tuple keeps concurrent
#: readers consistent.
_node_ids_memo = (None, {})


def assign_node_ids(plan) -> Dict[int, str]:
    """Map ``id(node) -> "n<preorder-index>"`` over a plan.

    A subtree object shared between two positions keeps its first
    (pre-order) id; its profile merges both occurrences.
    """
    global _node_ids_memo
    cached_plan, cached_ids = _node_ids_memo
    if plan is cached_plan:
        return cached_ids
    ids: Dict[int, str] = {}
    for index, node in enumerate(plan.walk()):
        ids.setdefault(id(node), f"n{index}")
    _node_ids_memo = (plan, ids)
    return ids


@dataclass
class FixIterationProfile:
    """One semi-naive round of a ``Fix`` node.

    When the round ran as a distributed scatter-gather exchange
    (:mod:`repro.dist`), the optional fields record the shard fan-out
    and the round's exchange volume (tuples and JSON-frame bytes, both
    legs); they stay ``None`` — and absent from :meth:`to_dict` — for
    single-store rounds.
    """

    iteration: int  #: 0 is the base round; 1.. are delta rounds.
    new_tuples: int
    seconds: float
    shards: Optional[int] = None
    exchange_tuples: Optional[int] = None
    exchange_bytes: Optional[int] = None
    exchange_frames: Optional[int] = None
    #: Observed max/mean shard load for the round (>= 1.0).
    skew: Optional[float] = None
    #: Coordinator seconds blocked on the round's barrier.
    barrier_wait_s: Optional[float] = None
    #: Tuples produced per shard this round (shard index -> count).
    per_shard: Optional[Dict[int, int]] = None

    def to_dict(self) -> dict:
        payload = {
            "iteration": self.iteration,
            "new_tuples": self.new_tuples,
            "ms": round(self.seconds * 1000, 3),
        }
        if self.shards is not None:
            payload["shards"] = self.shards
        if self.exchange_tuples is not None:
            payload["exchange_tuples"] = self.exchange_tuples
        if self.exchange_bytes is not None:
            payload["exchange_bytes"] = self.exchange_bytes
        if self.exchange_frames is not None:
            payload["exchange_frames"] = self.exchange_frames
        if self.skew is not None:
            payload["skew"] = round(self.skew, 4)
        if self.barrier_wait_s is not None:
            payload["barrier_wait_ms"] = round(self.barrier_wait_s * 1000, 3)
        if self.per_shard is not None:
            payload["per_shard"] = {
                str(shard): count
                for shard, count in sorted(self.per_shard.items())
            }
        return payload


@dataclass
class NodeProfile:
    """Inclusive runtime counters for one PT node."""

    node_id: str
    label: str
    kind: str
    tuples_out: int = 0
    next_calls: int = 0
    wall_seconds: float = 0.0
    page_reads: int = 0
    index_page_reads: float = 0.0
    predicate_evals: int = 0
    fix_iterations: Deque[FixIterationProfile] = field(
        default_factory=lambda: deque(maxlen=FIX_ITERATION_RING)
    )
    #: Iteration records evicted from the ring (oldest-first).
    fix_iterations_dropped: int = 0

    def record_fix_iteration(self, entry: FixIterationProfile) -> None:
        ring = self.fix_iterations
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.fix_iterations_dropped += 1
        ring.append(entry)

    def to_dict(self) -> dict:
        payload = {
            "node_id": self.node_id,
            "label": self.label,
            "kind": self.kind,
            "tuples_out": self.tuples_out,
            "wall_ms": round(self.wall_seconds * 1000, 3),
            "page_reads": self.page_reads,
            "index_page_reads": round(self.index_page_reads, 2),
            "predicate_evals": self.predicate_evals,
        }
        if self.fix_iterations:
            payload["fix_iterations"] = [
                it.to_dict() for it in self.fix_iterations
            ]
        if self.fix_iterations_dropped:
            payload["fix_iterations_dropped"] = self.fix_iterations_dropped
        return payload


class PlanProfiler:
    """Collects :class:`NodeProfile` records during one execution.

    The engine calls :meth:`attach` at the start of ``execute`` (wiring
    in the live counters the deltas are read from), then routes every
    node's generator through :meth:`wrap`.
    """

    def __init__(self) -> None:
        self.profiles: Dict[str, NodeProfile] = {}
        self.children: Dict[str, List[str]] = {}
        self._ids: Dict[int, str] = {}
        self._buffer = None
        self._metrics = None

    # -- wiring --------------------------------------------------------------

    def attach(self, plan, node_ids: Dict[int, str], buffer, metrics) -> None:
        """Register the plan's nodes and the counter sources."""
        self._ids = node_ids
        self._buffer = buffer
        self._metrics = metrics
        for node in plan.walk():
            node_id = node_ids[id(node)]
            if node_id not in self.profiles:
                self.profiles[node_id] = NodeProfile(
                    node_id, node.label(), type(node).__name__
                )
                self.children[node_id] = []
                seen_children = set()
                for child in node.children:
                    child_id = node_ids[id(child)]
                    if child_id not in seen_children:
                        seen_children.add(child_id)
                        self.children[node_id].append(child_id)

    def profile_for(self, node) -> Optional[NodeProfile]:
        node_id = self._ids.get(id(node))
        return self.profiles.get(node_id) if node_id is not None else None

    def worker_view(self, metrics, buffer=None) -> "PlanProfiler":
        """A thread-confined profiler for one parallel-fixpoint worker
        or one distributed-fixpoint shard session.

        Shares the node-id map and children topology (read-only) but
        owns fresh :class:`NodeProfile` records, and reads its counter
        deltas from the worker's own ``metrics``.  By default the
        buffer counters stay shared, so per-node *page-read*
        attribution is approximate under concurrency (a worker may
        observe a peer's miss) while tuples, wall time, index reads and
        predicate evals stay exact; a shard session passes its private
        ``buffer`` stats so its page reads are attributed exactly.
        Flushed back with :meth:`merge_from`.
        """
        clone = PlanProfiler()
        clone._ids = self._ids
        clone._buffer = buffer if buffer is not None else self._buffer
        clone._metrics = metrics
        clone.children = self.children
        clone.profiles = {
            node_id: NodeProfile(node_id, profile.label, profile.kind)
            for node_id, profile in self.profiles.items()
        }
        return clone

    def merge_from(self, other: "PlanProfiler") -> None:
        """Accumulate a worker view's per-node counters into this
        profiler (called from the coordinating thread)."""
        for node_id, theirs in other.profiles.items():
            mine = self.profiles.get(node_id)
            if mine is None:
                self.profiles[node_id] = theirs
                continue
            mine.tuples_out += theirs.tuples_out
            mine.next_calls += theirs.next_calls
            mine.wall_seconds += theirs.wall_seconds
            mine.page_reads += theirs.page_reads
            mine.index_page_reads += theirs.index_page_reads
            mine.predicate_evals += theirs.predicate_evals
            mine.fix_iterations_dropped += theirs.fix_iterations_dropped
            for entry in theirs.fix_iterations:
                mine.record_fix_iteration(entry)

    # -- recording -----------------------------------------------------------

    def wrap(self, node, iterator: Iterator) -> Iterator:
        """Meter an engine generator: each ``next()`` charges its wall
        time and counter deltas (inclusive of children) to ``node``."""
        profile = self.profile_for(node)
        if profile is None:  # a node outside the registered plan
            return iterator
        return self._metered(profile, iterator)

    def wrap_batches(self, node, batches: Iterator) -> Iterator:
        """Meter a batch generator: one probe (clock + counter deltas)
        per *batch* instead of per tuple — the metering cost is
        amortized across ``batch_size`` bindings, so profiling a
        batched pipeline costs roughly ``1/batch_size`` of what
        per-tuple metering did.  ``tuples_out`` still advances by the
        exact number of bindings each batch carries."""
        profile = self.profile_for(node)
        if profile is None:  # a node outside the registered plan
            return batches
        return self._metered_batches(profile, batches)

    def _metered_batches(self, profile: NodeProfile, batches: Iterator) -> Iterator:
        buffer = self._buffer
        metrics = self._metrics
        clock = time.perf_counter
        while True:
            reads0 = buffer.physical_reads
            index0 = metrics.index_page_reads
            evals0 = metrics.predicate_evals
            started = clock()
            try:
                batch = next(batches)
            except StopIteration:
                profile.wall_seconds += clock() - started
                profile.page_reads += buffer.physical_reads - reads0
                profile.index_page_reads += metrics.index_page_reads - index0
                profile.predicate_evals += metrics.predicate_evals - evals0
                profile.next_calls += 1
                return
            profile.wall_seconds += clock() - started
            profile.page_reads += buffer.physical_reads - reads0
            profile.index_page_reads += metrics.index_page_reads - index0
            profile.predicate_evals += metrics.predicate_evals - evals0
            profile.next_calls += 1
            profile.tuples_out += len(batch)
            yield batch

    def _metered(self, profile: NodeProfile, iterator: Iterator) -> Iterator:
        buffer = self._buffer
        metrics = self._metrics
        clock = time.perf_counter
        while True:
            reads0 = buffer.physical_reads
            index0 = metrics.index_page_reads
            evals0 = metrics.predicate_evals
            started = clock()
            try:
                item = next(iterator)
            except StopIteration:
                profile.wall_seconds += clock() - started
                profile.page_reads += buffer.physical_reads - reads0
                profile.index_page_reads += metrics.index_page_reads - index0
                profile.predicate_evals += metrics.predicate_evals - evals0
                profile.next_calls += 1
                return
            profile.wall_seconds += clock() - started
            profile.page_reads += buffer.physical_reads - reads0
            profile.index_page_reads += metrics.index_page_reads - index0
            profile.predicate_evals += metrics.predicate_evals - evals0
            profile.next_calls += 1
            profile.tuples_out += 1
            yield item

    def fix_iteration(
        self,
        node,
        iteration: int,
        new_tuples: int,
        seconds: float,
        shards: Optional[int] = None,
        exchange_tuples: Optional[int] = None,
        exchange_bytes: Optional[int] = None,
        exchange_frames: Optional[int] = None,
        skew: Optional[float] = None,
        barrier_wait_s: Optional[float] = None,
        per_shard: Optional[Dict[int, int]] = None,
    ) -> None:
        """Record one semi-naive round of a ``Fix`` node; distributed
        rounds also pass their shard width, exchange volume, observed
        skew, barrier wait and per-shard production."""
        profile = self.profile_for(node)
        if profile is not None:
            profile.record_fix_iteration(
                FixIterationProfile(
                    iteration,
                    new_tuples,
                    seconds,
                    shards=shards,
                    exchange_tuples=exchange_tuples,
                    exchange_bytes=exchange_bytes,
                    exchange_frames=exchange_frames,
                    skew=skew,
                    barrier_wait_s=barrier_wait_s,
                    per_shard=per_shard,
                )
            )

    # -- reporting -----------------------------------------------------------

    def probe_count(self) -> int:
        """Metering probes taken so far (one per generator ``next()``)
        — the overhead governor's unit of profile-side spend."""
        return sum(
            profile.next_calls for profile in self.profiles.values()
        )

    def exclusive_seconds(self, node_id: str) -> float:
        """Wall time charged to a node minus its children's share."""
        profile = self.profiles.get(node_id)
        if profile is None:
            return 0.0
        spent = profile.wall_seconds
        for child_id in self.children.get(node_id, []):
            child = self.profiles.get(child_id)
            if child is not None:
                spent -= child.wall_seconds
        return max(spent, 0.0)

    def to_dict(self) -> dict:
        return {
            "nodes": [
                profile.to_dict() for profile in self.profiles.values()
            ],
            "children": dict(self.children),
        }
