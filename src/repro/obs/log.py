"""Unified structured logging for the service, distribution and engine layers.

Every ``repro.*`` logger funnels through one handler configured by
:func:`configure_logging`.  Two formats are supported:

``text``
    ``HH:MM:SS LEVEL logger message key=value ...`` — the classic
    human-oriented line, with any structured fields appended.

``json``
    One JSON object per line with the fixed keys ``ts`` / ``level`` /
    ``logger`` / ``message`` plus every structured field attached to the
    record (``request_id``, ``trace_id``, ``shard``, ``round``,
    ``query_class``, ...).

Structured fields ride the stdlib ``extra=`` mechanism, so call sites
stay plain ``logging`` calls::

    logger = get_logger("repro.service")
    logger.info("anomaly detected", extra={
        "request_id": 17, "query_class": "ab12cd34", "metric": "latency",
    })

Log aggregation pipelines get machine-parseable lines with ``json``;
``repro serve --log-format json`` selects it from the CLI.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, Optional

#: Root of the logger namespace configure_logging() manages.
ROOT_LOGGER = "repro"

#: Attributes every LogRecord carries; anything else was passed via
#: ``extra=`` and is a structured field worth surfacing.
_RESERVED = frozenset(
    (
        "args",
        "asctime",
        "created",
        "exc_info",
        "exc_text",
        "filename",
        "funcName",
        "levelname",
        "levelno",
        "lineno",
        "message",
        "module",
        "msecs",
        "msg",
        "name",
        "pathname",
        "process",
        "processName",
        "relativeCreated",
        "stack_info",
        "taskName",
        "thread",
        "threadName",
    )
)


def structured_fields(record: logging.LogRecord) -> Dict[str, Any]:
    """The ``extra=`` fields attached to *record*, in insertion order."""

    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RESERVED and not key.startswith("_")
    }


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line; structured fields become top-level keys."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(structured_fields(record))
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextLogFormatter(logging.Formatter):
    """Human-oriented line with structured fields appended as key=value."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = (
            f"{stamp} {record.levelname:<7} {record.name} "
            f"{record.getMessage()}"
        )
        fields = structured_fields(record)
        if fields:
            rendered = " ".join(f"{key}={value}" for key, value in fields.items())
            line = f"{line} {rendered}"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def configure_logging(
    fmt: str = "text",
    level: int = logging.INFO,
    stream: Optional[Any] = None,
) -> logging.Handler:
    """Install the shared handler on the ``repro`` logger namespace.

    Idempotent: a second call replaces the previous handler instead of
    stacking one more (re-running ``repro serve`` in-process must not
    duplicate every line).  Returns the installed handler so tests can
    point it at a capture stream.
    """

    if fmt not in ("text", "json"):
        raise ValueError(f"unknown log format {fmt!r} (expected text|json)")
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonLogFormatter() if fmt == "json" else TextLogFormatter()
    )
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler


def get_logger(name: str) -> logging.Logger:
    """A logger under the managed ``repro`` namespace."""

    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
