"""A lightweight span tracer for the optimizer and the engine.

Spans form a tree (parent/child nesting follows the call structure),
carry attributes, and are timed with a monotonic clock
(:func:`time.perf_counter`).  Point-in-time *events* — one per
candidate PT considered, per Iterative Improvement move accepted or
rejected, per push-vs-no-push cost comparison — attach to the span
that was open when they fired.

Everything is designed to cost nothing when tracing is off: callers
receive :data:`NULL_TRACER` by default, whose ``span``/``event`` are
no-ops, and hot loops guard event construction behind
``tracer.enabled`` so the attribute dicts are never built.

Exports: :meth:`Tracer.to_dict` (plain JSON) and
:meth:`Tracer.to_chrome_trace` (the Chrome ``chrome://tracing`` /
Perfetto "Trace Event Format": complete ``X`` events for spans,
instant ``i`` events for events), both loadable without this library.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "SpanEvent", "Tracer", "NullTracer", "NULL_TRACER"]


class SpanEvent:
    """A point-in-time observation attached to a span."""

    __slots__ = ("name", "at", "attributes")

    def __init__(self, name: str, at: float, attributes: Dict[str, Any]) -> None:
        self.name = name
        self.at = at
        self.attributes = attributes

    def to_dict(self) -> dict:
        payload = {"name": self.name, "at": round(self.at, 9)}
        if self.attributes:
            payload["attributes"] = self.attributes
        return payload


class Span:
    """One timed region; doubles as its own context manager."""

    __slots__ = (
        "tracer",
        "name",
        "index",
        "parent",
        "start",
        "end",
        "attributes",
        "events",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        index: int,
        parent: Optional[int],
        attributes: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.index = index
        self.parent = parent
        self.attributes = attributes
        self.events: List[SpanEvent] = []
        self.start = 0.0
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **attributes: Any) -> None:
        """Attach or overwrite attributes on the span."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        self.tracer._stack.append(self.index)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        self.tracer._stack.pop()
        if exc_type is not None:
            self.attributes["error"] = f"{exc_type.__name__}: {exc}"

    def to_dict(self) -> dict:
        payload: Dict[str, Any] = {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "start": round(self.start, 9),
            "duration_ms": round(self.duration * 1000, 6),
        }
        if self.attributes:
            payload["attributes"] = self.attributes
        if self.events:
            payload["events"] = [event.to_dict() for event in self.events]
        return payload


class Tracer:
    """Collects a tree of spans plus their events.

    A tracer can carry child tracers, one per *lane*: the distributed
    fixpoint gives every shard its own thread-confined tracer and
    adopts them into the coordinator's (:meth:`adopt`/:meth:`child`),
    so one request's spans stitch into a single trace —
    :meth:`to_chrome_trace` renders each lane as its own ``tid`` row
    (a coordinator lane plus one per shard), all against one shared
    time origin.  ``trace_id`` names the whole stitched trace; child
    lanes inherit it.
    """

    enabled = True

    def __init__(
        self,
        trace_id: Optional[str] = None,
        lane: Optional[str] = None,
        max_spans: Optional[int] = None,
    ) -> None:
        self.trace_id = trace_id
        self.lane = lane
        #: Optional capacity cap: once ``max_spans`` spans exist, new
        #: spans become shared no-op spans and new events are dropped
        #: (counted), so a single long-running request — 10k fixpoint
        #: rounds each opening a round span — has a hard memory
        #: ceiling.  ``None`` keeps the historical unbounded behavior.
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.dropped_events = 0
        self.spans: List[Span] = []
        #: Events fired while no span was open.
        self.orphan_events: List[SpanEvent] = []
        #: Lane name -> adopted child tracer (insertion-ordered; the
        #: Chrome export assigns tids in this order).
        self.children: Dict[str, "Tracer"] = {}
        self._stack: List[int] = []

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span: ``with tracer.span("rewrite", query=...):``."""
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return _OVERFLOW_SPAN  # type: ignore[return-value]
        parent = self._stack[-1] if self._stack else None
        span = Span(self, name, len(self.spans), parent, attributes)
        self.spans.append(span)
        return span

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point event on the currently open span."""
        sink = (
            self.spans[self._stack[-1]].events
            if self._stack
            else self.orphan_events
        )
        if self.max_spans is not None and len(sink) >= self.max_spans:
            self.dropped_events += 1
            return
        sink.append(SpanEvent(name, time.perf_counter(), attributes))

    def span_count(self) -> int:
        """Spans + events recorded across this tracer and its lanes
        (the governor's unit of trace-side observability work)."""
        total = len(self.spans) + len(self.orphan_events)
        total += sum(len(span.events) for span in self.spans)
        for child in self.children.values():
            total += child.span_count()
        return total

    # -- lanes --------------------------------------------------------------

    def child(self, lane: str) -> "Tracer":
        """Create and adopt a child tracer for ``lane`` (e.g.
        ``"shard0"``).  The child inherits the trace id and is safe to
        record into from another thread — it has its own span stack —
        as long as one thread owns it at a time."""
        tracer = Tracer(
            trace_id=self.trace_id, lane=lane, max_spans=self.max_spans
        )
        self.adopt(lane, tracer)
        return tracer

    def adopt(self, lane: str, tracer: "Tracer") -> None:
        """Stitch an independently recorded tracer in as a lane."""
        tracer.lane = lane
        if tracer.trace_id is None:
            tracer.trace_id = self.trace_id
        self.children[lane] = tracer

    # -- queries ------------------------------------------------------------

    def find(self, name: str) -> List[Span]:
        """All spans with the given name."""
        return [span for span in self.spans if span.name == name]

    def events_named(self, name: str) -> List[SpanEvent]:
        """All events with the given name, across every span."""
        found = [e for e in self.orphan_events if e.name == name]
        for span in self.spans:
            found.extend(e for e in span.events if e.name == name)
        return found

    # -- exports ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-serializable form (spans in creation order)."""
        payload: Dict[str, Any] = {
            "spans": [span.to_dict() for span in self.spans],
            "orphan_events": [e.to_dict() for e in self.orphan_events],
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.lane is not None:
            payload["lane"] = self.lane
        if self.dropped_spans:
            payload["dropped_spans"] = self.dropped_spans
        if self.dropped_events:
            payload["dropped_events"] = self.dropped_events
        if self.children:
            payload["lanes"] = {
                lane: child.to_dict()
                for lane, child in self.children.items()
            }
        return payload

    def _lanes(self) -> List[tuple]:
        """``(tid, lane_name, tracer)`` rows: this tracer on tid 1
        (the coordinator lane when children exist), children on 2..N
        in adoption order."""
        lanes = [(1, self.lane or ("coordinator" if self.children else "main"), self)]
        for index, (lane, child) in enumerate(self.children.items()):
            lanes.append((2 + index, lane, child))
        return lanes

    def to_chrome_trace(self) -> dict:
        """The Chrome Trace Event Format (open in ``chrome://tracing``
        or https://ui.perfetto.dev): spans become complete ``X``
        events, span events become instant ``i`` events.  Adopted lane
        tracers are stitched in against one shared time origin, each
        lane on its own ``tid`` with a ``thread_name`` metadata row."""
        lanes = self._lanes()
        origin = min(
            (
                span.start
                for _tid, _name, tracer in lanes
                for span in tracer.spans
                if span.start
            ),
            default=0.0,
        )

        def micros(seconds: float) -> float:
            return round((seconds - origin) * 1e6, 3)

        trace_events: List[dict] = []
        if self.children or self.lane:
            for tid, name, _tracer in lanes:
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": name},
                    }
                )
        for tid, _name, tracer in lanes:
            common = {}
            if tracer.trace_id is not None:
                common["trace_id"] = tracer.trace_id
            for span in tracer.spans:
                end = span.end if span.end is not None else span.start
                trace_events.append(
                    {
                        "name": span.name,
                        "cat": "repro",
                        "ph": "X",
                        "ts": micros(span.start),
                        "dur": round((end - span.start) * 1e6, 3),
                        "pid": 1,
                        "tid": tid,
                        "args": {**common, **_chrome_args(span.attributes)},
                    }
                )
                for event in span.events:
                    trace_events.append(
                        {
                            "name": event.name,
                            "cat": "repro",
                            "ph": "i",
                            "s": "t",
                            "ts": micros(event.at),
                            "pid": 1,
                            "tid": tid,
                            "args": _chrome_args(event.attributes),
                        }
                    )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _chrome_args(attributes: Dict[str, Any]) -> Dict[str, Any]:
    """Chrome-trace args must be JSON scalars; stringify the rest."""
    return {
        key: value
        if isinstance(value, (str, int, float, bool)) or value is None
        else str(value)
        for key, value in attributes.items()
    }


class _NullSpan:
    """Span stand-in that does nothing; reused for every call."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Shared span handed out once a capped tracer is full — keeps the
#: ``with tracer.span(...)`` call shape working while recording nothing.
#: It never touches the tracer's span stack, so events fired inside it
#: attach to the nearest real open span (and count against its cap).
_OVERFLOW_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Hot paths should still guard per-item ``event`` calls behind
    ``tracer.enabled`` so keyword dicts are never even built.
    """

    enabled = False

    _SPAN = _NullSpan()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return self._SPAN

    def event(self, name: str, **attributes: Any) -> None:
        pass


#: Shared disabled tracer; the default everywhere a tracer is accepted.
NULL_TRACER = NullTracer()
