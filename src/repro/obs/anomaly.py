"""EWMA + MAD anomaly detection over per-query-class telemetry.

For every ``(query class, metric)`` pair the detector keeps two
exponentially weighted moving estimates: the *level* (EWMA of the
values) and a robust *spread* (EWMA of absolute deviations from the
level — the streaming analogue of the median absolute deviation,
scaled by the usual 1.4826 so it estimates a standard deviation under
normality).  A new sample scores

    z = (x - level) / (1.4826 · spread)

and is anomalous when the score exceeds ``threshold`` *and* the value
sits above the level (one-sided: only slow / misestimated / skewed
runs are incidents; unusually fast runs are not).

Two details matter in production:

* **Warm-up** — no scoring until ``min_samples`` observations exist
  for the pair, so a cold service does not page on its first queries.

* **No contamination** — anomalous samples do *not* update the
  baseline.  A level shift (say, a buffer pool that suddenly misses to
  slow storage) keeps being flagged instead of being absorbed into
  "the new normal" within a handful of requests.  The flip side — a
  *legitimate* permanent shift keeps raising anomalies — is the right
  default for a diagnostic feed and is documented in
  docs/observability.md.

Metrics scored per query completion: latency (seconds), misestimate
(cost q-error), shard skew (max/mean), and barrier-wait fraction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["AnomalyConfig", "Anomaly", "AnomalyDetector", "MAD_SCALE"]

#: Consistency constant making a MAD estimate comparable to a standard
#: deviation under normality.
MAD_SCALE = 1.4826

#: Metrics the detector scores, in reporting order.
METRICS = ("latency", "misestimate", "skew", "barrier_wait")


@dataclass
class AnomalyConfig:
    """Tuning knobs for :class:`AnomalyDetector`."""

    #: Robust z-score beyond which a sample is anomalous.
    threshold: float = 4.0
    #: Observations required per (class, metric) before scoring starts.
    min_samples: int = 8
    #: EWMA update rate for level and spread.
    alpha: float = 0.2
    #: Spread floor as a fraction of the level — protects against a
    #: perfectly stable warm-up window making any jitter "anomalous".
    min_spread_fraction: float = 0.05
    #: Absolute spread floor (seconds) for the latency metric.  Sub-ms
    #: queries see routine 2-4x scheduler hiccups that a purely
    #: relative floor would flag; an incident must hurt on a
    #: milliseconds scale before latency scoring reacts.
    min_latency_spread: float = 0.005
    #: LRU bound on tracked query classes.
    max_classes: int = 512


@dataclass
class Anomaly:
    """One flagged (query class, metric) observation."""

    query_class: str
    metric: str
    value: float
    baseline: float
    spread: float
    score: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query_class": self.query_class,
            "metric": self.metric,
            "value": round(self.value, 6),
            "baseline": round(self.baseline, 6),
            "spread": round(self.spread, 6),
            "score": round(self.score, 2),
        }

    def describe(self) -> str:
        return (
            f"anomaly:{self.metric} {self.value:.4g} vs baseline "
            f"{self.baseline:.4g} (z={self.score:.1f})"
        )


class _Baseline:
    __slots__ = ("level", "spread", "count")

    def __init__(self) -> None:
        self.level = 0.0
        self.spread = 0.0
        self.count = 0

    def update(self, value: float, alpha: float) -> None:
        if self.count == 0:
            self.level = value
            self.spread = 0.0
        else:
            deviation = abs(value - self.level)
            self.spread += alpha * (deviation - self.spread)
            self.level += alpha * (value - self.level)
        self.count += 1

    def score(
        self,
        value: float,
        min_spread_fraction: float,
        min_spread: float = 0.0,
    ) -> float:
        spread = max(
            self.spread,
            abs(self.level) * min_spread_fraction,
            min_spread,
            1e-9,
        )
        return (value - self.level) / (MAD_SCALE * spread)


class AnomalyDetector:
    """Streaming per-query-class anomaly scoring.  Thread-safe."""

    def __init__(self, config: Optional[AnomalyConfig] = None) -> None:
        self.config = config or AnomalyConfig()
        self._lock = threading.Lock()
        #: query_class -> metric -> _Baseline (class-level LRU).
        self._classes: "OrderedDict[str, Dict[str, _Baseline]]" = OrderedDict()
        self.observed = 0
        self.flagged = 0

    def _baselines(self, query_class: str) -> Dict[str, _Baseline]:
        baselines = self._classes.get(query_class)
        if baselines is None:
            baselines = {}
            self._classes[query_class] = baselines
            while len(self._classes) > self.config.max_classes:
                self._classes.popitem(last=False)
        else:
            self._classes.move_to_end(query_class)
        return baselines

    def observe(
        self,
        query_class: str,
        latency: float,
        misestimate: Optional[float] = None,
        skew: Optional[float] = None,
        barrier_wait: Optional[float] = None,
    ) -> List[Anomaly]:
        """Score one completed query; returns the anomalies it raised.

        ``misestimate`` is the cost q-error (≥ 1), ``skew`` the
        max/mean per-shard tuple ratio, ``barrier_wait`` the fraction
        of execute time spent waiting at round barriers; pass ``None``
        for metrics that do not apply (serial runs have no skew).
        """

        config = self.config
        samples = (
            ("latency", latency),
            ("misestimate", misestimate),
            ("skew", skew),
            ("barrier_wait", barrier_wait),
        )
        flagged: List[Anomaly] = []
        with self._lock:
            self.observed += 1
            baselines = self._baselines(query_class)
            for metric, value in samples:
                if value is None:
                    continue
                baseline = baselines.get(metric)
                if baseline is None:
                    baseline = baselines[metric] = _Baseline()
                anomalous = False
                if baseline.count >= config.min_samples and value > baseline.level:
                    floor = (
                        config.min_latency_spread
                        if metric == "latency"
                        else 0.0
                    )
                    score = baseline.score(
                        value, config.min_spread_fraction, floor
                    )
                    if score > config.threshold:
                        anomalous = True
                        flagged.append(
                            Anomaly(
                                query_class=query_class,
                                metric=metric,
                                value=value,
                                baseline=baseline.level,
                                spread=baseline.spread,
                                score=score,
                            )
                        )
                if not anomalous:
                    baseline.update(value, config.alpha)
            self.flagged += len(flagged)
        return flagged

    def snapshot(self, top: int = 32) -> Dict[str, Any]:
        """Stats for the ``governor`` service op."""

        with self._lock:
            classes = list(self._classes.items())[-top:]
            return {
                "observed": self.observed,
                "flagged": self.flagged,
                "threshold": self.config.threshold,
                "min_samples": self.config.min_samples,
                "classes": {
                    name: {
                        metric: {
                            "level": round(baseline.level, 6),
                            "spread": round(baseline.spread, 6),
                            "count": baseline.count,
                        }
                        for metric, baseline in baselines.items()
                    }
                    for name, baselines in classes
                },
            }
