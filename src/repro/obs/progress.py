"""Live fixpoint introspection: per-round progress of running queries.

``EXPLAIN ANALYZE`` is post-mortem — it reports after the query
finished.  A long recursive query on a sharded store deserves a live
view: which semi-naive round it is on, how fast the frontier is
shrinking, which shard is the straggler.  This module provides the
plumbing: the engine exposes a ``progress`` attribute (``None`` by
default, zero hot-path cost) that both fixpoint drivers call once per
round; the service points it at a :class:`QueryProgress` handle minted
from the shared :class:`ProgressTracker`, whose :meth:`snapshot` the
``progress`` service op serializes for ``repro top``.

Thread safety: ``round_update`` is called from the coordinating thread
of one query while ``snapshot`` is called from service threads; both
sides take the tracker/handle lock, and each round record is an
immutable dict once appended.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = ["QueryProgress", "ProgressTracker", "ROUND_RING_SIZE"]

#: Rounds retained per query (a bounded ring: deep recursions keep the
#: most recent rounds; the totals keep counting past the ring).
ROUND_RING_SIZE = 32


class QueryProgress:
    """Live per-round state of one running query.

    The fixpoint drivers call :meth:`round_update` once per completed
    round; ``repro top`` reads :meth:`snapshot`.  Serial rounds pass
    ``fix``/``round_index``/``delta``/``seconds``; distributed rounds
    additionally pass ``delta_by_shard``, ``skew``, ``exchange_tuples``,
    ``exchange_bytes`` and ``barrier_wait_s``.
    """

    def __init__(
        self,
        request_id: str,
        query: str = "",
        shards: int = 1,
        on_round: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self.request_id = request_id
        self.query = query
        self.shards = shards
        self.started = time.time()
        self._lock = threading.Lock()
        self._rounds: deque = deque(maxlen=ROUND_RING_SIZE)
        self._round_count = 0
        self._total_delta = 0
        self._on_round = on_round
        self.finished: Optional[float] = None

    def round_update(
        self,
        fix: str,
        round_index: int,
        delta: int,
        seconds: float,
        delta_by_shard: Optional[Dict[int, int]] = None,
        skew: Optional[float] = None,
        exchange_tuples: Optional[int] = None,
        exchange_bytes: Optional[int] = None,
        barrier_wait_s: Optional[float] = None,
    ) -> None:
        record: Dict[str, object] = {
            "fix": fix,
            "round": round_index,
            "delta": delta,
            "ms": round(seconds * 1000, 3),
        }
        if delta_by_shard is not None:
            record["delta_by_shard"] = {
                str(shard): count
                for shard, count in sorted(delta_by_shard.items())
            }
        if skew is not None:
            record["skew"] = round(skew, 4)
        if exchange_tuples is not None:
            record["exchange_tuples"] = exchange_tuples
            # Exchange throughput: wire tuples over the round's wall
            # time (tuples/s, 0 when the round was too fast to time).
            if seconds > 0:
                record["exchange_tuples_per_s"] = round(
                    exchange_tuples / seconds, 1
                )
        if exchange_bytes is not None:
            record["exchange_bytes"] = exchange_bytes
        if barrier_wait_s is not None:
            record["barrier_wait_ms"] = round(barrier_wait_s * 1000, 3)
        with self._lock:
            self._rounds.append(record)
            self._round_count += 1
            self._total_delta += max(0, delta)
        if self._on_round is not None:
            self._on_round(dict(record, shards=self.shards))

    def snapshot(self) -> dict:
        """A JSON-safe view of the query's live state."""
        with self._lock:
            rounds = list(self._rounds)
            round_count = self._round_count
            total_delta = self._total_delta
        last = rounds[-1] if rounds else None
        payload: Dict[str, object] = {
            "request": self.request_id,
            "query": self.query,
            "shards": self.shards,
            "elapsed_s": round(
                (self.finished or time.time()) - self.started, 3
            ),
            "rounds": round_count,
            "total_delta": total_delta,
            "recent_rounds": rounds,
        }
        if last is not None:
            payload["last_round"] = last
        return payload


class ProgressTracker:
    """Registry of in-flight queries, shared by the service's worker
    threads; ``begin`` mints a handle, ``finish`` retires it."""

    def __init__(
        self, on_round: Optional[Callable[[dict], None]] = None
    ) -> None:
        self._lock = threading.Lock()
        self._active: Dict[str, QueryProgress] = {}
        #: Recently finished queries (kept for one `top` refresh cycle
        #: so short queries are visible at all).
        self._recent: deque = deque(maxlen=8)
        self._on_round = on_round

    def begin(
        self, request_id: str, query: str = "", shards: int = 1
    ) -> QueryProgress:
        handle = QueryProgress(
            request_id, query=query, shards=shards, on_round=self._on_round
        )
        with self._lock:
            self._active[request_id] = handle
        return handle

    def finish(self, handle: QueryProgress) -> None:
        handle.finished = time.time()
        with self._lock:
            self._active.pop(handle.request_id, None)
            self._recent.append(handle)

    def snapshot(self) -> dict:
        """All in-flight queries plus the recently finished tail."""
        with self._lock:
            active = list(self._active.values())
            recent = list(self._recent)
        return {
            "active": [handle.snapshot() for handle in active],
            "recent": [handle.snapshot() for handle in recent],
        }
