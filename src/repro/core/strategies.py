"""Search strategies (Sections 4.1, 4.5; [IC90], [LV91]).

The optimizer isolates *what can be transformed* (actions/moves) from
*how alternatives are explored* (strategies).  Strategies implemented:

* :class:`IterativeImprovement` — random restarts, each descending via
  random improving moves until a local minimum ([IC90] II);
* :class:`SimulatedAnnealing` — accepts uphill moves with probability
  ``exp(-Δ/T)`` under a geometric cooling schedule ([IC90] SA);
* :class:`TwoPhase` — II to find a good start, then low-temperature SA
  around it ([IC90] 2PO; the paper's transformPT is "analogous to
  two-pass search strategies");
* :class:`ExhaustiveSearch` — closes the move graph breadth-first and
  returns the global optimum over it (the [KZ88]-style baseline whose
  "optimization time may become unacceptably high").

All strategies count the plans they cost — the currency of the
optimization-time comparison benchmarks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.moves import neighbors
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import PlanNode

__all__ = [
    "SearchResult",
    "SearchStrategy",
    "IterativeImprovement",
    "SimulatedAnnealing",
    "TwoPhase",
    "ExhaustiveSearch",
    "STRATEGY_NAMES",
    "resolve_strategy",
]

CostFn = Callable[[PlanNode], float]


@dataclass
class SearchResult:
    """Outcome of a strategy run."""

    plan: PlanNode
    cost: float
    plans_costed: int
    moves_taken: List[str] = field(default_factory=list)


class SearchStrategy:
    """Base class: improve a starting plan under a cost function.

    ``extended_moves`` additionally explores union-over-join
    distribution (the Section 5 extension).
    """

    extended_moves: bool = False
    #: Self-contained strategies explore push alternatives themselves
    #: (push-filter is in their move graph), so transformPT runs them
    #: once from the untouched plan instead of once per pre-generated
    #: push candidate.
    self_contained: bool = False

    def search(
        self,
        start: PlanNode,
        cost_fn: CostFn,
        physical: PhysicalSchema,
        *,
        tracer=None,
    ) -> SearchResult:
        """Improve ``start``; ``tracer`` (when given and enabled)
        receives one ``strategy.candidate`` event per costed move:
        the action applied, cost before/after, accepted or not."""
        raise NotImplementedError


class IterativeImprovement(SearchStrategy):
    """Randomized descent with restarts.

    Each restart walks random improving moves until no neighbor
    improves (a local minimum); the best local minimum over all
    restarts wins.  "The termination of a randomized strategy is
    conditioned by the optimization time or the stability of the
    current solution."
    """

    def __init__(
        self,
        restarts: int = 3,
        max_moves: int = 32,
        seed: int = 1992,
    ) -> None:
        self.restarts = restarts
        self.max_moves = max_moves
        self.seed = seed

    def search(
        self,
        start: PlanNode,
        cost_fn: CostFn,
        physical: PhysicalSchema,
        *,
        tracer=None,
    ) -> SearchResult:
        """Randomized descent with restarts from ``start``."""
        rng = random.Random(self.seed)
        tracing = tracer is not None and tracer.enabled
        best_plan, best_cost = start, cost_fn(start)
        costed = 1
        taken: List[str] = []
        for _restart in range(self.restarts):
            current, current_cost = start, best_cost
            for _step in range(self.max_moves):
                options = neighbors(current, physical, self.extended_moves)
                rng.shuffle(options)
                improved = False
                for description, candidate in options:
                    candidate_cost = cost_fn(candidate)
                    costed += 1
                    accepted = candidate_cost < current_cost
                    if tracing:
                        tracer.event(
                            "strategy.candidate",
                            strategy="II",
                            move=description,
                            cost_before=current_cost,
                            cost_after=candidate_cost,
                            accepted=accepted,
                        )
                    if accepted:
                        current, current_cost = candidate, candidate_cost
                        taken.append(description)
                        improved = True
                        break
                if not improved:
                    break  # local minimum: stable solution
            if current_cost < best_cost:
                best_plan, best_cost = current, current_cost
        return SearchResult(best_plan, best_cost, costed, taken)


class SimulatedAnnealing(SearchStrategy):
    """Annealing over the move graph with geometric cooling."""

    def __init__(
        self,
        initial_temperature: float = 2.0,
        cooling: float = 0.9,
        steps_per_temperature: int = 8,
        floor: float = 0.01,
        seed: int = 1992,
    ) -> None:
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.steps_per_temperature = steps_per_temperature
        self.floor = floor
        self.seed = seed

    def search(
        self,
        start: PlanNode,
        cost_fn: CostFn,
        physical: PhysicalSchema,
        *,
        tracer=None,
    ) -> SearchResult:
        """Anneal from ``start`` under geometric cooling."""
        rng = random.Random(self.seed)
        tracing = tracer is not None and tracer.enabled
        current, current_cost = start, cost_fn(start)
        best_plan, best_cost = current, current_cost
        costed = 1
        taken: List[str] = []
        temperature = self.initial_temperature * max(current_cost, 1.0)
        while temperature > self.floor * max(best_cost, 1.0):
            for _step in range(self.steps_per_temperature):
                options = neighbors(current, physical, self.extended_moves)
                if not options:
                    return SearchResult(best_plan, best_cost, costed, taken)
                description, candidate = rng.choice(options)
                candidate_cost = cost_fn(candidate)
                costed += 1
                delta = candidate_cost - current_cost
                accepted = (
                    delta <= 0
                    or rng.random() < math.exp(-delta / temperature)
                )
                if tracing:
                    tracer.event(
                        "strategy.candidate",
                        strategy="SA",
                        move=description,
                        cost_before=current_cost,
                        cost_after=candidate_cost,
                        accepted=accepted,
                        temperature=temperature,
                    )
                if accepted:
                    current, current_cost = candidate, candidate_cost
                    taken.append(description)
                    if current_cost < best_cost:
                        best_plan, best_cost = current, current_cost
            temperature *= self.cooling
        return SearchResult(best_plan, best_cost, costed, taken)


class TwoPhase(SearchStrategy):
    """II to locate a basin, then low-temperature SA within it."""

    def __init__(self, seed: int = 1992) -> None:
        self.seed = seed

    def search(
        self,
        start: PlanNode,
        cost_fn: CostFn,
        physical: PhysicalSchema,
        *,
        tracer=None,
    ) -> SearchResult:
        """Run II, then refine its result with low-temperature SA."""
        first = IterativeImprovement(restarts=2, seed=self.seed).search(
            start, cost_fn, physical, tracer=tracer
        )
        second = SimulatedAnnealing(
            initial_temperature=0.2, seed=self.seed + 1
        ).search(first.plan, cost_fn, physical, tracer=tracer)
        if second.cost <= first.cost:
            return SearchResult(
                second.plan,
                second.cost,
                first.plans_costed + second.plans_costed,
                first.moves_taken + second.moves_taken,
            )
        return SearchResult(
            first.plan,
            first.cost,
            first.plans_costed + second.plans_costed,
            first.moves_taken,
        )


class ExhaustiveSearch(SearchStrategy):
    """Breadth-first closure of the move graph; global optimum over it.

    This is the [KZ88]-style exhaustive baseline: optimality by
    construction, cost-of-optimization unbounded (capped here by
    ``max_plans`` to keep benchmarks terminating)."""

    def __init__(self, max_plans: int = 20_000) -> None:
        self.max_plans = max_plans

    def search(
        self,
        start: PlanNode,
        cost_fn: CostFn,
        physical: PhysicalSchema,
        *,
        tracer=None,
    ) -> SearchResult:
        """Breadth-first closure of the move graph from ``start``."""
        tracing = tracer is not None and tracer.enabled
        seen: Dict[PlanNode, float] = {start: cost_fn(start)}
        frontier: List[PlanNode] = [start]
        costed = 1
        while frontier and len(seen) < self.max_plans:
            next_frontier: List[PlanNode] = []
            for plan in frontier:
                for description, candidate in neighbors(plan, physical, self.extended_moves):
                    if candidate in seen:
                        continue
                    before = seen[plan]
                    seen[candidate] = cost_fn(candidate)
                    costed += 1
                    if tracing:
                        tracer.event(
                            "strategy.candidate",
                            strategy="exhaustive",
                            move=description,
                            cost_before=before,
                            cost_after=seen[candidate],
                            accepted=True,
                        )
                    next_frontier.append(candidate)
                    if len(seen) >= self.max_plans:
                        break
                if len(seen) >= self.max_plans:
                    break
            frontier = next_frontier
        best_plan, best_cost = min(seen.items(), key=lambda item: item[1])
        return SearchResult(best_plan, best_cost, costed)


#: Strategy names accepted anywhere a strategy can be selected by name
#: (``OptimizerConfig(strategy=...)``, ``repro run --strategy``, the
#: service protocol's per-request ``strategy`` field).
STRATEGY_NAMES = ("ii", "sa", "2po", "enum", "exhaustive")


def resolve_strategy(name: str, *, seed: int = 1992) -> SearchStrategy:
    """Build the strategy registered under ``name``.

    ``seed`` feeds the randomized strategies; the deterministic ones
    (``enum``, ``exhaustive``) ignore it.
    """
    # Imported here: enumerate.py subclasses SearchStrategy.
    from repro.core.enumerate import MemoizedEnumeration

    factories = {
        "ii": lambda: IterativeImprovement(seed=seed),
        "sa": lambda: SimulatedAnnealing(seed=seed),
        "2po": lambda: TwoPhase(seed=seed),
        "enum": MemoizedEnumeration,
        "exhaustive": ExhaustiveSearch,
    }
    try:
        factory = factories[name]
    except KeyError:
        known = ", ".join(STRATEGY_NAMES)
        raise ValueError(
            f"unknown strategy {name!r} (expected one of: {known})"
        ) from None
    return factory()
