"""The ``generatePT`` optimization step (Section 4.4).

Optimizes one predicate node — an SPJ over translated arcs — with a
*generative* strategy: candidate PTs are built bottom-up from the
atomic entities ([Se79]) and compared by cost.

Actions realized here (the paper's ``sel`` and ``join``, plus
``collapse`` from Section 4.3):

* ``sel`` — selection conjuncts are applied as soon as their variables
  are bound ("As action sel is applied before join, Sel nodes are
  generated as soon as possible, according to the relational heuristics
  of pushing selection through join");
* ``join`` — arcs are combined by explicit joins only when a join
  predicate connects them (no Cartesian products); both nested-loop
  and index-join implementations are generated when applicable;
* ``collapse`` — consecutive implicit-join hops backed by a path index
  become a ``PIJ`` node; both the collapsed and the plain variants are
  costed.

Beyond the paper's sketch we also generate *eager* vs *deferred*
placements of hop chains that no join predicate needs: dereferencing a
path before or after the joins can differ by orders of magnitude, and
only the cost model can tell (this is the LVZC91 "any interleaving"
capability the paper builds on).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import OptimizationError
from repro.core.translate import Hop, TranslatedArc, TranslatedNode
from repro.cost.cardinality import TupleShape
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import (
    EJ,
    IJ,
    INDEX_JOIN,
    NESTED_LOOP,
    PIJ,
    EntityLeaf,
    PlanNode,
    Proj,
    Sel,
)
from repro.querygraph.predicates import (
    Comparison,
    Const,
    PathRef,
    Predicate,
    conjoin,
    conjuncts,
)

__all__ = ["GeneratedPlan", "SPJGenerator"]

DeltaEnv = Dict[str, Tuple[float, TupleShape]]


@dataclass
class GeneratedPlan:
    """A winning plan with its estimated cost and exploration stats."""

    plan: PlanNode
    cost: float
    candidates_considered: int = 0


@dataclass
class _Partial:
    """A partial plan during DP: which arcs it covers, which conjuncts
    it consumed, which variables it binds."""

    plan: PlanNode
    arcs: FrozenSet[int]
    consumed: FrozenSet[int]
    cost: float


class SPJGenerator:
    """Generative optimizer for one translated predicate node.

    ``prune=True`` (default) keeps only the cheapest partial plan per
    arc subset — Selinger-style dynamic programming.  ``prune=False``
    keeps *every* partial plan, fully enumerating the join-order space
    à la [KZ88]; the exhaustive baseline uses it to demonstrate the
    optimization-time blow-up the paper argues against.
    """

    def __init__(
        self, physical: PhysicalSchema, cost_model, prune: bool = True
    ) -> None:
        self.physical = physical
        self.cost_model = cost_model
        self.prune = prune

    # -- public API ----------------------------------------------------------------

    def generate(
        self,
        node: TranslatedNode,
        sources: Sequence[PlanNode],
        delta_env: Optional[DeltaEnv] = None,
        project: bool = True,
    ) -> GeneratedPlan:
        """Build the cheapest PT for ``node``.

        ``sources`` gives, per arc, the plan producing bindings of the
        arc's root variable (an :class:`EntityLeaf` for a base name, a
        ``Fix``/temp subplan for a produced name, a ``RecLeaf`` inside
        a fixpoint body).  ``delta_env`` supplies delta cardinalities
        when generating inside a recursion.
        """
        if len(sources) != len(node.arcs):
            raise OptimizationError("one source plan per arc required")
        all_conjuncts = conjuncts(node.predicate)
        candidates = 0
        best: Optional[Tuple[PlanNode, float]] = None
        deferred_choices = self._deferred_choices(node)
        for deferred_flags in deferred_choices:
            result = self._generate_with_flags(
                node, sources, all_conjuncts, deferred_flags, delta_env
            )
            if result is None:
                continue
            plan, cost, considered = result
            candidates += considered
            if best is None or cost < best[1]:
                best = (plan, cost)
        if best is None:
            raise OptimizationError(
                "no plan found for predicate node (disconnected join graph "
                "would need a Cartesian product)"
            )
        plan, cost = best
        if project:
            plan = Proj(plan, node.output)
            cost = self._cost(plan, delta_env)
        return GeneratedPlan(plan, cost, candidates)

    def _admit(
        self,
        table: Dict[FrozenSet[int], List[_Partial]],
        key: FrozenSet[int],
        candidates: List[_Partial],
    ) -> None:
        """DP admission: keep the single cheapest partial per subset
        when pruning, every structurally distinct partial otherwise."""
        bucket = table.setdefault(key, [])
        for candidate in candidates:
            if self.prune:
                if not bucket:
                    bucket.append(candidate)
                elif candidate.cost < bucket[0].cost:
                    bucket[0] = candidate
            else:
                if all(candidate.plan != existing.plan for existing in bucket):
                    bucket.append(candidate)

    # -- deferred-chain profiles -------------------------------------------------------

    def _deferred_choices(self, node: TranslatedNode) -> List[Tuple[bool, ...]]:
        """Eager/deferred flag combinations, one flag per arc.

        Only arcs that actually have hops get a deferred variant, and
        only when no join conjunct needs the hop variables."""
        options: List[List[bool]] = []
        for arc in node.arcs:
            if arc.hops:
                options.append([False, True])
            else:
                options.append([False])
        return [tuple(flags) for flags in itertools.product(*options)]

    # -- DP over arcs ---------------------------------------------------------------------

    def _generate_with_flags(
        self,
        node: TranslatedNode,
        sources: Sequence[PlanNode],
        all_conjuncts: List[Predicate],
        deferred_flags: Tuple[bool, ...],
        delta_env: Optional[DeltaEnv],
    ) -> Optional[Tuple[PlanNode, float, int]]:
        considered = 0
        # Unit plans (one per arc), possibly in several variants.
        units: List[List[_Partial]] = []
        for index, arc in enumerate(node.arcs):
            variants = self._unit_variants(
                node, index, sources[index], all_conjuncts,
                deferred_flags[index], delta_env,
            )
            if not variants:
                return None
            considered += len(variants)
            units.append(variants)

        arc_count = len(node.arcs)
        table: Dict[FrozenSet[int], List[_Partial]] = {}
        for index, variants in enumerate(units):
            self._admit(table, frozenset({index}), variants)

        for size in range(2, arc_count + 1):
            for subset in itertools.combinations(range(arc_count), size):
                key = frozenset(subset)
                for arc_index in subset:
                    rest = key - {arc_index}
                    if rest not in table:
                        continue
                    for left in table[rest]:
                        for right in units[arc_index]:
                            joined_list = list(
                                self._join_candidates(
                                    left, right, all_conjuncts, delta_env
                                )
                            )
                            considered += len(joined_list)
                            self._admit(table, key, joined_list)

        full = frozenset(range(arc_count))
        if full not in table or not table[full]:
            return None
        final = min(table[full], key=lambda partial: partial.cost)
        plan, applied = self._attach_deferred(
            node, final, all_conjuncts, deferred_flags
        )
        # Any conjunct still unconsumed (e.g. spanning two deferred
        # chains) is applied as a final selection.
        for position, conjunct in enumerate(all_conjuncts):
            if position in applied:
                continue
            if conjunct.variables() <= plan.output_vars():
                plan = Sel(plan, conjunct)
                applied.add(position)
        if len(applied) != len(all_conjuncts):
            missing = [
                all_conjuncts[p]
                for p in range(len(all_conjuncts))
                if p not in applied
            ]
            raise OptimizationError(
                f"conjuncts could not be placed: {missing}"
            )
        cost = self._cost(plan, delta_env)
        return plan, cost, considered

    # -- unit construction -------------------------------------------------------------------

    def _unit_variants(
        self,
        node: TranslatedNode,
        arc_index: int,
        source: PlanNode,
        all_conjuncts: List[Predicate],
        deferred: bool,
        delta_env: Optional[DeltaEnv],
    ) -> List[_Partial]:
        arc = node.arcs[arc_index]
        hops = [] if deferred else list(arc.hops)
        variants: List[_Partial] = []
        for chain_plan_fn in self._chain_layouts(arc, hops):
            plan = source
            consumed: Set[int] = set()
            plan, consumed = self._apply_ready_sels(
                plan, arc, all_conjuncts, consumed
            )
            plan = chain_plan_fn(plan, lambda p: self._apply_ready_sels(
                p, arc, all_conjuncts, consumed
            ))
            # _apply_ready_sels mutates ``consumed`` in place via the
            # closure; re-run once more at the top for late bindings.
            plan, consumed = self._apply_ready_sels(
                plan, arc, all_conjuncts, consumed
            )
            cost = self._cost(plan, delta_env)
            variants.append(
                _Partial(plan, frozenset({arc_index}), frozenset(consumed), cost)
            )
        variants.extend(
            self._reverse_index_variants(
                node, arc_index, source, all_conjuncts, delta_env
            )
        )
        return variants

    def _reverse_index_variants(
        self,
        node: TranslatedNode,
        arc_index: int,
        source: PlanNode,
        all_conjuncts: List[Predicate],
        delta_env: Optional[DeltaEnv],
    ) -> List[_Partial]:
        """Retrieval by reverse path index ([MS86]): when an arc's hop
        chain exists only to evaluate one terminal equality and a path
        index spans it, generate the variant that skips navigation
        entirely — ``Sel_{root.a1...an.attr = c}(Entity)``, answered by
        the index's reverse direction at execution time.

        Answer *sets* are preserved (one binding per qualifying head
        object instead of one per qualifying path instantiation); bag
        multiplicities may differ, as with the paper's own plans.
        """
        arc = node.arcs[arc_index]
        if not isinstance(source, EntityLeaf) or len(arc.hops) < 2:
            return []
        # The hops must form one linear chain from the root variable.
        chain = []
        current_var = arc.root_var
        remaining = list(arc.hops)
        while remaining:
            next_hops = [h for h in remaining if h.source.var == current_var]
            if len(next_hops) != 1 or len(next_hops[0].source.attrs) != 1:
                return []
            chain.append(next_hops[0])
            remaining.remove(next_hops[0])
            current_var = next_hops[0].out_var
        attributes = tuple(hop.source.attrs[0] for hop in chain)
        terminal_var = chain[-1].out_var
        chain_vars = {hop.out_var for hop in chain}
        # Exactly one conjunct may touch the chain: the terminal
        # equality; the output must not need chain variables either.
        if node.output.variables() & chain_vars:
            return []
        terminal_position: Optional[int] = None
        for position, conjunct in enumerate(all_conjuncts):
            touches = conjunct.variables() & chain_vars
            if not touches:
                continue
            if terminal_position is not None:
                return []
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                return []
            for path_side, const_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if (
                    isinstance(path_side, PathRef)
                    and path_side.var == terminal_var
                    and len(path_side.attrs) == 1
                    and isinstance(const_side, Const)
                ):
                    terminal_attr = path_side.attrs[0]
                    terminal_const = const_side
                    terminal_position = position
                    break
            else:
                return []
        if terminal_position is None:
            return []
        index = self.physical.path_index(source.entity, attributes)
        if index is None or index.terminal_attribute != terminal_attr:
            return []
        whole_path = PathRef(
            arc.root_var, attributes + (terminal_attr,)
        )
        plan: PlanNode = Sel(
            source, Comparison("=", whole_path, terminal_const)
        )
        consumed: Set[int] = {terminal_position}
        plan, consumed = self._apply_ready_sels(
            plan, arc, all_conjuncts, consumed
        )
        cost = self._cost(plan, delta_env)
        return [
            _Partial(plan, frozenset({arc_index}), frozenset(consumed), cost)
        ]

    def _chain_layouts(self, arc: TranslatedArc, hops: List[Hop]):
        """Alternative realizations of a hop chain: plain IJ sequence,
        plus every maximal PIJ collapse a path index allows."""
        layouts = []

        def plain(plan: PlanNode, sel_hook) -> PlanNode:
            for hop in hops:
                plan = IJ(
                    plan,
                    EntityLeaf(hop.target_entity, self._leaf_var(hop)),
                    hop.source,
                    hop.out_var,
                )
                plan, _ = sel_hook(plan)
            return plan

        layouts.append(plain)
        collapse_runs = self._collapse_runs(hops)
        if collapse_runs:

            def collapsed(plan: PlanNode, sel_hook) -> PlanNode:
                position = 0
                while position < len(hops):
                    run = collapse_runs.get(position)
                    if run is not None:
                        run_hops = hops[position:position + run]
                        plan = PIJ(
                            plan,
                            [
                                EntityLeaf(h.target_entity, self._leaf_var(h))
                                for h in run_hops
                            ],
                            [h.source.attrs[-1] for h in run_hops],
                            # The index lookup key is the head object:
                            # the variable the first hop dereferences.
                            PathRef(
                                run_hops[0].source.var,
                                run_hops[0].source.attrs[:-1],
                            ),
                            [h.out_var for h in run_hops],
                        )
                        position += run
                    else:
                        hop = hops[position]
                        plan = IJ(
                            plan,
                            EntityLeaf(hop.target_entity, self._leaf_var(hop)),
                            hop.source,
                            hop.out_var,
                        )
                        position += 1
                    plan, _ = sel_hook(plan)
                return plan

            layouts.append(collapsed)
        return layouts

    def _leaf_var(self, hop: Hop) -> str:
        return f"_{hop.out_var}_leaf"

    def _collapse_runs(self, hops: List[Hop]) -> Dict[int, int]:
        """start index -> run length for every collapsible hop run.

        A run of hops h_i..h_j is collapsible when each hop's source is
        the previous hop's out_var and a path index exists on the
        attribute sequence (the ``collapse`` action's
        ``existPathIndex(p2.p1)`` constraint)."""
        runs: Dict[int, int] = {}
        count = len(hops)
        for start in range(count):
            best_length = 0
            attrs = [hops[start].source.attrs[0]]
            for end in range(start + 1, count):
                if hops[end].source.var != hops[end - 1].out_var:
                    break
                attrs.append(hops[end].source.attrs[0])
                if self.physical.find_path_index(tuple(attrs)) is not None:
                    best_length = end - start + 1
            if best_length >= 2:
                runs[start] = best_length
        return runs

    def _apply_ready_sels(
        self,
        plan: PlanNode,
        arc: TranslatedArc,
        all_conjuncts: List[Predicate],
        consumed: Set[int],
    ) -> Tuple[PlanNode, Set[int]]:
        """The ``sel`` action: apply every unconsumed single-arc
        conjunct whose variables are bound (as soon as possible)."""
        available = plan.output_vars()
        for position, conjunct in enumerate(all_conjuncts):
            if position in consumed:
                continue
            variables = conjunct.variables()
            if not variables or not variables <= arc.all_vars():
                continue
            if variables <= available:
                plan = Sel(plan, conjunct)
                consumed.add(position)
        return plan, consumed

    # -- joins ----------------------------------------------------------------------------------

    def _join_candidates(
        self,
        left: _Partial,
        right: _Partial,
        all_conjuncts: List[Predicate],
        delta_env: Optional[DeltaEnv],
    ):
        """The ``join`` action: combine two disjoint partials when a
        join predicate connects them (``disjoint(N, Inner)`` plus the
        existence of ``joinpred`` — no Cartesian products)."""
        if left.arcs & right.arcs:
            return
        left_vars = left.plan.output_vars()
        right_vars = right.plan.output_vars()
        join_positions: List[int] = []
        for position, conjunct in enumerate(all_conjuncts):
            if position in left.consumed or position in right.consumed:
                continue
            variables = conjunct.variables()
            if not variables:
                continue
            touches_left = bool(variables & left_vars)
            touches_right = bool(variables & right_vars)
            if (
                touches_left
                and touches_right
                and variables <= (left_vars | right_vars)
            ):
                join_positions.append(position)
        if not join_positions:
            return
        predicate = conjoin([all_conjuncts[p] for p in join_positions])
        consumed = left.consumed | right.consumed | frozenset(join_positions)
        arcs = left.arcs | right.arcs
        nested = EJ(left.plan, right.plan, predicate, NESTED_LOOP)
        yield _Partial(nested, arcs, consumed, self._cost(nested, delta_env))
        if self._index_join_possible(right.plan, predicate, left_vars):
            indexed = EJ(left.plan, right.plan, predicate, INDEX_JOIN)
            yield _Partial(
                indexed, arcs, consumed, self._cost(indexed, delta_env)
            )

    def _index_join_possible(
        self, right: PlanNode, predicate: Predicate, left_vars: Set[str]
    ) -> bool:
        leaf: Optional[EntityLeaf] = None
        if isinstance(right, EntityLeaf):
            leaf = right
        elif isinstance(right, Sel) and isinstance(right.child, EntityLeaf):
            leaf = right.child
        if leaf is None:
            return False
        for conjunct in conjuncts(predicate):
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            for inner, outer in (
                (conjunct.right, conjunct.left),
                (conjunct.left, conjunct.right),
            ):
                if (
                    isinstance(inner, PathRef)
                    and inner.var == leaf.var
                    and len(inner.attrs) == 1
                    and outer.variables() <= left_vars
                    and self.physical.has_selection_index(
                        leaf.entity, inner.attrs[0]
                    )
                ):
                    return True
        return False

    # -- deferred attachment ------------------------------------------------------------------------

    def _attach_deferred(
        self,
        node: TranslatedNode,
        final: _Partial,
        all_conjuncts: List[Predicate],
        deferred_flags: Tuple[bool, ...],
    ) -> Tuple[PlanNode, Set[int]]:
        """Append the deferred hop chains (plain layout) after the
        joins, applying their selections as variables become bound."""
        plan = final.plan
        consumed = set(final.consumed)
        for index, arc in enumerate(node.arcs):
            if not deferred_flags[index] or not arc.hops:
                continue
            layout = self._chain_layouts(arc, list(arc.hops))[0]
            plan = layout(
                plan,
                lambda p, arc=arc: self._apply_ready_sels(
                    p, arc, all_conjuncts, consumed
                ),
            )
        return plan, consumed

    # -- costing ---------------------------------------------------------------------------------------

    def _cost(self, plan: PlanNode, delta_env: Optional[DeltaEnv]) -> float:
        return self.cost_model.cost(plan, delta_env)
