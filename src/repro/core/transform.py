"""The ``transformPT`` optimization step (Sections 4.5, 4.6).

After ``generatePT`` has produced a complete, costed PT, the position
of *selective operations* relative to recursion is decided:

* the ``filter`` action pushes a pipeline segment ending in a selection
  through a ``Fix`` node, following [KL86]::

      filter: Sel_pred(pt(Fix(Rec, Union(Base, pt'(Rec)))))
              | canPush(pred, Rec)
              -> Fix(Rec, Union(Sel_pred(pt(Base)),
                                pt'(Sel_pred(pt(Rec)))))

  Unlike deductive DBs, "implicit joins may come between the selection
  and the fixpoint and the rule must be more general": the pushed
  segment may contain ``IJ``/``PIJ`` hops that materialize the path the
  selection applies to;

* the ``joinfilter`` action pushes an *explicit join* through
  recursion — "not proposed before" (Section 4.5) — when the join
  predicate touches the recursion only through invariant fields and no
  downstream operator needs the inner operand's bindings (a semijoin
  push);

* the resulting candidates are (optionally) improved by a randomized
  strategy and **compared by cost**; pushing happens only when it wins.
  This is the paper's core departure from the deductive-DB heuristic.

``canPush`` uses the provenance analysis attached to the Fix node: a
predicate path rooted at the recursion's output must start with an
*invariant* field (one the recursive rule copies unchanged, like
``master``); paths rooted at fields like ``gen`` (computed) or
``disciple`` (rebound) block the push of that predicate — but not of
independent segments, which commute past it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import OptimizationError
from repro.core.actions import Action, Application
from repro.engine.fixpoint import flatten_union
from repro.plans.nodes import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)
from repro.plans.patterns import PlanPath, paths_to
from repro.querygraph.graph import OutputField, OutputSpec
from repro.querygraph.predicates import (
    Const,
    Expr,
    FunctionApp,
    PathRef,
    Predicate,
)

__all__ = [
    "PushableSegment",
    "find_filter_sites",
    "apply_filter",
    "filter_action",
    "transform_candidates",
]


@dataclass
class PushableSegment:
    """A maximal pushable pipeline segment above one Fix node.

    ``pushed`` lists the relocatable nodes bottom-up (closest to the
    Fix first); ``kept`` lists skippable selections (predicates on
    non-invariant recursion fields) that stay above the Fix; ``path``
    locates the *topmost* segment node in the plan, so the rebuilt
    remainder can be spliced back.
    """

    fix: Fix
    pushed: List[PlanNode]
    kept: List[PlanNode]
    path: PlanPath

    @property
    def has_join(self) -> bool:
        """Whether the segment pushes an explicit join (Section 4.5)."""
        return any(isinstance(node, EJ) for node in self.pushed)

    def describe(self) -> str:
        """Human-readable description of the push."""
        ops = ", ".join(node.label() for node in self.pushed)
        return f"push [{ops}] through Fix[{self.fix.name}]"


def _consumed_vars(node: PlanNode) -> Set[str]:
    """Variables a node *reads* from its input bindings."""
    if isinstance(node, Sel):
        return node.predicate.variables()
    if isinstance(node, Proj):
        return node.fields.variables()
    if isinstance(node, IJ):
        return {node.source.var}
    if isinstance(node, PIJ):
        return {node.source.var}
    if isinstance(node, EJ):
        return node.predicate.variables()
    return set()


def _introduced_vars(node: PlanNode) -> Set[str]:
    if isinstance(node, IJ):
        return {node.out_var}
    if isinstance(node, PIJ):
        return set(node.out_vars)
    if isinstance(node, EJ):
        return node.right.output_vars()
    return set()


def find_filter_sites(plan: PlanNode, allow_join: bool = True) -> List[PushableSegment]:
    """All maximal pushable segments above Fix nodes in ``plan``."""
    segments: List[PushableSegment] = []
    for fix_path in paths_to(plan, lambda n: isinstance(n, Fix)):
        fix = fix_path.focus
        assert isinstance(fix, Fix)
        segment = _extract_segment(plan, fix_path, fix, allow_join)
        if segment is not None:
            segments.append(segment)
    return segments


def _extract_segment(
    plan: PlanNode, fix_path: PlanPath, fix: Fix, allow_join: bool
) -> Optional[PushableSegment]:
    invariant = set(fix.invariant_fields)
    if not invariant:
        return None
    ancestors = fix_path.ancestors()  # outermost first
    chain = list(reversed(ancestors))  # innermost (just above Fix) first
    steps = fix_path.steps
    pushed_with_pos: List[Tuple[int, PlanNode]] = []
    kept_with_pos: List[Tuple[int, PlanNode]] = []
    segment_vars: Set[str] = set()
    fix_var = fix.out_var
    for position, node in enumerate(chain):
        # The recursion pipeline must flow through the node's first
        # child (the data input).  An explicit join is commutative, so
        # a Fix arriving on the *right* side of an EJ is normalized by
        # swapping the operands; any other off-pipeline position (an
        # IJ's target side, a Union branch) ends the segment.
        parent_step = steps[len(steps) - 1 - position]
        if parent_step[1] != 0:
            if isinstance(node, EJ) and parent_step[1] == 1 and allow_join:
                node = EJ(node.right, node.left, node.predicate)
            else:
                break
        if isinstance(node, Sel):
            if _pushable_predicate(node.predicate, fix_var, invariant, segment_vars):
                pushed_with_pos.append((position, node))
            elif _skippable_predicate(node.predicate, fix_var, segment_vars):
                kept_with_pos.append((position, node))
            else:
                break
            continue
        if isinstance(node, (IJ, PIJ)):
            source = node.source
            if _pushable_path(source, fix_var, invariant, segment_vars):
                pushed_with_pos.append((position, node))
                segment_vars |= _introduced_vars(node)
            else:
                break
            continue
        if isinstance(node, EJ) and allow_join:
            if _pushable_join(node, fix, fix_var, invariant, segment_vars):
                pushed_with_pos.append((position, node))
                segment_vars |= _introduced_vars(node)
            else:
                break
            continue
        break
    # Trim to the maximal prefix ending at a selective node: pushing
    # trailing bare hops inside the recursion only adds work.
    while pushed_with_pos and not isinstance(
        pushed_with_pos[-1][1], (Sel, EJ)
    ):
        _position, dropped = pushed_with_pos.pop()
        segment_vars -= _introduced_vars(dropped)
    if not pushed_with_pos:
        return None
    pushed = [node for _position, node in pushed_with_pos]
    top_index = max(position for position, _node in pushed_with_pos)
    # Skippable selections above the topmost pushed node stay in the
    # untouched remainder of the plan; only those *inside* the replaced
    # subtree need to be re-attached over the new Fix.
    kept = [node for position, node in kept_with_pos if position < top_index]
    # Everything above the segment must not read variables the pushed
    # segment introduced (they disappear from the main pipeline).
    for above in chain[top_index + 1:]:
        if _consumed_vars(above) & segment_vars:
            return None
    for kept_node in kept:
        if _consumed_vars(kept_node) & segment_vars:
            return None
    top_steps = steps[: len(steps) - 1 - top_index]
    top_path = PlanPath(plan, list(top_steps))
    return PushableSegment(fix, pushed, kept, top_path)


def _pushable_predicate(
    predicate: Predicate,
    fix_var: str,
    invariant: Set[str],
    segment_vars: Set[str],
) -> bool:
    for path in predicate.paths():
        if path.var == fix_var:
            if not path.attrs or path.attrs[0] not in invariant:
                return False
        elif path.var not in segment_vars:
            return False
    return True


def _skippable_predicate(
    predicate: Predicate, fix_var: str, segment_vars: Set[str]
) -> bool:
    """A non-pushable selection commutes past the segment when it only
    reads the recursion's own output (never segment-introduced vars)."""
    variables = predicate.variables()
    return fix_var in variables and not (variables & segment_vars)


def _pushable_path(
    source: PathRef, fix_var: str, invariant: Set[str], segment_vars: Set[str]
) -> bool:
    if source.var == fix_var:
        return bool(source.attrs) and source.attrs[0] in invariant
    return source.var in segment_vars


def _pushable_join(
    node: EJ,
    fix: Fix,
    fix_var: str,
    invariant: Set[str],
    segment_vars: Set[str],
) -> bool:
    # The join predicate must touch the recursion only through
    # invariant fields (or segment/inner vars); the inner operand must
    # be independent of the recursion.
    if any(
        isinstance(n, RecLeaf) and n.name == fix.name
        for n in node.right.walk()
    ):
        return False
    inner_vars = node.right.output_vars()
    return _pushable_predicate(
        node.predicate, fix_var, invariant, segment_vars | inner_vars
    )


# ---------------------------------------------------------------------------
# Applying the push
# ---------------------------------------------------------------------------

class _Renamer:
    """Renames segment-internal variables per union part.

    ``aliases`` maps a segment variable to a part variable when the
    pushed hop that introduced it collapsed away (its dereference
    target is already bound inside the part — e.g. pushing
    ``IJ[k.assembly]`` into the base part, where ``assembly`` *is* the
    part's own range variable)."""

    def __init__(self, suffix: str, internal: Set[str]) -> None:
        self.suffix = suffix
        self.internal = internal
        self.aliases: Dict[str, str] = {}

    def var(self, name: str) -> str:
        if name in self.aliases:
            return self.aliases[name]
        if name in self.internal:
            return f"{name}{self.suffix}"
        return name

    def path(self, path: PathRef) -> PathRef:
        return PathRef(self.var(path.var), path.attrs)

    def expr(self, expr: Expr) -> Expr:
        if isinstance(expr, PathRef):
            return self.path(expr)
        if isinstance(expr, FunctionApp):
            return FunctionApp(
                expr.name,
                [self.expr(a) for a in expr.args],
                expr.fn,
                expr.eval_weight,
            )
        return expr

    def predicate(self, predicate: Predicate) -> Predicate:
        mapping = {
            name: PathRef(self.var(name))
            for name in predicate.variables()
            if name in self.internal
        }
        return predicate.substitute(mapping) if mapping else predicate


def apply_filter(plan: PlanNode, segment: PushableSegment) -> PlanNode:
    """Apply the ``filter`` action for one segment; returns the new plan."""
    fix = segment.fix
    new_parts: List[PlanNode] = []
    for part_index, part in enumerate(flatten_union(fix.body)):
        new_parts.append(
            _push_into_part(part, segment, part_index)
        )
    new_body = new_parts[0]
    for part in new_parts[1:]:
        new_body = UnionOp(new_body, part)
    new_fix = Fix(
        fix.name,
        new_body,
        fix.out_var,
        fix.recursion_entity,
        fix.recursion_attribute,
        set(fix.invariant_fields),
    )
    # Rebuild the pipeline above: Fix, then the kept selections, then
    # whatever was above the segment.
    replacement: PlanNode = new_fix
    for kept in segment.kept:
        assert isinstance(kept, Sel)
        replacement = Sel(replacement, kept.predicate)
    return segment.path.rebuild(replacement)


def _push_into_part(
    part: PlanNode, segment: PushableSegment, part_index: int
) -> PlanNode:
    """Insert the (renamed, source-substituted) segment below the
    part's output projection."""
    if not isinstance(part, Proj):
        raise OptimizationError(
            "filter expects fixpoint parts shaped Proj(...); got "
            f"{part.label()}"
        )
    fields: Dict[str, Expr] = {
        output_field.name: output_field.expr
        for output_field in part.fields.fields
    }
    internal: Set[str] = set()
    for node in segment.pushed:
        internal |= _introduced_vars(node)
    renamer = _Renamer(f"_p{part_index}", internal)
    inner = part.child
    for node in segment.pushed:
        inner = _clone_pushed_node(node, inner, segment.fix.out_var, fields, renamer)
    return Proj(inner, part.fields)


def _substitute_source(
    path: PathRef, fix_var: str, fields: Dict[str, Expr], renamer: _Renamer
) -> PathRef:
    """Rewrite a segment path for use inside a part.

    ``fix_var.f.rest`` becomes the part's expression for field ``f``
    extended by ``rest``; segment-internal variables are renamed."""
    if path.var == fix_var:
        if not path.attrs:
            raise OptimizationError("cannot push a whole-tuple reference")
        field_name, rest = path.attrs[0], path.attrs[1:]
        expr = fields.get(field_name)
        if not isinstance(expr, PathRef):
            raise OptimizationError(
                f"field {field_name!r} is not a path in the part output; "
                "cannot push through it"
            )
        return PathRef(expr.var, expr.attrs + rest)
    return renamer.path(path)


def _rewrite_predicate(
    predicate: Predicate,
    fix_var: str,
    fields: Dict[str, Expr],
    renamer: _Renamer,
) -> Predicate:
    from repro.querygraph.predicates import And, Comparison, Not, Or, TruePredicate

    if isinstance(predicate, TruePredicate):
        return predicate
    if isinstance(predicate, And):
        return And(
            *[_rewrite_predicate(p, fix_var, fields, renamer) for p in predicate.parts]
        )
    if isinstance(predicate, Or):
        return Or(
            *[_rewrite_predicate(p, fix_var, fields, renamer) for p in predicate.parts]
        )
    if isinstance(predicate, Not):
        return Not(_rewrite_predicate(predicate.part, fix_var, fields, renamer))
    if isinstance(predicate, Comparison):
        return Comparison(
            predicate.op,
            _rewrite_expr(predicate.left, fix_var, fields, renamer),
            _rewrite_expr(predicate.right, fix_var, fields, renamer),
        )
    return predicate


def _rewrite_expr(
    expr: Expr, fix_var: str, fields: Dict[str, Expr], renamer: _Renamer
) -> Expr:
    if isinstance(expr, PathRef):
        if expr.var == fix_var:
            return _substitute_source(expr, fix_var, fields, renamer)
        return renamer.path(expr)
    if isinstance(expr, FunctionApp):
        return FunctionApp(
            expr.name,
            [_rewrite_expr(a, fix_var, fields, renamer) for a in expr.args],
            expr.fn,
            expr.eval_weight,
        )
    return expr


def _clone_pushed_node(
    node: PlanNode,
    inner: PlanNode,
    fix_var: str,
    fields: Dict[str, Expr],
    renamer: _Renamer,
) -> PlanNode:
    if isinstance(node, Sel):
        return Sel(
            inner, _rewrite_predicate(node.predicate, fix_var, fields, renamer)
        )
    if isinstance(node, IJ):
        new_source = _substitute_source(node.source, fix_var, fields, renamer)
        if not new_source.attrs:
            # The dereference target is already a bound record inside
            # the part: the hop collapses and its output variable
            # aliases the part variable.
            renamer.aliases[node.out_var] = new_source.var
            return inner
        return IJ(
            inner,
            EntityLeaf(node.target.entity, renamer.var(node.target.var)),
            new_source,
            renamer.var(node.out_var),
        )
    if isinstance(node, PIJ):
        return PIJ(
            inner,
            [
                EntityLeaf(t.entity, renamer.var(t.var))
                for t in node.targets
            ],
            node.attributes,
            _substitute_source(node.source, fix_var, fields, renamer),
            [renamer.var(v) for v in node.out_vars],
        )
    if isinstance(node, EJ):
        return EJ(
            inner,
            _rename_subtree(node.right, renamer),
            _rewrite_predicate(node.predicate, fix_var, fields, renamer),
            node.algorithm,
        )
    raise OptimizationError(f"cannot push node {node.label()}")


def _rename_subtree(node: PlanNode, renamer: _Renamer) -> PlanNode:
    """Deep-rename an EJ inner operand's variables for one part copy."""
    if isinstance(node, EntityLeaf):
        return EntityLeaf(node.entity, renamer.var(node.var))
    if isinstance(node, TempLeaf):
        return TempLeaf(node.entity, renamer.var(node.var))
    if isinstance(node, Sel):
        return Sel(
            _rename_subtree(node.child, renamer),
            renamer.predicate(node.predicate),
        )
    if isinstance(node, Proj):
        return Proj(
            _rename_subtree(node.child, renamer),
            OutputSpec(
                [
                    OutputField(f.name, renamer.expr(f.expr))
                    for f in node.fields.fields
                ]
            ),
        )
    if isinstance(node, IJ):
        return IJ(
            _rename_subtree(node.child, renamer),
            EntityLeaf(node.target.entity, renamer.var(node.target.var)),
            renamer.path(node.source),
            renamer.var(node.out_var),
        )
    if isinstance(node, PIJ):
        return PIJ(
            _rename_subtree(node.child, renamer),
            [EntityLeaf(t.entity, renamer.var(t.var)) for t in node.targets],
            node.attributes,
            renamer.path(node.source),
            [renamer.var(v) for v in node.out_vars],
        )
    if isinstance(node, EJ):
        return EJ(
            _rename_subtree(node.left, renamer),
            _rename_subtree(node.right, renamer),
            renamer.predicate(node.predicate),
            node.algorithm,
        )
    if isinstance(node, UnionOp):
        return UnionOp(
            _rename_subtree(node.left, renamer),
            _rename_subtree(node.right, renamer),
        )
    raise OptimizationError(
        f"cannot rename subtree containing {node.label()}"
    )


# ---------------------------------------------------------------------------
# The action and the candidate set
# ---------------------------------------------------------------------------

def _filter_applications(plan: PlanNode) -> Iterator[Application[PlanNode]]:
    for segment in find_filter_sites(plan):
        yield Application(
            filter_action,
            segment.describe(),
            lambda segment=segment: apply_filter(plan, segment),
        )


filter_action: Action[PlanNode] = Action("filter", _filter_applications)


def transform_candidates(plan: PlanNode) -> List[Tuple[str, PlanNode]]:
    """The candidate set transformPT compares: the original plan plus
    every plan reachable by applying filter pushes up to saturation.

    (Each application may expose further applicable segments on the
    transformed plan — e.g. a selection behind a join — so we close
    transitively, bounded by a small depth.  Dedup is by canonical
    fingerprint, not structural equality: pushing independent segments
    in different orders yields the same plan up to the ``_pN`` suffixes
    the renamer minted, and costing such alpha-variants once per push
    order would make transformPT pay for the same plan repeatedly.)"""
    from repro.plans.canonical import canonical_fingerprint

    seen: Dict[str, Tuple[str, PlanNode]] = {
        canonical_fingerprint(plan): ("original", plan)
    }
    frontier: List[PlanNode] = [plan]
    for _depth in range(4):
        next_frontier: List[PlanNode] = []
        for candidate in frontier:
            for application in _filter_applications(candidate):
                transformed = application.apply()
                fingerprint = canonical_fingerprint(transformed)
                if fingerprint not in seen:
                    seen[fingerprint] = (
                        application.description, transformed
                    )
                    next_frontier.append(transformed)
        if not next_frontier:
            break
        frontier = next_frontier
    return list(seen.values())
