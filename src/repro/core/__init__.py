"""The cost-controlled optimizer (Section 4 of the paper)."""

from repro.core.actions import Action, Application, saturate
from repro.core.baselines import (
    brute_force_enumerate,
    cost_controlled_optimizer,
    deductive_optimizer,
    enumerating_optimizer,
    exhaustive_optimizer,
    naive_optimizer,
)
from repro.core.enumerate import EnumerationStats, MemoizedEnumeration
from repro.core.fold import fold_action, fold_views
from repro.core.generate import GeneratedPlan, SPJGenerator
from repro.core.moves import neighbors
from repro.core.optimizer import OptimizationResult, Optimizer, OptimizerConfig
from repro.core.rewrite import fixpoint_action, rewrite, union_action
from repro.core.strategies import (
    STRATEGY_NAMES,
    ExhaustiveSearch,
    IterativeImprovement,
    SearchResult,
    SearchStrategy,
    SimulatedAnnealing,
    TwoPhase,
    resolve_strategy,
)
from repro.core.transform import (
    PushableSegment,
    apply_filter,
    filter_action,
    find_filter_sites,
    transform_candidates,
)
from repro.core.translate import Hop, TranslatedArc, TranslatedNode, Translator

__all__ = [
    "Action",
    "Application",
    "saturate",
    "brute_force_enumerate",
    "cost_controlled_optimizer",
    "deductive_optimizer",
    "enumerating_optimizer",
    "exhaustive_optimizer",
    "naive_optimizer",
    "EnumerationStats",
    "MemoizedEnumeration",
    "fold_action",
    "fold_views",
    "GeneratedPlan",
    "SPJGenerator",
    "neighbors",
    "OptimizationResult",
    "Optimizer",
    "OptimizerConfig",
    "fixpoint_action",
    "rewrite",
    "union_action",
    "STRATEGY_NAMES",
    "resolve_strategy",
    "ExhaustiveSearch",
    "IterativeImprovement",
    "SearchResult",
    "SearchStrategy",
    "SimulatedAnnealing",
    "TwoPhase",
    "PushableSegment",
    "apply_filter",
    "filter_action",
    "find_filter_sites",
    "transform_candidates",
    "Hop",
    "TranslatedArc",
    "TranslatedNode",
    "Translator",
]
