"""The cost-controlled optimizer (Section 4 of the paper)."""

from repro.core.actions import Action, Application, saturate
from repro.core.baselines import (
    cost_controlled_optimizer,
    deductive_optimizer,
    exhaustive_optimizer,
    naive_optimizer,
)
from repro.core.fold import fold_action, fold_views
from repro.core.generate import GeneratedPlan, SPJGenerator
from repro.core.moves import neighbors
from repro.core.optimizer import OptimizationResult, Optimizer, OptimizerConfig
from repro.core.rewrite import fixpoint_action, rewrite, union_action
from repro.core.strategies import (
    ExhaustiveSearch,
    IterativeImprovement,
    SearchResult,
    SearchStrategy,
    SimulatedAnnealing,
    TwoPhase,
)
from repro.core.transform import (
    PushableSegment,
    apply_filter,
    filter_action,
    find_filter_sites,
    transform_candidates,
)
from repro.core.translate import Hop, TranslatedArc, TranslatedNode, Translator

__all__ = [
    "Action",
    "Application",
    "saturate",
    "cost_controlled_optimizer",
    "deductive_optimizer",
    "exhaustive_optimizer",
    "naive_optimizer",
    "fold_action",
    "fold_views",
    "GeneratedPlan",
    "SPJGenerator",
    "neighbors",
    "OptimizationResult",
    "Optimizer",
    "OptimizerConfig",
    "fixpoint_action",
    "rewrite",
    "union_action",
    "ExhaustiveSearch",
    "IterativeImprovement",
    "SearchResult",
    "SearchStrategy",
    "SimulatedAnnealing",
    "TwoPhase",
    "PushableSegment",
    "apply_filter",
    "filter_action",
    "find_filter_sites",
    "transform_candidates",
    "Hop",
    "TranslatedArc",
    "TranslatedNode",
    "Translator",
]
