"""The ``rewrite`` optimization step (Section 4.2).

"The purpose of rewriting is to recognize fixpoint recursion and to
generate Fix and Union nodes that are not explicit in the query
graphs."  Two actions applied up-to-saturation:

* ``union`` — two rules producing the same name node are merged into
  one rule whose body is their Union;
* ``fixpoint`` — a name node satisfying ``fixpointRecursion`` is
  wrapped in a Fix operator.

A third action, ``fold``, eliminates *non-recursive* view definitions
by inlining — the paper mentions it as another possible rewriting
action ("e.g., for folding predicate nodes to eliminate non-recursive
view definitions"); we implement the bookkeeping variant that marks the
rule for inlining during translation (physically inlining tree labels
is translation's job, which consumes producer PTs directly).
"""

from __future__ import annotations

import copy
from typing import Iterator, List

from repro.core.actions import Action, Application, saturate
from repro.querygraph.graph import FixNode, QueryGraph, Rule, UnionNode
from repro.querygraph.views import is_fixpoint_recursion

__all__ = ["union_action", "fixpoint_action", "rewrite"]


def _union_applications(graph: QueryGraph) -> Iterator[Application[QueryGraph]]:
    """union: Q | (Name <- p1) ∈ Q ∧ (Name <- p2) ∈ Q
              -> Q - {p1, p2} ∪ {Name <- Union(p1, p2)}"""
    for name in graph.produced_names():
        producers = graph.producers_of(name)
        if len(producers) < 2:
            continue

        def apply(name=name, producers=producers) -> QueryGraph:
            merged = UnionNode([rule.node for rule in producers])
            new_graph = QueryGraph(list(graph.rules), graph.answer)
            new_graph.replace_rules(name, Rule(name, merged))
            return new_graph

        yield Application(
            union_action, f"merge {len(producers)} rules of {name!r}", apply
        )


def _fixpoint_applications(
    graph: QueryGraph,
) -> Iterator[Application[QueryGraph]]:
    """fixpoint: Name | (Name <- p) ∈ Q ∧ fixpointRecursion(Name)
                 -> Fix(Name, p)"""
    for name in graph.produced_names():
        producers = graph.producers_of(name)
        if len(producers) != 1:
            continue  # union must fire first
        producer = producers[0]
        if isinstance(producer.node, FixNode):
            continue
        if not is_fixpoint_recursion(graph, name):
            continue

        def apply(name=name, producer=producer) -> QueryGraph:
            new_graph = QueryGraph(list(graph.rules), graph.answer)
            new_graph.replace_rule(
                producer, Rule(name, FixNode(name, producer.node))
            )
            return new_graph

        yield Application(fixpoint_action, f"wrap {name!r} in Fix", apply)


union_action: Action[QueryGraph] = Action("union", _union_applications)
fixpoint_action: Action[QueryGraph] = Action("fixpoint", _fixpoint_applications)


def rewrite(graph: QueryGraph, trace: List[str] = None) -> QueryGraph:
    """The rewrite procedure of Section 4.2::

        rewrite(Q)
        { for each Name of Q | outdegree(Name) > 1  union(Name);
          for each Name of Q                        fixpoint(Name); }

    Implemented as saturation of the two actions (union ordered first,
    matching the paper's sequencing).  The strategy is irrevocable.
    """
    return saturate(graph, [union_action, fixpoint_action], trace=trace)
