"""The transformation-action framework (Section 4.1).

"Transformation actions are suited to recognizing and transforming
'patterns' occurring in their scope of application.  They have the
form::

    action: F | constraint -> G

where ``F`` and ``G`` are patterns describing subparts of the granule
to which the action is applied and ``constraint`` is a predicate whose
truth conditions the applicability of the action."

We keep the declarative flavour with Python as the pattern language: an
:class:`Action` exposes ``applications(granule)`` returning the sites
where ``F`` matches and ``constraint`` holds; each
:class:`Application` can ``apply()`` to produce the transformed
granule.  Strategies (:mod:`repro.core.strategies`) choose among
applications — irrevocably (rewriting), generatively, or by cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterator, List, Optional, TypeVar

__all__ = ["Application", "Action", "saturate"]

Granule = TypeVar("Granule")


@dataclass
class Application(Generic[Granule]):
    """One applicable instance of an action on a granule."""

    action: "Action[Granule]"
    description: str
    _apply: Callable[[], Granule]

    def apply(self) -> Granule:
        """Perform the transformation, returning the new granule."""
        return self._apply()

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{self.action.name}: {self.description}"


class Action(Generic[Granule]):
    """A named transformation action.

    Subclasses (or instances built with ``finder``) implement
    :meth:`applications`, yielding every site where the pattern matches
    and the constraint holds.
    """

    def __init__(
        self,
        name: str,
        finder: Optional[
            Callable[[Granule], Iterator[Application[Granule]]]
        ] = None,
    ) -> None:
        self.name = name
        self._finder = finder

    def applications(self, granule: Granule) -> Iterator[Application[Granule]]:
        """Every site where the pattern matches and the constraint
        holds on ``granule``."""
        if self._finder is None:
            raise NotImplementedError(
                f"action {self.name!r} defines no finder"
            )
        return self._finder(granule)

    def first_application(
        self, granule: Granule
    ) -> Optional[Application[Granule]]:
        """The first applicable site, or None."""
        for application in self.applications(granule):
            return application
        return None

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Action({self.name!r})"


def saturate(
    granule: Granule,
    actions: List[Action[Granule]],
    max_steps: int = 10_000,
    trace: Optional[List[str]] = None,
) -> Granule:
    """Apply actions up to saturation — the *irrevocable* strategy of
    Figure 6: "does not involve choices and proceeds always
    straight-ahead, like in query rewriters"."""
    current = granule
    for _step in range(max_steps):
        fired = False
        for action in actions:
            application = action.first_application(current)
            if application is not None:
                current = application.apply()
                if trace is not None:
                    trace.append(repr(application))
                fired = True
                break
        if not fired:
            return current
    raise RuntimeError("saturate() did not converge")
