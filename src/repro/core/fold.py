"""The ``fold`` rewriting action: inlining non-recursive views.

Section 4.2: "Other rewriting actions could be devised, e.g., for
*folding* predicate nodes to eliminate non-recursive view definitions."

``fold`` merges a non-recursive, single-rule view's predicate node into
each consumer: the consumer's arc on the view is replaced by the view's
own arcs (variables freshened), paths over the view tuple are rewritten
through the view's output expressions, and the view's predicate is
conjoined.  Folding widens the consumer's SPJ, giving ``generatePT`` a
larger join-ordering space than optimizing the view in isolation — the
classic payoff of view merging.

Restrictions (the unfoldable cases keep their ``Materialize`` plan):

* the view must be defined by exactly one SPJ rule (no unions);
* the view must not be recursive;
* the consumer must bind only the arc's root variable (no tree-label
  descent into view tuples);
* every view field the consumer touches must be a path expression
  (computed fields would need expression pushing).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.core.actions import Action, Application, saturate
from repro.errors import OptimizationError
from repro.querygraph.graph import (
    Arc,
    OutputField,
    OutputSpec,
    QueryGraph,
    Rule,
    SPJNode,
)
from repro.querygraph.predicates import (
    And,
    Comparison,
    Const,
    Expr,
    FunctionApp,
    Not,
    Or,
    PathRef,
    Predicate,
    TruePredicate,
    conjoin,
    conjuncts,
)
from repro.querygraph.tree_labels import TreeLabel

__all__ = ["fold_action", "fold_views"]


def _foldable_views(graph: QueryGraph) -> Dict[str, SPJNode]:
    views: Dict[str, SPJNode] = {}
    for name in graph.produced_names():
        if name == graph.answer:
            continue
        rules = graph.producers_of(name)
        if len(rules) != 1:
            continue
        node = rules[0].node
        if not isinstance(node, SPJNode):
            continue
        if graph.is_recursive_name(name):
            continue
        views[name] = node
    return views


def _consumer_sites(graph: QueryGraph, views: Dict[str, SPJNode]):
    for rule in graph.rules:
        node = rule.node
        if not isinstance(node, SPJNode):
            continue
        for arc in node.inputs:
            if arc.name not in views:
                continue
            if rule.name == arc.name:
                continue
            yield rule, node, arc


def _root_only(tree: TreeLabel) -> Optional[str]:
    bindings = tree.bindings()
    if len(bindings) == 1 and not bindings[0].path:
        return bindings[0].variable
    return None


class _Freshener:
    """Renames the view's variables apart from the consumer's."""

    def __init__(self, taken: Set[str], view_name: str) -> None:
        self._taken = set(taken)
        self._prefix = view_name.lower()[:4]
        self._mapping: Dict[str, str] = {}
        self._counter = 0

    def rename(self, variable: str) -> str:
        if variable not in self._mapping:
            candidate = variable
            while candidate in self._taken:
                self._counter += 1
                candidate = f"{variable}_{self._prefix}{self._counter}"
            self._mapping[variable] = candidate
            self._taken.add(candidate)
        return self._mapping[variable]

    def expr(self, expression: Expr) -> Expr:
        if isinstance(expression, PathRef):
            return PathRef(self.rename(expression.var), expression.attrs)
        if isinstance(expression, FunctionApp):
            return FunctionApp(
                expression.name,
                [self.expr(argument) for argument in expression.args],
                expression.fn,
                expression.eval_weight,
            )
        return expression

    def predicate(self, predicate: Predicate) -> Predicate:
        if isinstance(predicate, TruePredicate):
            return predicate
        if isinstance(predicate, Comparison):
            return Comparison(
                predicate.op,
                self.expr(predicate.left),
                self.expr(predicate.right),
            )
        if isinstance(predicate, And):
            return And(*[self.predicate(p) for p in predicate.parts])
        if isinstance(predicate, Or):
            return Or(*[self.predicate(p) for p in predicate.parts])
        if isinstance(predicate, Not):
            return Not(self.predicate(predicate.part))
        return predicate

    def tree(self, tree: TreeLabel) -> TreeLabel:
        renamed = TreeLabel(
            self.rename(tree.variable) if tree.variable is not None else None,
            [
                (attribute, self.tree(child))
                for attribute, child in tree.children
            ],
            tree.is_element,
        )
        return renamed


def _rewrite_through_view(
    expression: Expr,
    view_var: str,
    view_fields: Dict[str, Expr],
) -> Expr:
    """Rewrite ``view_var.f.rest`` to the view's expression for ``f``
    extended by ``rest``; other expressions recurse."""
    if isinstance(expression, PathRef):
        if expression.var != view_var:
            return expression
        if not expression.attrs:
            raise OptimizationError(
                "consumer uses the whole view tuple; cannot fold"
            )
        field_name, rest = expression.attrs[0], expression.attrs[1:]
        if field_name not in view_fields:
            raise OptimizationError(
                f"view has no field {field_name!r}; cannot fold"
            )
        replacement = view_fields[field_name]
        if isinstance(replacement, PathRef):
            return PathRef(replacement.var, replacement.attrs + rest)
        if rest:
            raise OptimizationError(
                f"view field {field_name!r} is computed; cannot fold a "
                "path through it"
            )
        return replacement
    if isinstance(expression, FunctionApp):
        return FunctionApp(
            expression.name,
            [
                _rewrite_through_view(argument, view_var, view_fields)
                for argument in expression.args
            ],
            expression.fn,
            expression.eval_weight,
        )
    return expression


def _rewrite_predicate_through_view(
    predicate: Predicate, view_var: str, view_fields: Dict[str, Expr]
) -> Predicate:
    if isinstance(predicate, TruePredicate):
        return predicate
    if isinstance(predicate, Comparison):
        return Comparison(
            predicate.op,
            _rewrite_through_view(predicate.left, view_var, view_fields),
            _rewrite_through_view(predicate.right, view_var, view_fields),
        )
    if isinstance(predicate, And):
        return And(
            *[
                _rewrite_predicate_through_view(p, view_var, view_fields)
                for p in predicate.parts
            ]
        )
    if isinstance(predicate, Or):
        return Or(
            *[
                _rewrite_predicate_through_view(p, view_var, view_fields)
                for p in predicate.parts
            ]
        )
    if isinstance(predicate, Not):
        return Not(
            _rewrite_predicate_through_view(
                predicate.part, view_var, view_fields
            )
        )
    return predicate


def _fold_site(
    graph: QueryGraph, rule: Rule, consumer: SPJNode, arc: Arc, view: SPJNode
) -> QueryGraph:
    view_var = _root_only(arc.tree)
    if view_var is None:
        raise OptimizationError(
            "consumer descends into view tuples; cannot fold"
        )
    taken = set()
    for consumer_arc in consumer.inputs:
        taken.update(consumer_arc.variables())
    freshener = _Freshener(taken, arc.name)
    folded_arcs = [
        Arc(view_arc.name, freshener.tree(view_arc.tree))
        for view_arc in view.inputs
    ]
    view_fields = {
        field.name: freshener.expr(field.expr) for field in view.output.fields
    }
    view_predicate = freshener.predicate(view.predicate)

    new_inputs = [a for a in consumer.inputs if a is not arc] + folded_arcs
    new_predicate = conjoin(
        [
            _rewrite_predicate_through_view(
                conjunct, view_var, view_fields
            )
            for conjunct in conjuncts(consumer.predicate)
        ]
        + conjuncts(view_predicate)
    )
    new_output = OutputSpec(
        [
            OutputField(
                field.name,
                _rewrite_through_view(field.expr, view_var, view_fields),
            )
            for field in consumer.output.fields
        ]
    )
    folded = SPJNode(new_inputs, new_predicate, new_output)
    new_graph = QueryGraph(list(graph.rules), graph.answer)
    new_graph.replace_rule(rule, Rule(rule.name, folded))
    # Drop view definitions nothing references anymore.
    return _drop_unused_views(new_graph)


def _drop_unused_views(graph: QueryGraph) -> QueryGraph:
    """Remove produced names nothing references (except the answer)."""
    while True:
        referenced = graph.referenced_names()
        removable = [
            name
            for name in graph.produced_names()
            if name != graph.answer and name not in referenced
        ]
        if not removable:
            return graph
        graph = QueryGraph(
            [r for r in graph.rules if r.name not in removable],
            graph.answer,
        )


def _fold_applications(graph: QueryGraph) -> Iterator[Application[QueryGraph]]:
    views = _foldable_views(graph)
    for rule, consumer, arc in _consumer_sites(graph, views):
        view = views[arc.name]
        if _root_only(arc.tree) is None:
            continue

        def apply(rule=rule, consumer=consumer, arc=arc, view=view):
            return _fold_site(graph, rule, consumer, arc, view)

        try:
            # Probe applicability eagerly so inapplicable sites (paths
            # through computed fields, whole-tuple uses) are skipped
            # rather than failing at apply time.
            apply()
        except OptimizationError:
            continue
        yield Application(
            fold_action, f"fold view {arc.name!r} into {rule.name!r}", apply
        )


fold_action: Action[QueryGraph] = Action("fold", _fold_applications)


def fold_views(graph: QueryGraph, trace: List[str] = None) -> QueryGraph:
    """Fold every foldable view, up to saturation (irrevocable)."""
    return saturate(graph, [fold_action], trace=trace)
