"""Local plan transformations ("moves") for randomized strategies.

Randomized search ([IC90], Section 4.5) walks a neighbourhood graph
over plans; these moves define the edges:

* ``swap-join`` — commute the operands of an explicit join (nested-loop
  cost is asymmetric);
* ``algorithm`` — switch an explicit join between nested-loop and
  index-join (when an applicable selection index exists);
* ``collapse`` / ``expand`` — replace an IJ chain by a PIJ over an
  existing path index, and back ("once a portion of the PT has been
  shifted, use an applicable index");
* ``push-filter`` — apply one ``filter`` push (selection/join through
  recursion); the inverse direction is reached by starting from the
  unpushed candidate, so the candidate set stays closed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.core.transform import apply_filter, find_filter_sites
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import (
    EJ,
    IJ,
    INDEX_JOIN,
    NESTED_LOOP,
    PIJ,
    EntityLeaf,
    PlanNode,
    Sel,
)
from repro.plans.patterns import PlanPath, paths_to
from repro.querygraph.predicates import Comparison, PathRef, Predicate, conjuncts

__all__ = ["neighbors", "index_join_possible"]


def index_join_possible(
    right: PlanNode,
    predicate: Predicate,
    left_vars: Set[str],
    physical: PhysicalSchema,
) -> bool:
    """Whether an EJ(left, right, predicate) admits the index-join
    algorithm: the inner is a (possibly selected) entity with a
    selection index on an equality-joined attribute."""
    leaf: Optional[EntityLeaf] = None
    if isinstance(right, EntityLeaf):
        leaf = right
    elif isinstance(right, Sel) and isinstance(right.child, EntityLeaf):
        leaf = right.child
    if leaf is None:
        return False
    for conjunct in conjuncts(predicate):
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        for inner, outer in (
            (conjunct.right, conjunct.left),
            (conjunct.left, conjunct.right),
        ):
            if (
                isinstance(inner, PathRef)
                and inner.var == leaf.var
                and len(inner.attrs) == 1
                and outer.variables() <= left_vars
                and physical.has_selection_index(leaf.entity, inner.attrs[0])
            ):
                return True
    return False


def neighbors(
    plan: PlanNode, physical: PhysicalSchema, extended: bool = False
) -> List[Tuple[str, PlanNode]]:
    """All plans one move away from ``plan``.

    ``extended=True`` additionally explores distributing union over
    join and the inverse factorization — the Section 5 open problem
    "not typically examined because of the undesirable increase in the
    search space", which this move-based formulation makes affordable.
    """
    result: List[Tuple[str, PlanNode]] = []
    result.extend(_join_moves(plan, physical))
    result.extend(_collapse_moves(plan, physical))
    result.extend(_expand_moves(plan))
    result.extend(_filter_moves(plan))
    if extended:
        result.extend(_union_distribution_moves(plan))
    return result


def _join_moves(
    plan: PlanNode, physical: PhysicalSchema
) -> Iterator[Tuple[str, PlanNode]]:
    for site in paths_to(plan, lambda n: isinstance(n, EJ)):
        node = site.focus
        assert isinstance(node, EJ)
        swapped = EJ(node.right, node.left, node.predicate, NESTED_LOOP)
        yield ("swap-join", site.rebuild(swapped))
        if node.algorithm == NESTED_LOOP and index_join_possible(
            node.right, node.predicate, node.left.output_vars(), physical
        ):
            yield (
                "index-join",
                site.rebuild(
                    EJ(node.left, node.right, node.predicate, INDEX_JOIN)
                ),
            )
        if node.algorithm == INDEX_JOIN:
            yield (
                "nested-loop",
                site.rebuild(
                    EJ(node.left, node.right, node.predicate, NESTED_LOOP)
                ),
            )


def _collapse_moves(
    plan: PlanNode, physical: PhysicalSchema
) -> Iterator[Tuple[str, PlanNode]]:
    """collapse: IJ_p1(IJ_p2(N1, N2), N3) | existPathIndex(p2.p1)
                 -> PIJ_{p2.p1}(N1, N2, N3)   (generalized to runs >= 2)"""
    for site in paths_to(plan, lambda n: isinstance(n, IJ)):
        outer = site.focus
        assert isinstance(outer, IJ)
        run: List[IJ] = [outer]
        current = outer.child
        while isinstance(current, IJ) and current.out_var == run[-1].source.var:
            run.append(current)
            current = current.child
        # run is outermost-first; the chain in execution order is the
        # reverse.
        chain = list(reversed(run))
        for start in range(len(chain)):
            for end in range(start + 2, len(chain) + 1):
                hops = chain[start:end]
                if any(
                    hops[k].source.var != hops[k - 1].out_var
                    for k in range(1, len(hops))
                ):
                    continue
                attrs = tuple(h.source.attrs[-1] for h in hops)
                if physical.find_path_index(attrs) is None:
                    continue
                # The PIJ head is the object the index is rooted at:
                # the variable the first collapsed hop dereferences.
                pij = PIJ(
                    hops[0].child,
                    [EntityLeaf(h.target.entity, h.target.var) for h in hops],
                    list(attrs),
                    PathRef(hops[0].source.var, hops[0].source.attrs[:-1]),
                    [h.out_var for h in hops],
                )
                rebuilt = pij
                for hop in chain[end:]:
                    rebuilt = IJ(rebuilt, hop.target, hop.source, hop.out_var)
                yield (f"collapse[{'.'.join(attrs)}]", site.rebuild(rebuilt))


def _expand_moves(plan: PlanNode) -> Iterator[Tuple[str, PlanNode]]:
    for site in paths_to(plan, lambda n: isinstance(n, PIJ)):
        node = site.focus
        assert isinstance(node, PIJ)
        rebuilt: PlanNode = node.child
        for position, (target, out_var) in enumerate(
            zip(node.targets, node.out_vars)
        ):
            if position == 0:
                source = PathRef(
                    node.source.var,
                    node.source.attrs + (node.attributes[0],),
                )
            else:
                source = PathRef(
                    node.out_vars[position - 1], (node.attributes[position],)
                )
            rebuilt = IJ(rebuilt, target, source, out_var)
        yield (f"expand[{node.path_name}]", site.rebuild(rebuilt))


def _filter_moves(plan: PlanNode) -> Iterator[Tuple[str, PlanNode]]:
    for segment in find_filter_sites(plan):
        yield (segment.describe(), apply_filter(plan, segment))


def _union_distribution_moves(
    plan: PlanNode,
) -> Iterator[Tuple[str, PlanNode]]:
    """distribute: EJ(Union(a,b), c) -> Union(EJ(a,c), EJ(b,c))
       factorize:  Union(EJ(a,c), EJ(b,c)) -> EJ(Union(a,b), c)

    Distribution lets each union branch pick its own join strategy
    (e.g. an index join on one branch, a nested loop on the other);
    factorization shares one inner scan across branches.  Which one
    wins is a cost question — exactly why the paper proposes exploring
    it with the same cost-controlled machinery (Section 5)."""
    from repro.plans.nodes import UnionOp

    for site in paths_to(plan, lambda n: isinstance(n, EJ)):
        node = site.focus
        assert isinstance(node, EJ)
        if isinstance(node.left, UnionOp):
            distributed = UnionOp(
                EJ(node.left.left, node.right, node.predicate, node.algorithm),
                EJ(node.left.right, node.right, node.predicate, node.algorithm),
            )
            yield ("distribute-union-left", site.rebuild(distributed))
        if isinstance(node.right, UnionOp):
            distributed = UnionOp(
                EJ(node.left, node.right.left, node.predicate, node.algorithm),
                EJ(node.left, node.right.right, node.predicate, node.algorithm),
            )
            yield ("distribute-union-right", site.rebuild(distributed))
    for site in paths_to(plan, lambda n: isinstance(n, UnionOp)):
        node = site.focus
        assert isinstance(node, UnionOp)
        left, right = node.left, node.right
        if not (isinstance(left, EJ) and isinstance(right, EJ)):
            continue
        if left.predicate != right.predicate:
            continue
        if left.right == right.right:
            factored = EJ(
                UnionOp(left.left, right.left),
                left.right,
                left.predicate,
                left.algorithm,
            )
            yield ("factorize-union-left", site.rebuild(factored))
        if left.left == right.left:
            factored = EJ(
                left.left,
                UnionOp(left.right, right.right),
                left.predicate,
                left.algorithm,
            )
            yield ("factorize-union-right", site.rebuild(factored))
