"""Baseline optimizers the paper argues against (Section 4.1).

* :func:`deductive_optimizer` — the deductive-DB approach: rewriting
  heuristics applied unconditionally.  Selections (and joins) that
  *can* be pushed through recursion *are* pushed, with no cost model
  consulted ("most deductive query processors would push selection and
  projection through recursion [BR86]").
* :func:`naive_optimizer` — never pushes through recursion and skips
  randomized reoptimization: the plain generatePT output.
* :func:`exhaustive_optimizer` — the [KZ88]-style strategy:
  exhaustively enumerate the transformation space and keep the global
  optimum.  "As this strategy is cost-based, optimality is guaranteed,
  but the optimization time may become unacceptably high."
* :func:`cost_controlled_optimizer` — the paper's optimizer with its
  default two-pass, cost-compared transformPT (for symmetric naming).
* :func:`enumerating_optimizer` — the memoized transformation-based
  enumerator (``strategy="enum"``) as a ready-made optimizer.
* :func:`brute_force_enumerate` — the optimality oracle: close the
  move graph with *no* memo fingerprinting and *no* pruning, costing
  every structurally distinct plan reached, and return the global
  minimum over the closure.  Only feasible on small plan spaces, which
  is exactly what the property-based oracle tests generate.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.core.optimizer import Optimizer, OptimizerConfig
from repro.core.strategies import ExhaustiveSearch, IterativeImprovement
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import PlanNode

__all__ = [
    "deductive_optimizer",
    "naive_optimizer",
    "exhaustive_optimizer",
    "cost_controlled_optimizer",
    "enumerating_optimizer",
    "brute_force_enumerate",
]


def deductive_optimizer(
    physical: PhysicalSchema, cost_model=None
) -> Optimizer:
    """Always push through recursion; no cost comparison."""
    return Optimizer(
        physical,
        cost_model,
        OptimizerConfig(push_policy="always", reoptimize=False),
    )


def naive_optimizer(physical: PhysicalSchema, cost_model=None) -> Optimizer:
    """Never push through recursion; no randomized reoptimization."""
    return Optimizer(
        physical,
        cost_model,
        OptimizerConfig(push_policy="never", reoptimize=False),
    )


def exhaustive_optimizer(
    physical: PhysicalSchema,
    cost_model=None,
    max_plans: int = 20_000,
) -> Optimizer:
    """Exhaustively close the transformation space ([KZ88])."""
    return Optimizer(
        physical,
        cost_model,
        OptimizerConfig(
            push_policy="cost",
            reoptimize=True,
            strategy=ExhaustiveSearch(max_plans=max_plans),
            exhaustive_generate=True,
        ),
    )


def cost_controlled_optimizer(
    physical: PhysicalSchema,
    cost_model=None,
    seed: int = 1992,
) -> Optimizer:
    """The paper's optimizer (cost-compared pushes + II reoptimization)."""
    return Optimizer(
        physical,
        cost_model,
        OptimizerConfig(
            push_policy="cost",
            reoptimize=True,
            strategy=IterativeImprovement(seed=seed),
        ),
    )


def enumerating_optimizer(
    physical: PhysicalSchema,
    cost_model=None,
    prune_factor: Optional[float] = 2.0,
    max_plans: int = 20_000,
) -> Optimizer:
    """Systematic memoized enumeration of the transformation space."""
    from repro.core.enumerate import MemoizedEnumeration

    return Optimizer(
        physical,
        cost_model,
        OptimizerConfig(
            push_policy="cost",
            reoptimize=True,
            strategy=MemoizedEnumeration(
                prune_factor=prune_factor, max_plans=max_plans
            ),
        ),
    )


def brute_force_enumerate(
    start: PlanNode,
    cost_fn: Callable[[PlanNode], float],
    physical: PhysicalSchema,
    *,
    extended_moves: bool = False,
    max_plans: int = 50_000,
) -> Tuple[PlanNode, float, int]:
    """Cost every structurally distinct plan in the move-graph closure
    of ``start`` and return ``(best_plan, best_cost, plans_costed)``.

    Deliberately naive — structural (not canonical) dedup, breadth-
    first, no pruning — so it shares no machinery with
    :class:`repro.core.enumerate.MemoizedEnumeration` and can serve as
    its optimality oracle.  Raises :class:`RuntimeError` when the
    closure exceeds ``max_plans``: an oracle that silently truncated
    the space could vacuously "confirm" optimality.
    """
    from repro.core.moves import neighbors

    seen = {start: cost_fn(start)}
    frontier = [start]
    while frontier:
        next_frontier = []
        for plan in frontier:
            for _description, candidate in neighbors(
                plan, physical, extended_moves
            ):
                if candidate in seen:
                    continue
                seen[candidate] = cost_fn(candidate)
                next_frontier.append(candidate)
                if len(seen) > max_plans:
                    raise RuntimeError(
                        f"plan space exceeds {max_plans} plans; "
                        "brute-force oracle is not feasible here"
                    )
        frontier = next_frontier
    best_plan, best_cost = min(seen.items(), key=lambda item: item[1])
    return best_plan, best_cost, len(seen)
