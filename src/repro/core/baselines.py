"""Baseline optimizers the paper argues against (Section 4.1).

* :func:`deductive_optimizer` — the deductive-DB approach: rewriting
  heuristics applied unconditionally.  Selections (and joins) that
  *can* be pushed through recursion *are* pushed, with no cost model
  consulted ("most deductive query processors would push selection and
  projection through recursion [BR86]").
* :func:`naive_optimizer` — never pushes through recursion and skips
  randomized reoptimization: the plain generatePT output.
* :func:`exhaustive_optimizer` — the [KZ88]-style strategy:
  exhaustively enumerate the transformation space and keep the global
  optimum.  "As this strategy is cost-based, optimality is guaranteed,
  but the optimization time may become unacceptably high."
* :func:`cost_controlled_optimizer` — the paper's optimizer with its
  default two-pass, cost-compared transformPT (for symmetric naming).
"""

from __future__ import annotations

from typing import Optional

from repro.core.optimizer import Optimizer, OptimizerConfig
from repro.core.strategies import ExhaustiveSearch, IterativeImprovement
from repro.physical.schema import PhysicalSchema

__all__ = [
    "deductive_optimizer",
    "naive_optimizer",
    "exhaustive_optimizer",
    "cost_controlled_optimizer",
]


def deductive_optimizer(
    physical: PhysicalSchema, cost_model=None
) -> Optimizer:
    """Always push through recursion; no cost comparison."""
    return Optimizer(
        physical,
        cost_model,
        OptimizerConfig(push_policy="always", reoptimize=False),
    )


def naive_optimizer(physical: PhysicalSchema, cost_model=None) -> Optimizer:
    """Never push through recursion; no randomized reoptimization."""
    return Optimizer(
        physical,
        cost_model,
        OptimizerConfig(push_policy="never", reoptimize=False),
    )


def exhaustive_optimizer(
    physical: PhysicalSchema,
    cost_model=None,
    max_plans: int = 20_000,
) -> Optimizer:
    """Exhaustively close the transformation space ([KZ88])."""
    return Optimizer(
        physical,
        cost_model,
        OptimizerConfig(
            push_policy="cost",
            reoptimize=True,
            strategy=ExhaustiveSearch(max_plans=max_plans),
            exhaustive_generate=True,
        ),
    )


def cost_controlled_optimizer(
    physical: PhysicalSchema,
    cost_model=None,
    seed: int = 1992,
) -> Optimizer:
    """The paper's optimizer (cost-compared pushes + II reoptimization)."""
    return Optimizer(
        physical,
        cost_model,
        OptimizerConfig(
            push_policy="cost",
            reoptimize=True,
            strategy=IterativeImprovement(seed=seed),
        ),
    )
