"""Memoized transformation-based enumeration of recursive plans.

The randomized strategies (II/SA/2PO) sample walks through the move
graph — selection-push in/out of Fix, join-push, join-order
(``swap-join``), and operator-order (``collapse``/``expand``,
``index-join``/``nested-loop``) alternatives — so they can silently
miss the best recursive plan.  :class:`MemoizedEnumeration` explores
the same space *systematically*, borrowing the two ideas that make
transformation-based enumeration affordable (arXiv 2312.02572,
arXiv 2605.05044):

* a **memo table keyed on canonical subplan fingerprints**
  (:func:`repro.plans.canonical.canonical_fingerprint`): the move
  graph is a DAG with massive sharing — independent moves commute, so
  ``k`` applicable moves reach the same plan along ``k!`` orders, and
  push renaming makes the duplicates alpha-variants rather than
  structurally equal.  Fingerprint memoization costs each equivalence
  class once, collapsing the factorial path count to the polynomial
  number of distinct plans;
* **branch-and-bound pruning against the incumbent**: expansion is
  best-first (cheapest plan next), so the incumbent drops fast; once
  the cheapest open plan costs more than ``prune_factor`` times the
  incumbent, the rest of the frontier is pruned unexpanded.  The rule
  is exact whenever the optimum is reachable through intermediate
  plans within the band — which holds for this move graph's commuting
  local moves, and is continuously re-proven by the optimality-oracle
  test against the brute-force enumerator
  (:func:`repro.core.baselines.brute_force_enumerate`).

The strategy is cost-model-aware by construction: it only ever calls
the ``cost_fn`` it is handed, so the serial, parallel
(``CostParameters.parallelism``) and distributed
(``CostParameters.shards``, :mod:`repro.cost.distributed`) Fix
variants all steer the search.  Search effort is observable: every
costed candidate emits the standard ``strategy.candidate`` tracer
event, and a final ``enumeration.memo`` event (plus
:attr:`MemoizedEnumeration.last_stats`) carries the memo statistics
that the optimizer forwards into the ``transformPT`` span and EXPLAIN
output.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.core.moves import neighbors
from repro.core.strategies import CostFn, SearchResult, SearchStrategy
from repro.physical.schema import PhysicalSchema
from repro.plans.canonical import canonical_fingerprint
from repro.plans.nodes import PlanNode

__all__ = ["EnumerationStats", "MemoizedEnumeration"]


@dataclass
class EnumerationStats:
    """Memo-table and pruning counters of one enumeration run."""

    #: Distinct canonical plan classes entered into the memo table.
    subplans_memoized: int = 0
    #: Generated candidates whose fingerprint was already memoized
    #: (shared subproblems reached along another transformation order).
    memo_hits: int = 0
    #: Frontier plans discarded by the branch-and-bound cutoff.
    pruned_branches: int = 0
    #: Candidates actually handed to the cost model.
    candidates_costed: int = 0
    #: Plans whose neighbourhoods were generated.
    expanded: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class MemoizedEnumeration(SearchStrategy):
    """Best-first, memoized, branch-and-bound plan enumeration.

    ``prune_factor`` bounds how far above the incumbent an open plan
    may sit and still be expanded (``None`` disables pruning — the
    closure is then exhaustive over canonical plan classes);
    ``max_plans`` caps the memo table as a terminating backstop.
    """

    #: transformPT need not pre-seed this strategy with push
    #: candidates: push-filter moves are part of the explored graph, so
    #: one search from the unpushed plan covers every selection/join
    #: push alternative (see ``Optimizer._transform_pt``).
    self_contained = True

    def __init__(
        self,
        prune_factor: Optional[float] = 2.0,
        max_plans: int = 20_000,
    ) -> None:
        if prune_factor is not None and prune_factor < 1.0:
            raise ValueError("prune_factor must be >= 1.0 (or None)")
        self.prune_factor = prune_factor
        self.max_plans = max_plans
        self.last_stats = EnumerationStats()

    def search(
        self,
        start: PlanNode,
        cost_fn: CostFn,
        physical: PhysicalSchema,
        *,
        tracer=None,
    ) -> SearchResult:
        """Enumerate the transformation closure of ``start``."""
        tracing = tracer is not None and tracer.enabled
        stats = EnumerationStats()
        self.last_stats = stats

        start_cost = cost_fn(start)
        stats.candidates_costed += 1
        memo: Dict[str, float] = {canonical_fingerprint(start): start_cost}
        best_plan, best_cost = start, start_cost
        taken: List[str] = []
        # Heap entries carry an insertion counter so plans (unordered)
        # never get compared on cost ties.
        counter = 0
        frontier = [(start_cost, counter, start)]
        while frontier and len(memo) < self.max_plans:
            cost, _tie, plan = heapq.heappop(frontier)
            if (
                self.prune_factor is not None
                and cost > best_cost * self.prune_factor
            ):
                # Best-first order means every remaining open plan is
                # at least this costly, and the incumbent only ever
                # improves: the whole frontier is out of the band.
                stats.pruned_branches += 1 + len(frontier)
                if tracing:
                    tracer.event(
                        "enumeration.prune",
                        frontier_cost=cost,
                        incumbent=best_cost,
                        prune_factor=self.prune_factor,
                        pruned=1 + len(frontier),
                    )
                break
            stats.expanded += 1
            for description, candidate in neighbors(
                plan, physical, self.extended_moves
            ):
                fingerprint = canonical_fingerprint(candidate)
                if fingerprint in memo:
                    stats.memo_hits += 1
                    continue
                candidate_cost = cost_fn(candidate)
                stats.candidates_costed += 1
                memo[fingerprint] = candidate_cost
                accepted = candidate_cost < best_cost
                if tracing:
                    tracer.event(
                        "strategy.candidate",
                        strategy="enum",
                        move=description,
                        cost_before=cost,
                        cost_after=candidate_cost,
                        accepted=accepted,
                    )
                if accepted:
                    best_plan, best_cost = candidate, candidate_cost
                    taken.append(description)
                counter += 1
                heapq.heappush(
                    frontier, (candidate_cost, counter, candidate)
                )
        stats.subplans_memoized = len(memo)
        if tracing:
            tracer.event("enumeration.memo", **stats.to_dict())
        return SearchResult(
            best_plan, best_cost, stats.candidates_costed, taken
        )
