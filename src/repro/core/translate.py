"""The ``translate`` optimization step (Section 4.3).

Maps a (rewritten) query graph onto the physical schema: conceptual
name nodes become atomic entities, and path expressions become
sequences of implicit-join *hops* that ``generatePT`` later turns into
``IJ`` nodes (or ``PIJ`` nodes via the ``collapse`` action).

The unit of work is one predicate node: its arcs' tree labels, its
Boolean predicate and its output projection all contain paths; shared
prefixes are factorized into a single hop chain (a trie keyed by
(variable, attribute)) — this is the paper's "simultaneously optimize
overlapping paths without any additional rewriting".

Hop-expansion policy: a reference attribute is crossed by a hop only
when something *beyond* it is accessed; a path ending at a reference
attribute compares/projects the oid directly (object identity needs no
dereference).  Multivalued crossings expand bindings existentially —
set semantics of answers are preserved (duplicates may differ, as in
the paper's own plans).  Predicates under negation are **not**
expanded (existential expansion does not commute with ``not``); they
stay whole-path selections the engine evaluates existentially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import OptimizationError, UnknownAttributeError
from repro.physical.schema import PhysicalSchema
from repro.querygraph.graph import Arc, OutputField, OutputSpec, SPJNode
from repro.querygraph.predicates import (
    And,
    Comparison,
    Const,
    Expr,
    FunctionApp,
    Not,
    Or,
    PathRef,
    Predicate,
    TruePredicate,
    conjoin,
    conjuncts,
)
from repro.querygraph.tree_labels import TreeLabel
from repro.schema.catalog import Catalog

__all__ = [
    "Hop",
    "TranslatedArc",
    "TranslatedNode",
    "Translator",
    "produced_shape",
]


@dataclass
class Hop:
    """One implicit join: dereference ``source`` into ``target_entity``,
    binding ``out_var``.  ``multivalued`` records whether the crossed
    attribute is set/list-valued (the hop expands bindings)."""

    source: PathRef
    target_class: str
    target_entity: str
    out_var: str
    multivalued: bool

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Hop({self.source.dotted()} -> {self.out_var}:{self.target_entity})"


@dataclass
class TranslatedArc:
    """One translated incoming arc.

    ``root_var`` is bound to each instance of the arc's source;
    ``hops`` is the factorized hop chain (in dependency order — a hop's
    source variable is either the root or an earlier hop's out_var).
    """

    name: str
    root_var: str
    entity: Optional[str]  # physical entity for base names; None if produced
    hops: List[Hop] = field(default_factory=list)

    def hop_vars(self) -> Set[str]:
        """Variables introduced by this arc's hops."""
        return {hop.out_var for hop in self.hops}

    def all_vars(self) -> Set[str]:
        """Root variable plus every hop variable of this arc."""
        return {self.root_var} | self.hop_vars()


@dataclass
class TranslatedNode:
    """A predicate node translated onto the physical schema."""

    spj: SPJNode
    arcs: List[TranslatedArc]
    predicate: Predicate
    output: OutputSpec


class Translator:
    """Translates predicate nodes onto the physical schema.

    ``shapes`` maps produced name nodes (views, recursions) to their
    output-field classes, so paths over view tuples resolve too.
    """

    def __init__(
        self,
        physical: PhysicalSchema,
        shapes: Optional[Dict[str, Dict[str, Optional[str]]]] = None,
    ) -> None:
        self.physical = physical
        if physical.catalog is None:
            raise OptimizationError("translation requires a conceptual catalog")
        self.catalog: Catalog = physical.catalog
        self.shapes = shapes or {}
        self._fresh = 0

    # -- variable naming ------------------------------------------------------

    def fresh_var(self, hint: str) -> str:
        """A new variable name unique within this translator."""
        self._fresh += 1
        return f"_{hint}{self._fresh}"

    # -- entry point --------------------------------------------------------------

    def translate_node(self, spj: SPJNode) -> TranslatedNode:
        """Translate one predicate node onto the physical schema:
        arcs become hop chains, predicate and output are rewritten over
        the new variables."""
        arcs: List[TranslatedArc] = []
        substitution: Dict[str, PathRef] = {}
        arc_of_var: Dict[str, TranslatedArc] = {}
        for arc in spj.inputs:
            translated = self._translate_arc(arc, substitution, arc_of_var)
            arcs.append(translated)
        predicate = self._translate_predicate(
            spj.predicate, substitution, arc_of_var
        )
        output = OutputSpec(
            [
                OutputField(
                    f.name,
                    self._translate_expr(f.expr, substitution, arc_of_var),
                )
                for f in spj.output.fields
            ]
        )
        return TranslatedNode(spj, arcs, predicate, output)

    # -- arc translation --------------------------------------------------------------

    def _translate_arc(
        self,
        arc: Arc,
        substitution: Dict[str, PathRef],
        arc_of_var: Dict[str, TranslatedArc],
    ) -> TranslatedArc:
        root_binding = [b for b in arc.tree.bindings() if not b.path]
        if root_binding:
            root_var = root_binding[0].variable
        else:
            root_var = self.fresh_var(arc.name[:3].lower())
        entity: Optional[str] = None
        if arc.name not in self.shapes:
            entity = self.physical.primary_entity(arc.name).name
        translated = TranslatedArc(arc.name, root_var, entity)
        arc_of_var[root_var] = translated
        substitution[root_var] = PathRef(root_var)
        # Walk the tree label *structurally*: two sibling branches on
        # the same attribute (Figure 2's i1/i2) must get *distinct*
        # hops, while a shared prefix gets one hop (the factorization
        # the paper highlights).  Dotted paths alone cannot express
        # that, so hops are created per tree branch here; paths that
        # only appear in the predicate/output still get demand-driven
        # hops in expand_path.
        self._walk_tree_label(
            arc.tree, translated, root_var, (), substitution, arc_of_var
        )
        return translated

    def _walk_tree_label(
        self,
        tree: TreeLabel,
        arc: TranslatedArc,
        current_var: str,
        pending: Tuple[str, ...],
        substitution: Dict[str, PathRef],
        arc_of_var: Dict[str, TranslatedArc],
    ) -> None:
        for attr, child in tree.children:
            if attr is None:
                # Element node: the (multivalued) hop that brought us
                # here already expands elements.
                if child.variable is not None:
                    substitution[child.variable] = PathRef(
                        current_var, pending
                    )
                self._walk_tree_label(
                    child, arc, current_var, pending, substitution, arc_of_var
                )
                continue
            if not child.children:
                # Leaf: bind the value (atomic, method, or oid) directly.
                if child.variable is not None:
                    substitution[child.variable] = PathRef(
                        current_var, pending + (attr,)
                    )
                continue
            target_class, multivalued = self._reference_target_from(
                arc, current_var, pending, attr
            )
            if target_class is None:
                # Non-reference with structure below: bind variables to
                # dotted paths (evaluated in place).
                if child.variable is not None:
                    substitution[child.variable] = PathRef(
                        current_var, pending + (attr,)
                    )
                self._walk_tree_label(
                    child,
                    arc,
                    current_var,
                    pending + (attr,),
                    substitution,
                    arc_of_var,
                )
                continue
            hop = self._new_hop(
                arc, current_var, pending + (attr,), target_class, multivalued
            )
            if hop is None:
                continue
            arc_of_var[hop.out_var] = arc
            if child.variable is not None:
                substitution[child.variable] = PathRef(hop.out_var)
            self._walk_tree_label(
                child, arc, hop.out_var, (), substitution, arc_of_var
            )

    def _reference_target_from(
        self,
        arc: TranslatedArc,
        var: str,
        pending: Tuple[str, ...],
        attr: str,
    ) -> Tuple[Optional[str], bool]:
        """Target class of ``var.pending.attr`` (walking classes)."""
        owner_class = self._class_of_var(var, arc)
        if owner_class is None and var == arc.root_var and arc.entity is None:
            # Tuple-shaped source: only direct fields resolve.
            if pending:
                return None, False
            return self._field_class(arc.name, attr), False
        current = owner_class
        for step in pending:
            if current is None or current not in self.catalog:
                return None, False
            try:
                attribute = self.catalog.attribute(current, step)
            except UnknownAttributeError:
                return None, False
            current = attribute.referenced_class()
        if current is None or current not in self.catalog:
            return None, False
        try:
            attribute = self.catalog.attribute(current, attr)
        except UnknownAttributeError:
            return None, False
        return attribute.referenced_class(), attribute.is_multivalued()

    def _new_hop(
        self,
        arc: TranslatedArc,
        var: str,
        source_attrs: Tuple[str, ...],
        target_class: str,
        multivalued: bool,
    ) -> Optional[Hop]:
        try:
            target_entity = self.physical.primary_entity(target_class).name
        except Exception:
            return None
        out_var = self.fresh_var(source_attrs[-1][:4])
        hop = Hop(
            PathRef(var, source_attrs),
            target_class,
            target_entity,
            out_var,
            multivalued,
        )
        arc.hops.append(hop)
        return hop

    # -- path expansion (hop trie) -----------------------------------------------------

    def _class_of_var(self, var: str, arc: TranslatedArc) -> Optional[str]:
        """Conceptual class a variable's records belong to."""
        if var == arc.root_var:
            if arc.entity is not None:
                return self.physical.entity(arc.entity).conceptual_name
            return None
        for hop in arc.hops:
            if hop.out_var == var:
                return hop.target_class
        return None

    def _field_class(self, name: str, field_name: str) -> Optional[str]:
        shape = self.shapes.get(name)
        if shape is None:
            return None
        return shape.get(field_name)

    def expand_path(
        self, path: PathRef, arc_of_var: Dict[str, TranslatedArc]
    ) -> PathRef:
        """Expand a path into hops on its arc; return the residual path.

        The residual references the deepest hop's out_var with at most
        one final attribute (atomic value, method, or reference-as-oid).
        """
        arc = arc_of_var.get(path.var)
        if arc is None or not path.attrs:
            return path
        current_var = path.var
        attrs = list(path.attrs)
        while len(attrs) > 1:
            attr = attrs[0]
            hop = self._find_or_create_hop(arc, current_var, attr)
            if hop is None:
                # Not a reference attribute (or unresolvable): leave
                # the rest of the path as-is.
                break
            current_var = hop.out_var
            arc_of_var[current_var] = arc
            attrs = attrs[1:]
        return PathRef(current_var, tuple(attrs))

    def _find_or_create_hop(
        self, arc: TranslatedArc, var: str, attr: str
    ) -> Optional[Hop]:
        for hop in arc.hops:
            if hop.source.var == var and hop.source.attrs == (attr,):
                return hop
        target_class, multivalued = self._reference_target(arc, var, attr)
        if target_class is None:
            return None
        try:
            target_entity = self.physical.primary_entity(target_class).name
        except Exception:
            return None
        out_var = self.fresh_var(attr[:4])
        hop = Hop(PathRef(var, (attr,)), target_class, target_entity, out_var, multivalued)
        arc.hops.append(hop)
        return hop

    def _reference_target(
        self, arc: TranslatedArc, var: str, attr: str
    ) -> Tuple[Optional[str], bool]:
        owner_class = self._class_of_var(var, arc)
        if owner_class is not None and owner_class in self.catalog:
            try:
                attribute = self.catalog.attribute(owner_class, attr)
            except UnknownAttributeError:
                return None, False
            return attribute.referenced_class(), attribute.is_multivalued()
        # Tuple-shaped source (a produced name): field classes come
        # from the registered shape.
        if var == arc.root_var and arc.entity is None:
            return self._field_class(arc.name, attr), False
        return None, False

    # -- predicate / expression rewriting --------------------------------------------------

    def _translate_predicate(
        self,
        predicate: Predicate,
        substitution: Dict[str, PathRef],
        arc_of_var: Dict[str, TranslatedArc],
    ) -> Predicate:
        if isinstance(predicate, TruePredicate):
            return predicate
        if isinstance(predicate, And):
            return And(
                *[
                    self._translate_predicate(p, substitution, arc_of_var)
                    for p in predicate.parts
                ]
            )
        if isinstance(predicate, Or):
            return Or(
                *[
                    self._translate_predicate(p, substitution, arc_of_var)
                    for p in predicate.parts
                ]
            )
        if isinstance(predicate, Not):
            # No hop expansion under negation: substitute variables only.
            inner = predicate.part.substitute(
                {v: p for v, p in substitution.items()}
            )
            return Not(inner)
        if isinstance(predicate, Comparison):
            return Comparison(
                predicate.op,
                self._translate_expr(predicate.left, substitution, arc_of_var),
                self._translate_expr(predicate.right, substitution, arc_of_var),
            )
        return predicate

    def _translate_expr(
        self,
        expr: Expr,
        substitution: Dict[str, PathRef],
        arc_of_var: Dict[str, TranslatedArc],
    ) -> Expr:
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, PathRef):
            resolved = expr.substitute(
                {v: p for v, p in substitution.items()}
            )
            if isinstance(resolved, PathRef):
                return self.expand_path(resolved, arc_of_var)
            return resolved
        if isinstance(expr, FunctionApp):
            return FunctionApp(
                expr.name,
                [
                    self._translate_expr(a, substitution, arc_of_var)
                    for a in expr.args
                ],
                expr.fn,
                expr.eval_weight,
            )
        return expr


def produced_shape(
    output: OutputSpec,
    catalog: Catalog,
    arc_classes: Dict[str, Optional[str]],
    shapes: Dict[str, Dict[str, Optional[str]]],
) -> Dict[str, Optional[str]]:
    """Field -> class mapping of a produced name's output.

    ``arc_classes`` maps the producing node's variables to their
    classes (root variables of base arcs resolve via the catalog;
    variables over other produced names resolve via ``shapes``)."""
    result: Dict[str, Optional[str]] = {}
    for output_field in output.fields:
        result[output_field.name] = _expr_class(
            output_field.expr, catalog, arc_classes, shapes
        )
    return result


def _expr_class(
    expr: Expr,
    catalog: Catalog,
    arc_classes: Dict[str, Optional[str]],
    shapes: Dict[str, Dict[str, Optional[str]]],
) -> Optional[str]:
    if not isinstance(expr, PathRef):
        return None
    current = arc_classes.get(expr.var)
    for position, attr in enumerate(expr.attrs):
        if current is None:
            return None
        if current in catalog:
            try:
                attribute = catalog.attribute(current, attr)
            except UnknownAttributeError:
                return None
            current = attribute.referenced_class()
        elif current in shapes:
            current = shapes[current].get(attr)
        else:
            return None
    return current
