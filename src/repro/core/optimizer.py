"""The optimizer driver: ``optimize(Q)`` (Section 4.1).

Runs the paper's four successive steps::

    optimize(Q)
    { rewrite(Q);
      for each (N, tree) of Q                      translate(N, tree);
      for each SPJ(In, pred, out) of Q | isaPT(In) generatePT(...);
      repeat transformPT(Q) until saturation; }

* **rewrite** — irrevocable; makes Union/Fix explicit (granule: the
  whole query graph);
* **translate** — cost-based; conceptual entities → atomic physical
  entities, paths → implicit-join hops (granule: one arc);
* **generatePT** — cost-based, generative; one optimal PT per
  predicate node, built bottom-up so every input is already a PT
  (granule: one predicate node);
* **transformPT** — cost-based, transformational; decides the position
  of selective operations w.r.t. recursion by *comparing costed
  candidates*, optionally re-optimizing each with a randomized strategy
  (granule: the whole query as a PT).

The driver is configurable enough to express the paper's baselines
(:mod:`repro.core.baselines`): disable the cost comparison and always
push (the deductive-DB heuristic), never push (naive), or search
exhaustively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import OptimizationError
from repro.core.generate import SPJGenerator
from repro.core.rewrite import rewrite
from repro.core.strategies import (
    IterativeImprovement,
    SearchResult,
    SearchStrategy,
    resolve_strategy,
)
from repro.core.transform import transform_candidates
from repro.core.translate import TranslatedNode, Translator, produced_shape
from repro.cost.cardinality import TupleShape
from repro.cost.model import DetailedCostModel
from repro.obs.trace import NULL_TRACER
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import (
    EntityLeaf,
    Fix,
    Materialize,
    PlanNode,
    RecLeaf,
    Sel,
    UnionOp,
)
from repro.plans.validate import validate_plan
from repro.querygraph.graph import FixNode, QueryGraph, SPJNode, UnionNode
from repro.querygraph.predicates import Comparison, PathRef, conjuncts
from repro.querygraph.views import RecursionInfo, analyze_recursion

__all__ = ["OptimizerConfig", "OptimizationResult", "Optimizer"]


@dataclass
class OptimizerConfig:
    """Knobs controlling the optimization pipeline.

    ``push_policy`` decides how transformPT treats filter pushes:

    * ``"cost"``   — the paper's approach: compare candidates by cost;
    * ``"always"`` — the deductive-DB heuristic: push whenever
      ``canPush`` holds, without costing;
    * ``"never"``  — never push.
    """

    push_policy: str = "cost"
    reoptimize: bool = True
    #: A :class:`SearchStrategy` instance, or one of the registered
    #: names (:data:`repro.core.strategies.STRATEGY_NAMES`, e.g.
    #: ``"enum"``); names are resolved on construction.
    strategy: Optional[Union[str, SearchStrategy]] = None
    validate_plans: bool = True
    #: Disable DP pruning in generatePT, fully enumerating join orders
    #: ([KZ88]); used by the exhaustive baseline.
    exhaustive_generate: bool = False
    #: Apply the ``fold`` rewriting action (inline non-recursive
    #: single-rule views) before the main rewrite step.
    fold_nonrecursive_views: bool = True

    def __post_init__(self) -> None:
        if self.push_policy not in ("cost", "always", "never"):
            raise OptimizationError(
                f"unknown push policy {self.push_policy!r}"
            )
        if isinstance(self.strategy, str):
            try:
                self.strategy = resolve_strategy(self.strategy)
            except ValueError as exc:
                raise OptimizationError(str(exc)) from None


@dataclass
class OptimizationResult:
    """The chosen plan plus full provenance of the decision."""

    plan: PlanNode
    cost: float
    candidates: List[Tuple[str, float]] = field(default_factory=list)
    plans_costed: int = 0
    rewrite_trace: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Search-strategy introspection counters, when the strategy keeps
    #: them (``enum``: subplans memoized, memo hits, pruned branches,
    #: candidates costed, plans expanded).
    strategy_stats: Optional[Dict[str, int]] = None

    def chose_push(self) -> bool:
        """Whether the winning plan has a selection/join inside a Fix."""
        for node in self.plan.walk():
            if isinstance(node, Fix):
                from repro.plans.nodes import EJ, Sel

                for inner in node.body.walk():
                    if isinstance(inner, Sel):
                        return True
        return False


class Optimizer:
    """Cost-controlled optimizer for object-oriented recursive queries."""

    def __init__(
        self,
        physical: PhysicalSchema,
        cost_model=None,
        config: Optional[OptimizerConfig] = None,
    ) -> None:
        self.physical = physical
        self.cost_model = cost_model or DetailedCostModel(physical)
        self.config = config or OptimizerConfig()
        self._strategy = self.config.strategy or IterativeImprovement()
        self._tracer = NULL_TRACER

    # -- public API --------------------------------------------------------------

    def optimize(self, graph: QueryGraph, tracer=None) -> OptimizationResult:
        """Run the four optimization steps on a query graph and return
        the chosen plan with its cost and decision provenance.

        ``tracer`` (a :class:`repro.obs.trace.Tracer`) records one span
        per step — ``rewrite``, ``generatePT`` per produced name,
        ``transformPT`` — with per-arc ``translate.arc`` events and one
        ``transformPT.candidate`` / ``transformPT.push_comparison``
        event per costed alternative."""
        self._tracer = tracer if tracer is not None else NULL_TRACER
        try:
            return self._optimize(graph)
        finally:
            self._tracer = NULL_TRACER

    def _optimize(self, graph: QueryGraph) -> OptimizationResult:
        started = time.perf_counter()
        trace: List[str] = []
        with self._tracer.span("rewrite") as rewrite_span:
            if self.config.fold_nonrecursive_views:
                from repro.core.fold import fold_views

                graph = fold_views(graph, trace)
            rewritten = rewrite(graph, trace)
            rewrite_span.set(actions=len(trace))
        shapes = self._produced_shapes(rewritten)
        translator = Translator(self.physical, shapes)
        generator = SPJGenerator(
            self.physical,
            self.cost_model,
            prune=not self.config.exhaustive_generate,
        )

        plans_costed = 0
        producer_plans: Dict[str, PlanNode] = {}
        order = rewritten.stratification_order()
        for name in order:
            if name == rewritten.answer:
                continue
            with self._tracer.span("generatePT", node=name) as gen_span:
                plan, costed = self._plan_for_name(
                    rewritten, name, translator, generator, producer_plans,
                    shapes,
                )
                gen_span.set(plans_costed=costed)
            producer_plans[name] = plan
            plans_costed += costed

        answer_rules = rewritten.producers_of(rewritten.answer)
        answer_parts: List[SPJNode] = []
        for answer_rule in answer_rules:
            answer_parts.extend(_spj_parts(answer_rule.node))
        if not answer_parts:
            raise OptimizationError("no predicate node produces the answer")
        part_plans: List[PlanNode] = []
        with self._tracer.span(
            "generatePT", node=rewritten.answer
        ) as gen_span:
            answer_costed = 0
            for answer_node in answer_parts:
                translated = self._translate(translator, answer_node)
                sources = self._sources_for(translated, producer_plans)
                generated = generator.generate(translated, sources)
                part_plans.append(generated.plan)
                answer_costed += generated.candidates_considered
            gen_span.set(plans_costed=answer_costed)
        plans_costed += answer_costed
        answer_plan = part_plans[0]
        for part_plan in part_plans[1:]:
            answer_plan = UnionOp(answer_plan, part_plan)

        plan, cost, candidates, extra_costed = self._transform_pt(answer_plan)
        plans_costed += extra_costed
        if self.config.validate_plans:
            validate_plan(plan, self.physical)
        elapsed = time.perf_counter() - started
        stats = getattr(self._strategy, "last_stats", None)
        return OptimizationResult(
            plan,
            cost,
            candidates,
            plans_costed,
            trace,
            elapsed,
            stats.to_dict() if stats is not None else None,
        )

    def _translate(self, translator: Translator, part: SPJNode) -> TranslatedNode:
        """translate() one predicate node, tracing each arc's mapping."""
        translated = translator.translate_node(part)
        tracer = self._tracer
        if tracer.enabled:
            for arc in translated.arcs:
                tracer.event(
                    "translate.arc",
                    arc=arc.name,
                    entity=arc.entity,
                    var=arc.root_var,
                )
        return translated

    # -- produced names ------------------------------------------------------------

    def _produced_shapes(
        self, graph: QueryGraph
    ) -> Dict[str, Dict[str, Optional[str]]]:
        catalog = self.physical.catalog
        if catalog is None:
            raise OptimizationError("optimization requires a catalog")
        shapes: Dict[str, Dict[str, Optional[str]]] = {}
        produced = set(graph.produced_names())
        for name in graph.stratification_order():
            rules = graph.producers_of(name)
            if not rules:
                continue
            parts = _spj_parts(rules[0].node)
            first = parts[0]
            arc_classes: Dict[str, Optional[str]] = {}
            for arc in first.inputs:
                for binding in arc.tree.bindings():
                    if binding.path:
                        continue
                    if arc.name in shapes or arc.name in produced:
                        # Views and (self-)recursive inputs have tuple
                        # shape; field classes resolve via `shapes`.
                        arc_classes[binding.variable] = None
                    else:
                        info = self.physical.primary_entity(arc.name)
                        arc_classes[binding.variable] = info.conceptual_name
            shapes[name] = produced_shape(
                first.output, catalog, arc_classes, shapes
            )
        return shapes

    def _plan_for_name(
        self,
        graph: QueryGraph,
        name: str,
        translator: Translator,
        generator: SPJGenerator,
        producer_plans: Dict[str, PlanNode],
        shapes: Dict[str, Dict[str, Optional[str]]],
    ) -> Tuple[PlanNode, int]:
        rules = graph.producers_of(name)
        if len(rules) != 1:
            raise OptimizationError(
                f"{name!r} has {len(rules)} rules after rewriting"
            )
        node = rules[0].node
        if isinstance(node, FixNode):
            return self._plan_for_fix(
                graph, name, node, translator, generator, producer_plans
            )
        if graph.is_recursive_name(name):
            # Recursive but not recognized as fixpoint recursion:
            # surface the precise reason (non-linear, no base part...).
            analyze_recursion(graph, name)  # raises QueryModelError
            raise OptimizationError(
                f"{name!r} is recursive but not computable as a fixpoint"
            )
        parts = _spj_parts(node)
        costed = 0
        part_plans: List[PlanNode] = []
        for part in parts:
            translated = self._translate(translator, part)
            sources = self._sources_for(translated, producer_plans)
            generated = generator.generate(translated, sources)
            part_plans.append(generated.plan)
            costed += generated.candidates_considered
        if len(part_plans) == 1:
            body = part_plans[0]
        else:
            body = part_plans[0]
            for part_plan in part_plans[1:]:
                body = UnionOp(body, part_plan)
        out_var = translator.fresh_var(name[:3].lower())
        return Materialize(name, body, out_var), costed

    def _plan_for_fix(
        self,
        graph: QueryGraph,
        name: str,
        node: FixNode,
        translator: Translator,
        generator: SPJGenerator,
        producer_plans: Dict[str, PlanNode],
    ) -> Tuple[PlanNode, int]:
        info = analyze_recursion(graph, name)
        if info is None:
            raise OptimizationError(f"Fix({name}) is not recursive")
        costed = 0
        base_plans: List[PlanNode] = []
        for part in info.base_parts:
            translated = self._translate(translator, part)
            sources = self._sources_for(translated, producer_plans)
            generated = generator.generate(translated, sources)
            base_plans.append(generated.plan)
            costed += generated.candidates_considered
        # Estimate the base output size to cost the recursive parts'
        # delta input.
        base_tuples = 0.0
        for base_plan in base_plans:
            base_tuples += self.cost_model.estimator.estimate(
                base_plan
            ).tuples
        shape = TupleShape(dict(self._shape_fields(graph, name)))
        delta_env = {name: (max(base_tuples, 1.0), shape)}

        recursive_plans: List[PlanNode] = []
        for part, rec_var in zip(info.recursive_parts, info.recursive_variables):
            translated = self._translate(translator, part)
            sources = self._sources_for(
                translated, producer_plans, rec_name=name
            )
            generated = generator.generate(
                translated, sources, delta_env=delta_env
            )
            recursive_plans.append(generated.plan)
            costed += generated.candidates_considered
        body: PlanNode = base_plans[0]
        for plan in base_plans[1:] + recursive_plans:
            body = UnionOp(body, plan)
        entity_hint, attribute_hint = self._recursion_hint(info)
        out_var = translator.fresh_var(name[:3].lower())
        fix = Fix(
            name,
            body,
            out_var,
            entity_hint,
            attribute_hint,
            set(info.invariant_fields),
        )
        return fix, costed

    def _shape_fields(
        self, graph: QueryGraph, name: str
    ) -> Dict[str, Optional[str]]:
        shapes = self._produced_shapes(graph)
        return shapes.get(name, {})

    def _recursion_hint(
        self, info: RecursionInfo
    ) -> Tuple[Optional[str], Optional[str]]:
        """The stored attribute the recursion advances along.

        Heuristic: in a recursive part, an equality between a field of
        the recursive input and a path ``x.a`` on a base-class arc
        means the closure chases ``a`` chains of that class."""
        for part, rec_var in zip(info.recursive_parts, info.recursive_variables):
            for conjunct in conjuncts(part.predicate):
                if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                    continue
                for this, other in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    if not (
                        isinstance(this, PathRef) and this.var == rec_var
                    ):
                        continue
                    if not (
                        isinstance(other, PathRef) and len(other.attrs) == 1
                    ):
                        continue
                    try:
                        arc = part.binding_arc(other.var)
                    except Exception:
                        continue
                    if arc.name == info.name:
                        continue
                    try:
                        entity = self.physical.primary_entity(arc.name).name
                    except Exception:
                        continue
                    return entity, other.attrs[0]
        return None, None

    def _sources_for(
        self,
        translated: TranslatedNode,
        producer_plans: Dict[str, PlanNode],
        rec_name: Optional[str] = None,
    ) -> List[PlanNode]:
        sources: List[PlanNode] = []
        for arc in translated.arcs:
            if rec_name is not None and arc.name == rec_name:
                sources.append(RecLeaf(rec_name, arc.root_var))
            elif arc.name in producer_plans:
                sources.append(
                    _rebind(producer_plans[arc.name], arc.root_var)
                )
            else:
                if arc.entity is None:
                    raise OptimizationError(
                        f"no plan and no extent for {arc.name!r}"
                    )
                sources.append(EntityLeaf(arc.entity, arc.root_var))
        return sources

    # -- transformPT -------------------------------------------------------------------

    def _transform_pt(
        self, plan: PlanNode
    ) -> Tuple[PlanNode, float, List[Tuple[str, float]], int]:
        policy = self.config.push_policy
        tracer = self._tracer
        if (
            policy == "cost"
            and self.config.reoptimize
            and self._strategy.self_contained
        ):
            return self._transform_self_contained(plan)
        costed = 0
        with tracer.span("transformPT", policy=policy) as transform_span:
            candidates = transform_candidates(plan)
            if policy == "never":
                candidates = [candidates[0]]
            elif policy == "always":
                # The deductive heuristic: take the most-pushed candidate
                # (the last fixpoint of filter applications), ignoring cost.
                candidates = [candidates[-1]]
            scored: List[Tuple[str, PlanNode, float]] = []
            for description, candidate in candidates:
                if self.config.reoptimize and policy == "cost":
                    result = self._strategy.search(
                        candidate,
                        lambda p: self.cost_model.cost(p),
                        self.physical,
                        tracer=tracer,
                    )
                    costed += result.plans_costed
                    scored.append((description, result.plan, result.cost))
                else:
                    cost = self.cost_model.cost(candidate)
                    costed += 1
                    scored.append((description, candidate, cost))
                if tracer.enabled:
                    tracer.event(
                        "transformPT.candidate",
                        description=description,
                        cost=scored[-1][2],
                    )
            scored.sort(key=lambda item: item[2])
            best_description, best_plan, best_cost = scored[0]
            if tracer.enabled:
                no_push_cost = next(
                    (c for d, _p, c in scored if d == "original"), None
                )
                push_cost = min(
                    (c for d, _p, c in scored if d != "original"),
                    default=None,
                )
                if no_push_cost is not None and push_cost is not None:
                    # The paper's central decision, made explicit: the
                    # costed no-push plan against the best pushed one.
                    tracer.event(
                        "transformPT.push_comparison",
                        no_push_cost=no_push_cost,
                        push_cost=push_cost,
                        chosen=best_description,
                        chose_push=best_description != "original",
                    )
            transform_span.set(
                chosen=best_description,
                cost=best_cost,
                candidates=len(scored),
                plans_costed=costed,
            )
        summary = [(description, cost) for description, _p, cost in scored]
        return best_plan, best_cost, summary, costed

    def _transform_self_contained(
        self, plan: PlanNode
    ) -> Tuple[PlanNode, float, List[Tuple[str, float]], int]:
        """transformPT for self-contained strategies (``enum``).

        Push-filter is one of the strategy's own moves, so pre-seeding
        it with every ``transform_candidates`` push would enumerate the
        same space once per candidate; one search from the untouched
        plan covers all push positions."""
        tracer = self._tracer
        with tracer.span(
            "transformPT", policy="cost", mode="self-contained"
        ) as transform_span:
            start_cost = self.cost_model.cost(plan)
            result = self._strategy.search(
                plan,
                lambda p: self.cost_model.cost(p),
                self.physical,
                tracer=tracer,
            )
            costed = result.plans_costed
            description = "enumerated" if result.moves_taken else "original"
            if tracer.enabled:
                tracer.event(
                    "transformPT.candidate",
                    description=description,
                    cost=result.cost,
                )
                tracer.event(
                    "transformPT.push_comparison",
                    no_push_cost=start_cost,
                    push_cost=result.cost,
                    chosen=description,
                    chose_push=any(
                        isinstance(inner, Sel)
                        for node in result.plan.walk()
                        if isinstance(node, Fix)
                        for inner in node.body.walk()
                    ),
                )
            attrs = dict(
                chosen=description,
                cost=result.cost,
                candidates=1,
                plans_costed=costed,
            )
            stats = getattr(self._strategy, "last_stats", None)
            if stats is not None:
                attrs.update(stats.to_dict())
            transform_span.set(**attrs)
        summary = [("original", start_cost)]
        if description != "original":
            summary.append((description, result.cost))
        return result.plan, result.cost, summary, costed


def _spj_parts(node) -> List[SPJNode]:
    if isinstance(node, SPJNode):
        return [node]
    if isinstance(node, UnionNode):
        parts: List[SPJNode] = []
        for part in node.parts:
            parts.extend(_spj_parts(part))
        return parts
    if isinstance(node, FixNode):
        return _spj_parts(node.body)
    raise OptimizationError(f"unexpected node {node!r}")


def _rebind(plan: PlanNode, var: str) -> PlanNode:
    """Rebind a producer plan's output variable to a consumer's root
    variable (Fix and Materialize expose a single out_var)."""
    if isinstance(plan, Fix):
        return Fix(
            plan.name,
            plan.body,
            var,
            plan.recursion_entity,
            plan.recursion_attribute,
            set(plan.invariant_fields),
        )
    if isinstance(plan, Materialize):
        return Materialize(plan.name, plan.child, var)
    raise OptimizationError(
        f"cannot rebind producer plan rooted at {plan.label()}"
    )
