"""Query graphs (Section 2.2).

A query graph is a set ``Q = {(Name <- p)}`` of *rules*: each rule
stores the output of a predicate node ``p`` into a name node ``Name``.
A predicate node ``SPJ(In, pred, outproj)`` has incoming arcs (name
node + tree label), one Boolean predicate, and an output projection.

After the ``rewrite`` optimization step, a rule's right-hand side may
also be a :class:`UnionNode` or :class:`FixNode` — those operators are
not explicit in the original graph (Section 4.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import QueryModelError
from repro.querygraph.predicates import (
    Expr,
    PathRef,
    Predicate,
    TruePredicate,
)
from repro.querygraph.tree_labels import TreeLabel

__all__ = [
    "Arc",
    "OutputField",
    "OutputSpec",
    "SPJNode",
    "UnionNode",
    "FixNode",
    "GraphNode",
    "Rule",
    "QueryGraph",
]


class Arc:
    """An incoming arc of a predicate node: ``(Name, tree)``."""

    __slots__ = ("name", "tree")

    def __init__(self, name: str, tree: TreeLabel) -> None:
        self.name = name
        self.tree = tree

    def variables(self) -> List[str]:
        return self.tree.variables()

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"({self.name}, {self.tree!r})"


class OutputField:
    """One field of an output projection: ``name: expr``."""

    __slots__ = ("name", "expr")

    def __init__(self, name: str, expr: Expr) -> None:
        self.name = name
        self.expr = expr

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{self.name}: {self.expr!r}"


class OutputSpec:
    """The output projection of a predicate node (the outgoing-arc tree).

    We represent the outgoing arc's tree label in executable form: a
    list of named fields computed from the incoming arcs' variables.
    """

    __slots__ = ("fields",)

    def __init__(self, fields: Sequence[OutputField]) -> None:
        names = [field.name for field in fields]
        if len(set(names)) != len(names):
            raise QueryModelError(f"duplicate output fields in {names}")
        self.fields: Tuple[OutputField, ...] = tuple(fields)

    @classmethod
    def of(cls, **fields: Expr) -> "OutputSpec":
        return cls([OutputField(name, expr) for name, expr in fields.items()])

    def field(self, name: str) -> OutputField:
        for field in self.fields:
            if field.name == name:
                return field
        raise QueryModelError(f"no output field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(field.name == name for field in self.fields)

    def field_names(self) -> List[str]:
        return [field.name for field in self.fields]

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for field in self.fields:
            result |= field.expr.variables()
        return result

    def __repr__(self) -> str:  # pragma: no cover - convenience
        inner = ", ".join(repr(field) for field in self.fields)
        return f"[{inner}]"


class SPJNode:
    """A predicate node: ``SPJ(In, pred, outproj)``."""

    __slots__ = ("inputs", "predicate", "output")

    def __init__(
        self,
        inputs: Sequence[Arc],
        predicate: Predicate,
        output: OutputSpec,
    ) -> None:
        if not inputs:
            raise QueryModelError("a predicate node needs at least one input arc")
        self.inputs: Tuple[Arc, ...] = tuple(inputs)
        self.predicate = predicate
        self.output = output
        self._check_variables()

    def _check_variables(self) -> None:
        bound: Set[str] = set()
        for arc in self.inputs:
            for variable in arc.variables():
                if variable in bound:
                    raise QueryModelError(
                        f"variable {variable!r} bound by two arcs"
                    )
                bound.add(variable)
        free = (self.predicate.variables() | self.output.variables()) - bound
        if free:
            raise QueryModelError(
                f"unbound variables in predicate node: {sorted(free)}"
            )

    def input_names(self) -> List[str]:
        return [arc.name for arc in self.inputs]

    def arc_for(self, name: str) -> Arc:
        for arc in self.inputs:
            if arc.name == name:
                return arc
        raise QueryModelError(f"no input arc on name node {name!r}")

    def arcs_on(self, name: str) -> List[Arc]:
        return [arc for arc in self.inputs if arc.name == name]

    def binding_arc(self, variable: str) -> Arc:
        for arc in self.inputs:
            if variable in arc.variables():
                return arc
        raise QueryModelError(f"variable {variable!r} bound by no arc")

    def referenced_names(self) -> Set[str]:
        return {arc.name for arc in self.inputs}

    def __repr__(self) -> str:  # pragma: no cover - convenience
        arcs = ", ".join(repr(arc) for arc in self.inputs)
        return f"SPJ({{{arcs}}}, {self.predicate!r}, {self.output!r})"


class UnionNode:
    """Explicit union of predicate nodes feeding the same name node.

    Generated by the ``union`` rewriting action (Section 4.2)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence["GraphNode"]) -> None:
        if len(parts) < 2:
            raise QueryModelError("Union requires at least two parts")
        self.parts: Tuple[GraphNode, ...] = tuple(parts)

    def referenced_names(self) -> Set[str]:
        result: Set[str] = set()
        for part in self.parts:
            result |= part.referenced_names()
        return result

    def __repr__(self) -> str:  # pragma: no cover - convenience
        inner = ", ".join(repr(part) for part in self.parts)
        return f"Union({inner})"


class FixNode:
    """Explicit fixpoint: ``Fix(Name, p)``.

    Generated by the ``fixpoint`` rewriting action when
    ``fixpointRecursion(Name)`` holds (Section 4.2)."""

    __slots__ = ("name", "body")

    def __init__(self, name: str, body: "GraphNode") -> None:
        self.name = name
        self.body = body

    def referenced_names(self) -> Set[str]:
        return self.body.referenced_names() - {self.name}

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Fix({self.name}, {self.body!r})"


GraphNode = Union[SPJNode, UnionNode, FixNode]


class Rule:
    """One rule ``Name <- p`` of a query graph."""

    __slots__ = ("name", "node")

    def __init__(self, name: str, node: GraphNode) -> None:
        self.name = name
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{self.name} <- {self.node!r}"


class QueryGraph:
    """A query graph ``Q = {(Name <- p)_i}`` with a distinguished answer.

    ``base_names`` (derived) are name nodes with no producing rule —
    they refer to stored classes/relations of the conceptual schema.
    """

    def __init__(self, rules: Sequence[Rule], answer: str = "Answer") -> None:
        if not rules:
            raise QueryModelError("a query graph needs at least one rule")
        self.rules: List[Rule] = list(rules)
        self.answer = answer
        if not self.producers_of(answer):
            raise QueryModelError(
                f"no rule produces the answer name node {answer!r}"
            )

    # -- structure --------------------------------------------------------------

    def producers_of(self, name: str) -> List[Rule]:
        return [rule for rule in self.rules if rule.name == name]

    def produced_names(self) -> List[str]:
        seen: Set[str] = set()
        ordered: List[str] = []
        for rule in self.rules:
            if rule.name not in seen:
                seen.add(rule.name)
                ordered.append(rule.name)
        return ordered

    def referenced_names(self) -> Set[str]:
        result: Set[str] = set()
        for rule in self.rules:
            result |= rule.node.referenced_names()
        return result

    def base_names(self) -> Set[str]:
        """Name nodes with no producing rule: stored extensions."""
        return self.referenced_names() - set(self.produced_names())

    def replace_rules(self, name: str, replacement: Rule) -> None:
        """Replace all rules producing ``name`` by one rule (used by the
        ``union`` action)."""
        self.rules = [rule for rule in self.rules if rule.name != name]
        self.rules.append(replacement)

    def replace_rule(self, old: Rule, new: Rule) -> None:
        index = self.rules.index(old)
        self.rules[index] = new

    # -- dependency analysis -------------------------------------------------------

    def depends_on(self, name: str) -> Set[str]:
        """All names reachable from ``name`` through producing rules."""
        reached: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for rule in self.producers_of(current):
                for referenced in rule.node.referenced_names():
                    if referenced not in reached:
                        reached.add(referenced)
                        frontier.append(referenced)
        return reached

    def is_recursive_name(self, name: str) -> bool:
        """True when ``name`` depends (transitively) on itself."""
        return name in self.depends_on(name)

    def recursive_names(self) -> List[str]:
        return [n for n in self.produced_names() if self.is_recursive_name(n)]

    def stratification_order(self) -> List[str]:
        """Produced names in a bottom-up evaluation order.

        Names that only depend on base names come first; mutually
        recursive names form their own stratum and appear together (in
        first-occurrence order).  Raises on nothing — recursion is
        allowed; only the relative order of *distinct* strata matters.
        """
        produced = self.produced_names()
        order: List[str] = []
        placed: Set[str] = set()
        remaining = list(produced)
        while remaining:
            progressed = False
            for name in list(remaining):
                dependencies = {
                    d
                    for d in self.depends_on(name)
                    if d in produced and d != name and name not in self.depends_on(d)
                }
                if dependencies <= placed:
                    order.append(name)
                    placed.add(name)
                    remaining.remove(name)
                    progressed = True
            if not progressed:
                # Mutually recursive residue: emit in declaration order.
                order.extend(remaining)
                break
        return order

    def __repr__(self) -> str:  # pragma: no cover - convenience
        inner = "; ".join(repr(rule) for rule in self.rules)
        return f"QueryGraph[{self.answer}]({inner})"
