"""Convenience constructors for building query graphs programmatically.

The query-language front-end (:mod:`repro.lang`) compiles text to query
graphs; this module is the equivalent surface for Python callers (and
for the test suite), mirroring the paper's notation closely::

    q = query(
        rule("Answer", spj(
            [arc("Composer", n="name", t="works.*.title",
                 i1="works.*.instruments.*.name",
                 i2="works.*.instruments#2.*.name")],
            where=and_(eq(var("n"), const("Bach")),
                       eq(var("i1"), const("harpsichord")),
                       eq(var("i2"), const("flute"))),
            select=out(title=var("t")),
        )),
    )
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.querygraph.graph import (
    Arc,
    FixNode,
    GraphNode,
    OutputField,
    OutputSpec,
    QueryGraph,
    Rule,
    SPJNode,
    UnionNode,
)
from repro.querygraph.predicates import (
    And,
    Arith,
    Comparison,
    Const,
    Expr,
    FunctionApp,
    Not,
    Or,
    PathRef,
    Predicate,
    TruePredicate,
)
from repro.querygraph.tree_labels import TreeLabel

__all__ = [
    "arc",
    "spj",
    "union",
    "fix",
    "rule",
    "query",
    "out",
    "var",
    "path",
    "const",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "and_",
    "or_",
    "not_",
    "true",
    "fn",
    "add",
    "sub",
]


# -- graph construction ------------------------------------------------------

def arc(name: str, **bindings: str) -> Arc:
    """An incoming arc on name node ``name``.

    Keyword arguments map variables to dotted binding paths inside the
    tree label; ``v=""`` (or ``"."``) binds ``v`` at the root.  See
    :meth:`TreeLabel.from_bindings` for the path syntax (``*`` descends
    into collection elements, ``#n`` forces a separate branch).
    """
    return Arc(name, TreeLabel.from_bindings(bindings))


def spj(
    inputs: Sequence[Arc],
    where: Optional[Predicate] = None,
    select: Optional[OutputSpec] = None,
) -> SPJNode:
    """A predicate node. ``where`` defaults to true; ``select`` defaults
    to projecting every root variable of the inputs."""
    predicate = where if where is not None else TruePredicate()
    if select is None:
        fields = []
        for input_arc in inputs:
            for binding in input_arc.tree.bindings():
                if not binding.path:
                    fields.append(
                        OutputField(binding.variable, PathRef(binding.variable))
                    )
        select = OutputSpec(fields)
    return SPJNode(inputs, predicate, select)


def union(*parts: GraphNode) -> UnionNode:
    return UnionNode(parts)


def fix(name: str, body: GraphNode) -> FixNode:
    return FixNode(name, body)


def rule(name: str, node: GraphNode) -> Rule:
    return Rule(name, node)


def query(*rules: Rule, answer: str = "Answer") -> QueryGraph:
    return QueryGraph(list(rules), answer)


def out(**fields: Expr) -> OutputSpec:
    return OutputSpec.of(**fields)


# -- expressions ---------------------------------------------------------------

def var(name: str) -> PathRef:
    """The value of a variable."""
    return PathRef(name)


def path(variable: str, *attrs: str) -> PathRef:
    """A path rooted at a variable: ``path("x", "works", "title")``."""
    return PathRef(variable, attrs)


def const(value: object) -> Const:
    return Const(value)


def fn(name: str, *args: Expr, callable=None, eval_weight: float = 1.0) -> FunctionApp:
    return FunctionApp(name, args, callable, eval_weight)


def add(left: Expr, right: Expr) -> Arith:
    return Arith("+", left, right)


def sub(left: Expr, right: Expr) -> Arith:
    return Arith("-", left, right)


# -- predicates -------------------------------------------------------------------

def eq(left: Expr, right: Expr) -> Comparison:
    return Comparison("=", left, right)


def ne(left: Expr, right: Expr) -> Comparison:
    return Comparison("!=", left, right)


def lt(left: Expr, right: Expr) -> Comparison:
    return Comparison("<", left, right)


def le(left: Expr, right: Expr) -> Comparison:
    return Comparison("<=", left, right)


def gt(left: Expr, right: Expr) -> Comparison:
    return Comparison(">", left, right)


def ge(left: Expr, right: Expr) -> Comparison:
    return Comparison(">=", left, right)


def and_(*parts: Predicate) -> Predicate:
    if not parts:
        return TruePredicate()
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def or_(*parts: Predicate) -> Or:
    return Or(*parts)


def not_(part: Predicate) -> Not:
    return Not(part)


def true() -> TruePredicate:
    return TruePredicate()
