"""Tree labels: the tree-shaped adornments on query-graph arcs.

Section 2.2: "The incoming arcs are labelled by trees which indicate,
by means of variables, the subobjects needed in the predicate or in the
outgoing arc of a predicate node. [...]  These trees can be viewed as
tree-shaped adornments [BR86] that depict the bindings of the input
objects.  In the relational model, adornments are strings [...] but in
an object-oriented model they are trees."

A tree label is denoted by a set ``{(Att, tree, variable)}`` of its
children: ``Att`` is None for set/list element nodes, ``variable`` is
None when no variable binds at the node, and an atomic node has no
children.  Two branches may repeat the same attribute with different
variables — that is how Figure 2 binds ``i1`` and ``i2`` to two
(possibly different) instruments of the *same* work, and it is the
paper's claimed advantage over string adornments ("the ability of using
several variables along the same path").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import QueryModelError

__all__ = ["TreeLabel", "VariableBinding"]


class VariableBinding:
    """Where a variable binds inside a tree label.

    ``path`` is the sequence of attribute names from the arc's name
    node down to the binding node (collection element hops contribute
    their owning attribute once; the element hop itself adds nothing
    to the dotted path).  ``through_collections`` counts how many
    set/list element hops the path crosses — 0 means the binding is
    single-valued per input instance.
    """

    __slots__ = ("variable", "path", "through_collections")

    def __init__(
        self, variable: str, path: Tuple[str, ...], through_collections: int
    ) -> None:
        self.variable = variable
        self.path = path
        self.through_collections = through_collections

    def dotted(self) -> str:
        return ".".join(self.path) if self.path else "<root>"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{self.variable}@{self.dotted()}"


class TreeLabel:
    """One node of a tree label.

    ``children`` is a list of ``(attribute, subtree)`` pairs where
    ``attribute`` is None for a collection-element child.  ``variable``
    optionally names the value at this node.  ``is_element`` marks the
    node as a set/list element node (drawn circled-in-constructor in
    the paper's figures).
    """

    __slots__ = ("variable", "children", "is_element")

    def __init__(
        self,
        variable: Optional[str] = None,
        children: Optional[Sequence[Tuple[Optional[str], "TreeLabel"]]] = None,
        is_element: bool = False,
    ) -> None:
        self.variable = variable
        self.children: List[Tuple[Optional[str], TreeLabel]] = (
            list(children) if children else []
        )
        self.is_element = is_element

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_bindings(cls, bindings: Dict[str, str]) -> "TreeLabel":
        """Build a tree label from ``{variable: dotted_path}``.

        A ``*`` component denotes descending into a collection's
        elements: ``works.*.title`` binds inside each work.  Repeated
        paths get separate branches when they bind different variables
        at the *same* collection attribute — callers wanting shared
        prefixes (the Figure 2 factorization) get them automatically up
        to the last common component; a trailing ``#n`` suffix on a
        component forces a distinct branch (``instruments#2``).

        An empty path or ``"."`` binds the variable at the root.
        """
        root = cls()
        for variable, dotted in bindings.items():
            if dotted in ("", "."):
                if root.variable is not None and root.variable != variable:
                    raise QueryModelError(
                        "two distinct variables at the tree-label root"
                    )
                root.variable = variable
                continue
            root._add_path(dotted.split("."), variable)
        return root

    def _add_path(self, components: List[str], variable: str) -> None:
        node = self
        for position, raw in enumerate(components):
            if raw == "*":
                node = node._descend_element()
                continue
            name = raw.split("#")[0]
            forced_branch = "#" in raw
            node = node._descend_attribute(name, force_new=forced_branch)
        if node.variable is not None and node.variable != variable:
            raise QueryModelError(
                f"conflicting variables {node.variable!r} and {variable!r} "
                f"at path {'.'.join(components)!r}"
            )
        node.variable = variable

    def _descend_attribute(self, name: str, force_new: bool = False) -> "TreeLabel":
        if not force_new:
            for child_name, child in self.children:
                if child_name == name:
                    return child
        child = TreeLabel()
        self.children.append((name, child))
        return child

    def _descend_element(self) -> "TreeLabel":
        for child_name, child in self.children:
            if child_name is None:
                return child
        child = TreeLabel(is_element=True)
        self.children.append((None, child))
        return child

    # -- inspection -------------------------------------------------------------

    def is_atomic(self) -> bool:
        return not self.children

    def bindings(self) -> List[VariableBinding]:
        """All variable bindings in the subtree, with their paths."""
        result: List[VariableBinding] = []
        self._collect(tuple(), 0, result)
        return result

    def _collect(
        self,
        path: Tuple[str, ...],
        collections: int,
        out: List[VariableBinding],
    ) -> None:
        if self.variable is not None:
            out.append(VariableBinding(self.variable, path, collections))
        for name, child in self.children:
            if name is None:
                child._collect(path, collections + 1, out)
            else:
                child._collect(path + (name,), collections, out)

    def variables(self) -> List[str]:
        return [binding.variable for binding in self.bindings()]

    def attribute_paths(self) -> List[Tuple[str, ...]]:
        """Distinct attribute paths descending from the root."""
        paths: List[Tuple[str, ...]] = []

        def walk(node: "TreeLabel", path: Tuple[str, ...]) -> None:
            if node.is_atomic() and path:
                paths.append(path)
            for name, child in node.children:
                walk(child, path + ((name,) if name is not None else ()))

        walk(self, tuple())
        # De-duplicate while preserving order (two branches on the same
        # attribute yield the same dotted path).
        seen = set()
        unique: List[Tuple[str, ...]] = []
        for path in paths:
            if path not in seen:
                seen.add(path)
                unique.append(path)
        return unique

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth() for _name, child in self.children)

    def find(self, variable: str) -> Optional[VariableBinding]:
        for binding in self.bindings():
            if binding.variable == variable:
                return binding
        return None

    # -- structural equality --------------------------------------------------------

    def _key(self) -> object:
        return (
            self.variable,
            self.is_element,
            tuple((name, child._key()) for name, child in self.children),
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TreeLabel) and other._key() == self._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        parts: List[str] = []
        if self.variable is not None:
            parts.append(f"?{self.variable}")
        for name, child in self.children:
            label = name if name is not None else "*"
            parts.append(f"{label}:{child!r}")
        inner = ", ".join(parts)
        open_, close = ("{", "}") if self.is_element else ("(", ")")
        return f"{open_}{inner}{close}"
