"""Query model (Section 2 of the paper): query graphs with tree-shaped
adornments, Boolean predicates over path expressions, recursive views
and recursion analysis."""

from repro.querygraph.display import render_graph, render_node
from repro.querygraph.graph import (
    Arc,
    FixNode,
    GraphNode,
    OutputField,
    OutputSpec,
    QueryGraph,
    Rule,
    SPJNode,
    UnionNode,
)
from repro.querygraph.predicates import (
    And,
    Arith,
    Comparison,
    Const,
    Expr,
    FunctionApp,
    Not,
    Or,
    PathRef,
    Predicate,
    TruePredicate,
    conjoin,
    conjuncts,
)
from repro.querygraph.tree_labels import TreeLabel, VariableBinding
from repro.querygraph.views import (
    FieldProvenance,
    RecursionInfo,
    analyze_recursion,
    can_push_paths,
    is_fixpoint_recursion,
)

__all__ = [
    "render_graph",
    "render_node",
    "Arc",
    "FixNode",
    "GraphNode",
    "OutputField",
    "OutputSpec",
    "QueryGraph",
    "Rule",
    "SPJNode",
    "UnionNode",
    "And",
    "Arith",
    "Comparison",
    "Const",
    "Expr",
    "FunctionApp",
    "Not",
    "Or",
    "PathRef",
    "Predicate",
    "TruePredicate",
    "conjoin",
    "conjuncts",
    "TreeLabel",
    "VariableBinding",
    "FieldProvenance",
    "RecursionInfo",
    "analyze_recursion",
    "can_push_paths",
    "is_fixpoint_recursion",
]
