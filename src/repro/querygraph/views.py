"""Recursion analysis for query graphs (Sections 2.3, 4.2, 4.5).

Provides:

* ``fixpointRecursion(Name)`` — the constraint of the ``fixpoint``
  rewriting action: the rules producing ``Name`` must be computable as
  the fixpoint of an equation referencing ``Name`` (linear recursion
  with at least one non-recursive base part);
* provenance analysis of the recursive rule's output projection,
  classifying each output field as **invariant** (copied unchanged from
  the recursive input, like ``master``), **rebound** (taken from a
  different input each iteration, like ``disciple``) or **computed**
  (produced by a function, like ``gen``);
* ``canPush`` — the constraint of the ``filter`` transformation
  (Section 4.5, after [KL86]): a selection/join can be pushed through
  the recursion iff every path it applies to the recursion's output is
  rooted at an invariant field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryModelError
from repro.querygraph.graph import FixNode, QueryGraph, Rule, SPJNode, UnionNode
from repro.querygraph.predicates import (
    Expr,
    FunctionApp,
    PathRef,
    Predicate,
)

__all__ = [
    "FieldProvenance",
    "RecursionInfo",
    "analyze_recursion",
    "is_fixpoint_recursion",
    "can_push_paths",
]

INVARIANT = "invariant"
REBOUND = "rebound"
COMPUTED = "computed"


@dataclass
class FieldProvenance:
    """How one output field of a recursive rule is produced.

    ``kind`` is one of ``invariant``/``rebound``/``computed``.  For an
    invariant field, the recursive rule emits exactly the same-named
    field of the recursive input, so a predicate on (a path rooted at)
    the field commutes with every iteration of the fixpoint.
    """

    name: str
    kind: str


@dataclass
class RecursionInfo:
    """The result of analyzing a recursively defined name node."""

    name: str
    base_parts: List[SPJNode]
    recursive_parts: List[SPJNode]
    # Per recursive part, the variable bound to the recursive input arc.
    recursive_variables: List[str]
    provenance: Dict[str, FieldProvenance]

    @property
    def invariant_fields(self) -> Set[str]:
        return {
            name
            for name, prov in self.provenance.items()
            if prov.kind == INVARIANT
        }

    def is_linear(self) -> bool:
        """Each recursive part references the recursion exactly once."""
        return all(
            len(part.arcs_on(self.name)) == 1 for part in self.recursive_parts
        )


def _spj_parts(rule_node: object) -> List[SPJNode]:
    """Flatten a rule body into its SPJ parts (through Union nodes)."""
    if isinstance(rule_node, SPJNode):
        return [rule_node]
    if isinstance(rule_node, UnionNode):
        parts: List[SPJNode] = []
        for part in rule_node.parts:
            parts.extend(_spj_parts(part))
        return parts
    if isinstance(rule_node, FixNode):
        return _spj_parts(rule_node.body)
    raise QueryModelError(f"unexpected rule body {rule_node!r}")


def analyze_recursion(graph: QueryGraph, name: str) -> Optional[RecursionInfo]:
    """Analyze the rules producing ``name``; None when not recursive.

    Raises :class:`QueryModelError` when the recursion is not
    computable as a fixpoint (no base part, or a non-linear part —
    the paper's model, like semi-naive evaluation, assumes linear
    recursion).
    """
    rules = graph.producers_of(name)
    if not rules:
        return None
    parts: List[SPJNode] = []
    for rule in rules:
        parts.extend(_spj_parts(rule.node))
    base_parts = [p for p in parts if name not in p.referenced_names()]
    recursive_parts = [p for p in parts if name in p.referenced_names()]
    if not recursive_parts:
        return None
    if not base_parts:
        raise QueryModelError(
            f"recursive name {name!r} has no non-recursive base part"
        )
    recursive_variables: List[str] = []
    for part in recursive_parts:
        arcs = part.arcs_on(name)
        if len(arcs) != 1:
            raise QueryModelError(
                f"non-linear recursion on {name!r}: "
                f"{len(arcs)} recursive input arcs in one part"
            )
        root_vars = [
            binding.variable
            for binding in arcs[0].tree.bindings()
            if not binding.path
        ]
        if len(root_vars) != 1:
            raise QueryModelError(
                f"recursive arc on {name!r} must bind exactly one root "
                f"variable (found {root_vars})"
            )
        recursive_variables.append(root_vars[0])
    provenance = _field_provenance(base_parts, recursive_parts, recursive_variables)
    return RecursionInfo(
        name, base_parts, recursive_parts, recursive_variables, provenance
    )


def _field_provenance(
    base_parts: Sequence[SPJNode],
    recursive_parts: Sequence[SPJNode],
    recursive_variables: Sequence[str],
) -> Dict[str, FieldProvenance]:
    field_names = base_parts[0].output.field_names()
    for part in list(base_parts[1:]) + list(recursive_parts):
        if part.output.field_names() != field_names:
            raise QueryModelError(
                "all parts of a recursive definition must project the "
                f"same fields (got {part.output.field_names()} vs "
                f"{field_names})"
            )
    provenance: Dict[str, FieldProvenance] = {}
    for field_name in field_names:
        kind = INVARIANT
        for part, rec_var in zip(recursive_parts, recursive_variables):
            expr = part.output.field(field_name).expr
            part_kind = _classify(expr, rec_var, field_name)
            kind = _worst(kind, part_kind)
        provenance[field_name] = FieldProvenance(field_name, kind)
    return provenance


def _classify(expr: Expr, rec_var: str, field_name: str) -> str:
    """Classify one output expression of a recursive part."""
    if isinstance(expr, PathRef):
        if expr.var == rec_var and expr.attrs == (field_name,):
            return INVARIANT
        return REBOUND
    if isinstance(expr, FunctionApp):
        return COMPUTED
    return REBOUND


_SEVERITY = {INVARIANT: 0, REBOUND: 1, COMPUTED: 2}


def _worst(a: str, b: str) -> str:
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


def is_fixpoint_recursion(graph: QueryGraph, name: str) -> bool:
    """The ``fixpointRecursion(Name)`` constraint of Section 4.2."""
    try:
        info = analyze_recursion(graph, name)
    except QueryModelError:
        return False
    return info is not None and info.is_linear()


def can_push_paths(
    paths: Sequence[PathRef],
    fix_output_variables: Set[str],
    invariant_fields: Set[str],
) -> bool:
    """The ``canPush(pred, Rec)`` constraint of the ``filter`` action.

    ``paths`` are the path references of the predicate being pushed;
    ``fix_output_variables`` are the variables bound to the recursion's
    output.  Every path rooted at the recursion must start with an
    invariant field; paths rooted elsewhere (e.g. at a joined class)
    are unconstrained.
    """
    for path in paths:
        if path.var not in fix_output_variables:
            continue
        if not path.attrs:
            # The whole recursive tuple: never pushable, it changes
            # each iteration by construction.
            return False
        if path.attrs[0] not in invariant_fields:
            return False
    return True
