"""Boolean predicates and value expressions for query graphs and plans.

Predicates appear on predicate nodes of query graphs and on ``Sel`` /
``EJ`` nodes of processing trees.  They are Boolean expressions over
*path references* rooted at variables (``x.works.instruments.name``),
constants and function applications (the paper's method calls /
computed attributes, e.g. ``add1gen(i.gen)``).

The optimizer manipulates predicates as conjunct lists: the ``sel`` and
``join`` actions of Section 4.4 "consume" conjuncts one at a time, and
pushability analysis (Section 4.5) inspects the variables and paths a
conjunct references.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidPredicateError

__all__ = [
    "Expr",
    "Const",
    "PathRef",
    "FunctionApp",
    "Arith",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "conjuncts",
    "conjoin",
    "COMPARISON_OPS",
]


# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------

class Expr:
    """Abstract base of value expressions."""

    def variables(self) -> Set[str]:
        raise NotImplementedError

    def paths(self) -> List["PathRef"]:
        """All path references occurring in the expression."""
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, "Expr"]) -> "Expr":
        """Replace variables by expressions (used by provenance analysis)."""
        raise NotImplementedError


class Const(Expr):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def variables(self) -> Set[str]:
        return set()

    def paths(self) -> List["PathRef"]:
        return []

    def substitute(self, mapping: Dict[str, Expr]) -> Expr:
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return repr(self.value)


class PathRef(Expr):
    """A path expression rooted at a variable: ``var.a1.a2...an``.

    An empty attribute tuple denotes the variable itself.
    """

    __slots__ = ("var", "attrs")

    def __init__(self, var: str, attrs: Sequence[str] = ()) -> None:
        self.var = var
        self.attrs: Tuple[str, ...] = tuple(attrs)

    def variables(self) -> Set[str]:
        return {self.var}

    def paths(self) -> List["PathRef"]:
        return [self]

    def substitute(self, mapping: Dict[str, Expr]) -> Expr:
        replacement = mapping.get(self.var)
        if replacement is None:
            return self
        if isinstance(replacement, PathRef):
            return PathRef(replacement.var, replacement.attrs + self.attrs)
        if not self.attrs:
            return replacement
        raise InvalidPredicateError(
            f"cannot apply path .{'.'.join(self.attrs)} to non-path "
            f"substitution for variable {self.var!r}"
        )

    def extend(self, *attrs: str) -> "PathRef":
        return PathRef(self.var, self.attrs + attrs)

    def dotted(self) -> str:
        return ".".join((self.var,) + self.attrs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PathRef)
            and other.var == self.var
            and other.attrs == self.attrs
        )

    def __hash__(self) -> int:
        return hash(("path", self.var, self.attrs))

    def __repr__(self) -> str:
        return self.dotted()


class FunctionApp(Expr):
    """An application of a named function/method to argument expressions.

    ``fn`` optionally carries the Python callable so expressions are
    executable; ``eval_weight`` scales the CPU cost the cost model
    charges per invocation (methods may be expensive — the paper's core
    motivation).
    """

    __slots__ = ("name", "args", "fn", "eval_weight")

    def __init__(
        self,
        name: str,
        args: Sequence[Expr],
        fn: Optional[Callable[..., object]] = None,
        eval_weight: float = 1.0,
    ) -> None:
        self.name = name
        self.args: Tuple[Expr, ...] = tuple(args)
        self.fn = fn
        self.eval_weight = eval_weight

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for arg in self.args:
            result |= arg.variables()
        return result

    def paths(self) -> List[PathRef]:
        result: List[PathRef] = []
        for arg in self.args:
            result.extend(arg.paths())
        return result

    def substitute(self, mapping: Dict[str, Expr]) -> Expr:
        return FunctionApp(
            self.name,
            [arg.substitute(mapping) for arg in self.args],
            self.fn,
            self.eval_weight,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionApp)
            and other.name == self.name
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("fn", self.name, self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.name}({inner})"


_ARITH_FNS: Dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,  # type: ignore[operator]
    "-": lambda a, b: a - b,  # type: ignore[operator]
    "*": lambda a, b: a * b,  # type: ignore[operator]
    "/": lambda a, b: a / b,  # type: ignore[operator]
}


class Arith(FunctionApp):
    """A binary arithmetic expression, e.g. ``i.gen + 1``."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH_FNS:
            raise InvalidPredicateError(f"unknown arithmetic operator {op!r}")
        super().__init__(op, [left, right], _ARITH_FNS[op], eval_weight=0.0)
        self.op = op

    def __repr__(self) -> str:
        return f"({self.args[0]!r} {self.op} {self.args[1]!r})"


# ---------------------------------------------------------------------------
# Boolean predicates
# ---------------------------------------------------------------------------

COMPARISON_OPS: Dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,  # type: ignore[operator]
    "<=": lambda a, b: a <= b,  # type: ignore[operator]
    ">": lambda a, b: a > b,  # type: ignore[operator]
    ">=": lambda a, b: a >= b,  # type: ignore[operator]
}


class Predicate:
    """Abstract base of Boolean predicates."""

    def variables(self) -> Set[str]:
        raise NotImplementedError

    def paths(self) -> List[PathRef]:
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, Expr]) -> "Predicate":
        raise NotImplementedError


class TruePredicate(Predicate):
    """The always-true predicate (an empty conjunction)."""

    def variables(self) -> Set[str]:
        return set()

    def paths(self) -> List[PathRef]:
        return []

    def substitute(self, mapping: Dict[str, Expr]) -> Predicate:
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("true")

    def __repr__(self) -> str:
        return "true"


class Comparison(Predicate):
    """``left op right`` where op is one of ``=,!=,<,<=,>,>=``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op == "==":
            op = "="
        if op not in COMPARISON_OPS:
            raise InvalidPredicateError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def paths(self) -> List[PathRef]:
        return self.left.paths() + self.right.paths()

    def substitute(self, mapping: Dict[str, Expr]) -> Predicate:
        return Comparison(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def is_equality(self) -> bool:
        return self.op == "="

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("cmp", self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


class And(Predicate):
    """Conjunction of two or more predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate) -> None:
        flattened: List[Predicate] = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            elif isinstance(part, TruePredicate):
                continue
            else:
                flattened.append(part)
        if len(flattened) < 1:
            raise InvalidPredicateError("And requires at least one operand")
        self.parts: Tuple[Predicate, ...] = tuple(flattened)

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for part in self.parts:
            result |= part.variables()
        return result

    def paths(self) -> List[PathRef]:
        result: List[PathRef] = []
        for part in self.parts:
            result.extend(part.paths())
        return result

    def substitute(self, mapping: Dict[str, Expr]) -> Predicate:
        return And(*[part.substitute(mapping) for part in self.parts])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and other.parts == self.parts

    def __hash__(self) -> int:
        return hash(("and", self.parts))

    def __repr__(self) -> str:
        return " and ".join(
            f"({part!r})" if isinstance(part, Or) else repr(part)
            for part in self.parts
        )


class Or(Predicate):
    """Disjunction of two or more predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate) -> None:
        flattened: List[Predicate] = []
        for part in parts:
            if isinstance(part, Or):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise InvalidPredicateError("Or requires at least two operands")
        self.parts = tuple(flattened)

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for part in self.parts:
            result |= part.variables()
        return result

    def paths(self) -> List[PathRef]:
        result: List[PathRef] = []
        for part in self.parts:
            result.extend(part.paths())
        return result

    def substitute(self, mapping: Dict[str, Expr]) -> Predicate:
        return Or(*[part.substitute(mapping) for part in self.parts])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and other.parts == self.parts

    def __hash__(self) -> int:
        return hash(("or", self.parts))

    def __repr__(self) -> str:
        return " or ".join(repr(part) for part in self.parts)


class Not(Predicate):
    """Negation."""

    __slots__ = ("part",)

    def __init__(self, part: Predicate) -> None:
        self.part = part

    def variables(self) -> Set[str]:
        return self.part.variables()

    def paths(self) -> List[PathRef]:
        return self.part.paths()

    def substitute(self, mapping: Dict[str, Expr]) -> Predicate:
        return Not(self.part.substitute(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.part == self.part

    def __hash__(self) -> int:
        return hash(("not", self.part))

    def __repr__(self) -> str:
        return f"not ({self.part!r})"


# ---------------------------------------------------------------------------
# Conjunct manipulation (the optimizer's working form)
# ---------------------------------------------------------------------------

def conjuncts(predicate: Predicate) -> List[Predicate]:
    """Split a predicate into its top-level conjuncts.

    ``TruePredicate`` yields the empty list; non-And predicates yield a
    singleton.  The ``sel``/``join`` actions of Section 4.4 consume this
    list element by element.
    """
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, And):
        return list(predicate.parts)
    return [predicate]


def conjoin(parts: Sequence[Predicate]) -> Predicate:
    """Rebuild a predicate from conjuncts (inverse of :func:`conjuncts`)."""
    remaining = [p for p in parts if not isinstance(p, TruePredicate)]
    if not remaining:
        return TruePredicate()
    if len(remaining) == 1:
        return remaining[0]
    return And(*remaining)
