"""Textual rendering of query graphs (the paper's Figures 2 and 3).

``render_graph`` prints each rule as ``Name <- SPJ({arcs}, pred,
output)`` in the paper's set notation, with tree labels in their
bracketed form; ``render_rules`` renders a subset.  Used by the CLI's
``explain`` and handy in tests and notebooks.
"""

from __future__ import annotations

from typing import List

from repro.querygraph.graph import (
    FixNode,
    GraphNode,
    QueryGraph,
    SPJNode,
    UnionNode,
)
from repro.querygraph.tree_labels import TreeLabel

__all__ = ["render_graph", "render_node"]


def render_graph(graph: QueryGraph) -> str:
    """Render a whole query graph, one rule per line group."""
    lines: List[str] = [f"Q[answer={graph.answer}] = {{"]
    for rule in graph.rules:
        rendered = render_node(rule.node, indent="    ")
        lines.append(f"  ({rule.name} <-")
        lines.append(f"{rendered})")
    lines.append("}")
    return "\n".join(lines)


def render_node(node: GraphNode, indent: str = "") -> str:
    """Render one rule body (SPJ / Union / Fix)."""
    if isinstance(node, SPJNode):
        arcs = ", ".join(
            f"({arc.name}, {_render_tree(arc.tree)})" for arc in node.inputs
        )
        return (
            f"{indent}SPJ({{{arcs}}},\n"
            f"{indent}    {node.predicate!r},\n"
            f"{indent}    {node.output!r})"
        )
    if isinstance(node, UnionNode):
        parts = [render_node(part, indent + "  ") for part in node.parts]
        inner = ",\n".join(parts)
        return f"{indent}Union(\n{inner}\n{indent})"
    if isinstance(node, FixNode):
        body = render_node(node.body, indent + "  ")
        return f"{indent}Fix({node.name},\n{body}\n{indent})"
    return f"{indent}{node!r}"


def _render_tree(tree: TreeLabel) -> str:
    return repr(tree)
