"""The schema catalog: a registry of classes and relations.

The catalog owns the conceptual name space.  It resolves attribute and
method lookups through ``isa`` hierarchies, validates ``inverse``
declarations, checks for inheritance cycles, and resolves
dot-separated *path expressions* (``Composer.works.instruments.name``)
to the sequence of classes they traverse — the backbone of the
``translate`` optimization step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    CyclicInheritanceError,
    SchemaError,
    UnknownAttributeError,
    UnknownClassError,
)
from repro.schema.conceptual import Attribute, ClassDef, Method, RelationDef
from repro.schema.types import ClassRef, Type, element_type, is_collection

__all__ = ["Catalog", "PathStep", "ResolvedPath"]

Definition = Union[ClassDef, RelationDef]


@dataclass(frozen=True)
class PathStep:
    """One hop of a resolved path expression.

    ``owner`` is the class/relation name the attribute is looked up on,
    ``attribute`` the attribute object, and ``target`` the name of the
    referenced class when the hop is an implicit join (None for the
    final atomic hop).
    """

    owner: str
    attribute: Attribute
    target: Optional[str]

    @property
    def multivalued(self) -> bool:
        return self.attribute.is_multivalued()


@dataclass(frozen=True)
class ResolvedPath:
    """A fully resolved path expression.

    ``steps`` contains one :class:`PathStep` per attribute in the path.
    ``result_type`` is the conceptual type of the path's value.
    ``classes`` lists the class names traversed, starting with the root
    class — this is the sequence a path index must span (Section 3,
    [MS86]).
    """

    root: str
    steps: Tuple[PathStep, ...]
    result_type: Type

    @property
    def classes(self) -> Tuple[str, ...]:
        names: List[str] = [self.root]
        for step in self.steps:
            if step.target is not None:
                names.append(step.target)
        return tuple(names)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(step.attribute.name for step in self.steps)

    def dotted(self) -> str:
        return ".".join((self.root,) + self.attribute_names)

    def reference_hops(self) -> int:
        """Number of implicit joins needed to traverse the path."""
        return sum(1 for step in self.steps if step.target is not None)


class Catalog:
    """A validated registry of conceptual classes and relations."""

    def __init__(self) -> None:
        self._definitions: Dict[str, Definition] = {}

    # -- registration -----------------------------------------------------

    def add_class(self, class_def: ClassDef) -> ClassDef:
        self._register(class_def)
        return class_def

    def add_relation(self, relation_def: RelationDef) -> RelationDef:
        self._register(relation_def)
        return relation_def

    def _register(self, definition: Definition) -> None:
        if definition.name in self._definitions:
            raise SchemaError(f"duplicate definition of {definition.name!r}")
        self._definitions[definition.name] = definition

    # -- lookup -----------------------------------------------------------

    def get(self, name: str) -> Definition:
        try:
            return self._definitions[name]
        except KeyError:
            raise UnknownClassError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def names(self) -> Iterator[str]:
        return iter(self._definitions)

    def classes(self) -> Iterator[ClassDef]:
        return (d for d in self._definitions.values() if isinstance(d, ClassDef))

    def relations(self) -> Iterator[RelationDef]:
        return (d for d in self._definitions.values() if isinstance(d, RelationDef))

    def is_class(self, name: str) -> bool:
        return isinstance(self._definitions.get(name), ClassDef)

    # -- inheritance ------------------------------------------------------

    def ancestry(self, name: str) -> List[str]:
        """Names from ``name`` up to the root of its ``isa`` chain."""
        chain: List[str] = []
        seen = set()
        current: Optional[str] = name
        while current is not None:
            if current in seen:
                raise CyclicInheritanceError(
                    f"isa cycle through {current!r}"
                )
            seen.add(current)
            definition = self.get(current)
            chain.append(current)
            current = definition.isa if isinstance(definition, ClassDef) else None
        return chain

    def is_subclass(self, name: str, ancestor: str) -> bool:
        return ancestor in self.ancestry(name)

    def subclasses(self, name: str) -> List[str]:
        """All registered classes with ``name`` in their ancestry."""
        return [
            class_def.name
            for class_def in self.classes()
            if name in self.ancestry(class_def.name)
        ]

    # -- attribute / method resolution -------------------------------------

    def attribute(self, owner: str, name: str) -> Attribute:
        """Resolve ``owner.name`` walking up the ``isa`` chain."""
        for ancestor in self.ancestry(owner):
            attribute = self.get(ancestor).own_attribute(name)
            if attribute is not None:
                return attribute
        raise UnknownAttributeError(owner, name)

    def method(self, owner: str, name: str) -> Optional[Method]:
        for ancestor in self.ancestry(owner):
            method = self.get(ancestor).own_method(name)
            if method is not None:
                return method
        return None

    def has_member(self, owner: str, name: str) -> bool:
        try:
            self.attribute(owner, name)
            return True
        except UnknownAttributeError:
            return self.method(owner, name) is not None

    def all_attributes(self, owner: str) -> Dict[str, Attribute]:
        """Own + inherited attributes; subclass definitions win."""
        merged: Dict[str, Attribute] = {}
        for ancestor in reversed(self.ancestry(owner)):
            merged.update(self.get(ancestor).attributes)
        return merged

    def all_methods(self, owner: str) -> Dict[str, Method]:
        merged: Dict[str, Method] = {}
        for ancestor in reversed(self.ancestry(owner)):
            merged.update(self.get(ancestor).methods)
        return merged

    # -- path expressions ---------------------------------------------------

    def resolve_path(self, root: str, attributes: Sequence[str]) -> ResolvedPath:
        """Resolve a path expression ``root.a1.a2...an``.

        Each non-final attribute must be a reference attribute (possibly
        multivalued); the final attribute may be atomic, a method or a
        reference.  Methods may only appear as the final hop.
        """
        if not attributes:
            raise SchemaError("empty path expression")
        steps: List[PathStep] = []
        current = root
        result_type: Type
        for position, attribute_name in enumerate(attributes):
            is_last = position == len(attributes) - 1
            method = self.method(current, attribute_name)
            if method is not None:
                if not is_last:
                    raise SchemaError(
                        f"method {attribute_name!r} may only terminate a path"
                    )
                synthetic = Attribute(attribute_name, method.result_type)
                steps.append(PathStep(current, synthetic, None))
                result_type = method.result_type
                break
            attribute = self.attribute(current, attribute_name)
            target = attribute.referenced_class()
            if target is not None and target not in self._definitions:
                raise UnknownClassError(target)
            steps.append(PathStep(current, attribute, target))
            result_type = attribute.type
            if not is_last:
                if target is None:
                    raise SchemaError(
                        f"attribute {current}.{attribute_name} is atomic; "
                        f"cannot continue path with "
                        f"{'.'.join(attributes[position + 1:])!r}"
                    )
                current = target
        return ResolvedPath(root, tuple(steps), result_type)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check referential integrity of the whole catalog.

        Verifies that every class reference resolves, that ``isa``
        chains are acyclic and point at classes, and that ``inverse``
        declarations are mutually consistent.
        """
        for definition in self._definitions.values():
            if isinstance(definition, ClassDef) and definition.isa is not None:
                parent = self.get(definition.isa)
                if not isinstance(parent, ClassDef):
                    raise SchemaError(
                        f"{definition.name!r} isa non-class {definition.isa!r}"
                    )
                self.ancestry(definition.name)  # raises on cycles
            for attribute in definition.attributes.values():
                referenced = attribute.referenced_class()
                if referenced is not None:
                    self.get(referenced)
                if attribute.inverse_of is not None:
                    self._check_inverse(definition, attribute)

    def _check_inverse(self, definition: Definition, attribute: Attribute) -> None:
        declared = attribute.inverse_of
        assert declared is not None
        other = self.attribute(declared.other_class, declared.other_attribute)
        other_target = other.referenced_class()
        if other_target is None or not self._compatible(
            other_target, definition.name
        ):
            raise SchemaError(
                f"inverse mismatch: {declared.other_class}."
                f"{declared.other_attribute} does not reference "
                f"{definition.name!r}"
            )

    def _compatible(self, name: str, other: str) -> bool:
        """True when one of the two classes is an ancestor of the other."""
        return self.is_subclass(name, other) or self.is_subclass(other, name)
