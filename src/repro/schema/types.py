"""Conceptual type system.

The paper's conceptual model (Section 2.1) builds types from *atomic
types* and three constructors: tuple ``[...]``, set ``{...}`` and list
``<...>``.  A class or relation name maps to a type; attributes whose
type is (a collection of) another class are *reference* attributes and
induce implicit joins at the physical level.

Types are immutable value objects: two structurally equal types compare
equal and hash equally, which the optimizer relies on when comparing
tree labels.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import TypeCheckError, UnknownAttributeError

__all__ = [
    "Type",
    "AtomicType",
    "ClassRef",
    "TupleType",
    "SetType",
    "ListType",
    "INT",
    "FLOAT",
    "STRING",
    "BOOL",
    "is_collection",
    "element_type",
]


class Type:
    """Abstract base of all conceptual types."""

    def is_atomic(self) -> bool:
        return False

    def type_name(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return self.type_name()


class AtomicType(Type):
    """A named atomic type such as ``int`` or ``string``."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def is_atomic(self) -> bool:
        return True

    def type_name(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AtomicType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("atomic", self.name))


INT = AtomicType("int")
FLOAT = AtomicType("float")
STRING = AtomicType("string")
BOOL = AtomicType("bool")


class ClassRef(Type):
    """A reference to a class (or relation) by name.

    Using a by-name reference instead of the class object itself lets a
    schema be defined with forward and mutually recursive references
    (e.g. ``Composer.works: {Composition}`` while
    ``Composition.author: Composer``), exactly like Figure 1.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def type_name(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("classref", self.name))


class TupleType(Type):
    """A tuple type ``[a1: T1, ..., an: Tn]`` with named fields."""

    __slots__ = ("fields",)

    def __init__(self, fields: Mapping[str, Type]) -> None:
        self.fields: Tuple[Tuple[str, Type], ...] = tuple(fields.items())

    def field_type(self, name: str) -> Type:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        raise UnknownAttributeError(self.type_name(), name)

    def has_field(self, name: str) -> bool:
        return any(field_name == name for field_name, _ in self.fields)

    def field_names(self) -> Iterator[str]:
        return (name for name, _ in self.fields)

    def type_name(self) -> str:
        inner = ", ".join(f"{n}: {t.type_name()}" for n, t in self.fields)
        return f"[{inner}]"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleType) and other.fields == self.fields

    def __hash__(self) -> int:
        return hash(("tuple", self.fields))


class SetType(Type):
    """A set type ``{T}``."""

    __slots__ = ("element",)

    def __init__(self, element: Type) -> None:
        self.element = element

    def type_name(self) -> str:
        return "{" + self.element.type_name() + "}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetType) and other.element == self.element

    def __hash__(self) -> int:
        return hash(("set", self.element))


class ListType(Type):
    """A list type ``<T>``."""

    __slots__ = ("element",)

    def __init__(self, element: Type) -> None:
        self.element = element

    def type_name(self) -> str:
        return "<" + self.element.type_name() + ">"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ListType) and other.element == self.element

    def __hash__(self) -> int:
        return hash(("list", self.element))


def is_collection(type_: Type) -> bool:
    """Return True for set- and list-typed values."""
    return isinstance(type_, (SetType, ListType))


def element_type(type_: Type) -> Type:
    """Return the element type of a collection type.

    Raises :class:`TypeCheckError` when ``type_`` is not a collection.
    """
    if isinstance(type_, (SetType, ListType)):
        return type_.element
    raise TypeCheckError(f"{type_.type_name()} is not a collection type")
