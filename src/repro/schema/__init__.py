"""Conceptual schema model (Section 2.1 of the paper).

Public surface:

* :mod:`repro.schema.types` — atomic types and the tuple/set/list
  constructors.
* :mod:`repro.schema.conceptual` — :class:`ClassDef`,
  :class:`RelationDef`, :class:`Attribute`, :class:`Method`.
* :mod:`repro.schema.catalog` — the validated registry with ``isa``
  resolution and path-expression resolution.
* :mod:`repro.schema.sample` — the Figure 1 music schema.
"""

from repro.schema.catalog import Catalog, PathStep, ResolvedPath
from repro.schema.conceptual import (
    Attribute,
    ClassDef,
    InversePair,
    Method,
    RelationDef,
)
from repro.schema.sample import build_music_catalog
from repro.schema.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    AtomicType,
    ClassRef,
    ListType,
    SetType,
    TupleType,
    Type,
    element_type,
    is_collection,
)

__all__ = [
    "Catalog",
    "PathStep",
    "ResolvedPath",
    "Attribute",
    "ClassDef",
    "InversePair",
    "Method",
    "RelationDef",
    "build_music_catalog",
    "AtomicType",
    "ClassRef",
    "ListType",
    "SetType",
    "TupleType",
    "Type",
    "BOOL",
    "FLOAT",
    "INT",
    "STRING",
    "element_type",
    "is_collection",
]
