"""The sample conceptual schema of Figure 1.

Builds the music catalog used throughout the paper::

    class Person:      [ name: string, birthyear: int ]   + method age
    class Composer:    isa Person and
                       [ master: Composer, works: {Composition} ]
    class Composition: [ title: string,
                         author: Composer inverse of Composer.works,
                         instruments: {Instrument} ]
    class Instrument:  [ name: string, family: string ]
    relation Play:     [ who: Person, instrument: Instrument ]

The paper only sketches Person and Instrument; we give them the minimal
attributes its queries need (``name`` for both, ``family`` to have a
second selectable attribute, ``birthyear`` to back the ``age`` method).
"""

from __future__ import annotations

from typing import Dict

from repro.schema.catalog import Catalog
from repro.schema.conceptual import (
    Attribute,
    ClassDef,
    InversePair,
    Method,
    RelationDef,
)
from repro.schema.types import INT, STRING, ClassRef, SetType

__all__ = ["build_music_catalog", "CURRENT_YEAR"]

CURRENT_YEAR = 1992  # the paper's publication year; age() is relative to it


def _age(attributes: Dict[str, object]) -> object:
    birthyear = attributes.get("birthyear")
    if not isinstance(birthyear, int):
        return None
    return CURRENT_YEAR - birthyear


def build_music_catalog() -> Catalog:
    """Build and validate the Figure 1 catalog."""
    catalog = Catalog()
    catalog.add_class(
        ClassDef(
            "Person",
            attributes=[
                Attribute("name", STRING),
                Attribute("birthyear", INT),
            ],
            methods=[Method("age", INT, _age, eval_weight=1.0)],
        )
    )
    catalog.add_class(
        ClassDef(
            "Composer",
            isa="Person",
            attributes=[
                Attribute("master", ClassRef("Composer")),
                Attribute("works", SetType(ClassRef("Composition"))),
            ],
        )
    )
    catalog.add_class(
        ClassDef(
            "Composition",
            attributes=[
                Attribute("title", STRING),
                Attribute(
                    "author",
                    ClassRef("Composer"),
                    inverse_of=InversePair("Composer", "works"),
                ),
                Attribute("instruments", SetType(ClassRef("Instrument"))),
            ],
        )
    )
    catalog.add_class(
        ClassDef(
            "Instrument",
            attributes=[
                Attribute("name", STRING),
                Attribute("family", STRING),
            ],
        )
    )
    catalog.add_relation(
        RelationDef(
            "Play",
            attributes=[
                Attribute("who", ClassRef("Person")),
                Attribute("instrument", ClassRef("Instrument")),
            ],
        )
    )
    catalog.validate()
    return catalog
