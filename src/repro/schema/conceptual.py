"""Conceptual schema definitions: classes, relations, attributes, methods.

This mirrors Section 2.1 of the paper.  The conceptual model deals with
*classes* (instances are objects, carry identity) and *relations*
(instances are values).  An attribute may be declared the ``inverse`` of
another attribute (Composition.author inverse of Composer.works), and a
method is modelled as a *computed attribute* with an evaluation cost —
the key reason the paper argues selections may be expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import SchemaError
from repro.schema.types import (
    ClassRef,
    ListType,
    SetType,
    TupleType,
    Type,
    is_collection,
    element_type,
)

__all__ = [
    "Attribute",
    "Method",
    "ClassDef",
    "RelationDef",
    "InversePair",
]


@dataclass(frozen=True)
class InversePair:
    """Declares ``owner.attribute`` to be the inverse of ``other.other_attribute``."""

    other_class: str
    other_attribute: str


@dataclass
class Attribute:
    """A stored attribute of a class or relation.

    ``type`` is a conceptual :class:`~repro.schema.types.Type`; when it
    is a :class:`ClassRef` (or a collection of one) the attribute is a
    *reference* attribute and induces an implicit join.
    """

    name: str
    type: Type
    inverse_of: Optional[InversePair] = None

    def is_reference(self) -> bool:
        """True when the attribute references objects of another class."""
        target = self.type
        if is_collection(target):
            target = element_type(target)
        return isinstance(target, ClassRef)

    def referenced_class(self) -> Optional[str]:
        """Name of the referenced class, or None for value attributes."""
        target = self.type
        if is_collection(target):
            target = element_type(target)
        if isinstance(target, ClassRef):
            return target.name
        return None

    def is_multivalued(self) -> bool:
        return is_collection(self.type)


@dataclass
class Method:
    """A method modelled as a *computed attribute*.

    ``compute`` receives the owning object's attribute dictionary and
    returns the computed value.  ``eval_weight`` scales the CPU cost the
    cost model charges per invocation relative to evaluating a plain
    comparison predicate: methods can be arbitrarily expensive, which is
    why heuristics that blindly push method-invoking selections through
    recursion fail.
    """

    name: str
    result_type: Type
    compute: Callable[[Dict[str, object]], object]
    eval_weight: float = 1.0


class _TypedDefinition:
    """Shared implementation for classes and relations."""

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute],
        methods: Iterable[Method] = (),
    ) -> None:
        self.name = name
        self.attributes: Dict[str, Attribute] = {}
        for attribute in attributes:
            if attribute.name in self.attributes:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} on {name!r}"
                )
            self.attributes[attribute.name] = attribute
        self.methods: Dict[str, Method] = {}
        for method in methods:
            if method.name in self.attributes or method.name in self.methods:
                raise SchemaError(
                    f"duplicate member {method.name!r} on {name!r}"
                )
            self.methods[method.name] = method

    def own_attribute(self, name: str) -> Optional[Attribute]:
        return self.attributes.get(name)

    def own_method(self, name: str) -> Optional[Method]:
        return self.methods.get(name)

    def tuple_type(self) -> TupleType:
        """The tuple type induced by the stored attributes."""
        return TupleType({a.name: a.type for a in self.attributes.values()})

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{type(self).__name__}({self.name!r})"


class ClassDef(_TypedDefinition):
    """A class of the conceptual schema.

    ``isa`` names the (single) superclass, as in
    ``class Composer isa Person``.  Attribute and method lookup through
    the hierarchy is performed by the :class:`~repro.schema.catalog.Catalog`,
    which owns the full name space.
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute],
        methods: Iterable[Method] = (),
        isa: Optional[str] = None,
    ) -> None:
        super().__init__(name, attributes, methods)
        self.isa = isa


class RelationDef(_TypedDefinition):
    """A relation of the conceptual schema (instances are values).

    Relations have no identity and no inheritance; they are the natural
    type for views such as ``Influencer`` in Section 2.3.
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute],
        methods: Iterable[Method] = (),
    ) -> None:
        super().__init__(name, attributes, methods)
