"""Shard workers and per-request shard sessions.

A :class:`ShardWorker` is one shard of the cluster: a replica of the
coordinator's physical schema over the shard's **own buffer pool**
(its private LRU residency and simulated device latency are what make
shard-local I/O overlap, and therefore what the distributed fixpoint's
speedup comes from).  Workers are shared-nothing by construction —
they never read through the coordinator's buffer, and nothing a shard
stages is visible to any other shard — so the design is
process-shaped; the in-process implementation runs them on pool
threads, with the scatter/gather legs crossing the real line-JSON
framing so byte volumes are honest.

A :class:`ShardSession` is one request's private view of a worker:
its own counting buffer view (shared residency, private counters —
see :class:`repro.physical.buffer.BufferView`), its own store/schema
replica for delta staging, and its own engine view with thread-confined
metrics.  Sessions are what make per-shard work attributable to the
owning request even when shard workers serve several coordinators
concurrently: nothing a session counts is shared with any other
session.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.fixpoint import normalize_binding, normalized_columns
from repro.physical.buffer import BufferPool
from repro.physical.schema import PhysicalSchema
from repro.physical.storage import StoredRecord

__all__ = ["ShardWorker", "ShardSession"]

#: Oid-range stride separating each shard's allocator band from the
#: coordinator's (and each session's sub-band within the shard).  A
#: staged oid leaking into another store then fails loudly as an
#: ``OidError`` instead of silently resolving to an unrelated record.
OID_STRIDE = 1_000_000_000
SESSION_STRIDE = 1_000_000


class ShardWorker:
    """One shard: a zero-copy schema replica behind a private buffer."""

    def __init__(
        self,
        index: int,
        source: PhysicalSchema,
        buffer_capacity: Optional[int] = None,
        io_latency: Optional[float] = None,
    ) -> None:
        self.index = index
        source_buffer = source.store.buffer
        self.buffer = BufferPool(
            source_buffer.capacity if buffer_capacity is None else buffer_capacity,
            source_buffer.io_latency if io_latency is None else io_latency,
        )
        store = source.store.replica_view(
            self.buffer, oid_offset=OID_STRIDE * (index + 1)
        )
        self.schema = source.shard_view(store)
        self._session_count = 0

    def open_session(self, coordinator_engine) -> "ShardSession":
        """A fresh per-request session (coordinator thread only)."""
        self._session_count += 1
        return ShardSession(self, coordinator_engine, self._session_count)


class ShardSession:
    """One request's private evaluation context on one shard."""

    def __init__(self, worker: ShardWorker, coordinator_engine, seq: int) -> None:
        self.worker = worker
        self.shard = worker.index
        #: Counting view: residency stays with the shard's pool, the
        #: logical/physical counters are ours alone.
        self.io = worker.buffer.view()
        store = worker.schema.store.replica_view(
            self.io, oid_offset=SESSION_STRIDE * (seq % 900)
        )
        self.schema = worker.schema.shard_view(store)
        self.engine = coordinator_engine.shard_view(self.schema)
        self._staging: Dict[str, str] = {}

    def stage_delta(
        self, fix_name: str, tuples: List[Dict[str, object]]
    ) -> List[StoredRecord]:
        """Materialize a received delta partition into this session's
        staging extent.  Staged records get page ids of their own, so
        the recursive parts' ``RecLeaf`` scans charge page touches to
        this shard's buffer — the delta genuinely lives here for the
        round."""
        name = self._staging.get(fix_name)
        if name is None:
            info = self.schema.register_temp(f"shard{self.shard}_{fix_name}")
            name = info.name
            self._staging[fix_name] = name
        store = self.engine.store
        insert = store.insert
        peek = store.peek
        return [peek(insert(name, values)) for values in tuples]

    def evaluate(self, part, env) -> List[Dict[str, object]]:
        """Run one union part shard-locally — the session engine
        streams PR 5's batch pipeline against the shard replica — and
        return the produced bindings, normalized for the wire."""
        produced: List[Dict[str, object]] = []
        engine = self.engine
        for batch in engine.iterate_batches(part, env):
            engine.check_cancelled()
            if batch.is_columnar:
                # Normalize column-wise; bindings are assembled in the
                # batch's field order, matching what the row path's
                # per-binding ``normalize_binding`` would produce.
                names, cols, _, _ = normalized_columns(batch.columns)
                produced.extend(
                    {name: col[index] for name, col in zip(names, cols)}
                    for index in range(len(batch))
                )
            else:
                produced.extend(
                    normalize_binding(binding) for binding in batch.rows
                )
        return produced

    def close(self) -> int:
        """Drop the session's staging extents (session-private; the
        coordinator's temp cleanup never sees them).  Returns how many
        extents were dropped so cleanup is traceable per shard."""
        dropped = 0
        for name in self._staging.values():
            if self.schema.has_entity(name):
                self.schema.drop_temp(name)
                dropped += 1
        self._staging.clear()
        return dropped
