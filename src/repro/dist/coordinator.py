"""The shard cluster and the distributed scatter-gather fixpoint.

:class:`ShardCluster` owns N :class:`~repro.dist.shard.ShardWorker`
replicas of a physical schema plus the pool their tasks run on.
:func:`run_fixpoint_distributed` is the distributed twin of
:func:`repro.engine.parallel.run_fixpoint_parallel`: the same
semi-naive structure, but each round is a **scatter-gather exchange**
instead of an in-process fan-out —

1. *partition*: the coordinator hash-partitions the round's delta on
   the recursion-binding columns (one slice per shard; parts whose
   semantics partitioning would change take the whole delta on one
   shard, rotating per round);
2. *scatter*: each shard's slice crosses the service's line-JSON
   framing as ``delta`` frames and is staged into the shard session's
   private store;
3. *evaluate*: each shard runs its recursive parts against the staged
   slice with the batch pipeline, reading base extents through its own
   buffer pool;
4. *gather*: produced tuples come back as ``result`` frames, and the
   coordinator — sole owner of the seen-set — dedups in shard order
   and materializes the fresh tuples as the next delta.

Rounds are barriers and slices are disjoint, so answer sets and
per-node tuple counts match the serial evaluator exactly (the same
additivity argument as the parallel path).  The first shard error
aborts the remaining work of the round and re-raises in the
coordinator; ``Engine.execute``'s cleanup then drops the coordinator
temp, and each session's ``close()`` drops its shard-local staging
extents — failure semantics are documented in
``docs/architecture.md``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple

from repro.dist import exchange
from repro.dist.partition import ShardMap
from repro.dist.shard import ShardSession, ShardWorker
from repro.engine.fixpoint import key_of_normalized, partition_parts
from repro.engine.parallel import (
    _rebinding_fields,
    partition_delta,
    partitionable,
)
from repro.errors import FixpointLimitError
from repro.physical.schema import PhysicalSchema
from repro.physical.storage import StoredRecord
from repro.plans.nodes import Fix, PlanNode

__all__ = ["ShardCluster", "run_fixpoint_distributed"]


class ShardCluster:
    """N shard workers over replicas of one physical schema.

    Base extents are replicated (zero-copy; each shard reads them
    through its own buffer pool); recursion tuple spaces are
    hash-partitioned per round by the distributed fixpoint, which
    records the partitioning in :attr:`shard_map`.  One cluster may
    serve many engines — and several concurrently: all per-request
    state lives in :class:`~repro.dist.shard.ShardSession` objects.
    """

    def __init__(
        self,
        physical: PhysicalSchema,
        shards: int,
        buffer_capacity: Optional[int] = None,
        io_latency: Optional[float] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.physical = physical
        self.shards = shards
        self.shard_map = ShardMap(shards)
        for name in physical.store.extent_names():
            self.shard_map.place_replicated(name)
        self.workers: List[ShardWorker] = [
            ShardWorker(index, physical, buffer_capacity, io_latency)
            for index in range(shards)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, shards), thread_name_prefix="shard"
        )
        self._session_lock = threading.Lock()

    def open_sessions(self, engine, width: int) -> List[ShardSession]:
        """One per-request session on each of the first ``width``
        shards (safe to call from concurrent coordinators)."""
        with self._session_lock:
            return [
                worker.open_session(engine) for worker in self.workers[:width]
            ]

    def submit(self, fn, *args):
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def snapshot(self) -> dict:
        """Per-shard buffer statistics plus the placement map."""
        return {
            "shards": self.shards,
            "shard_map": self.shard_map.to_dict(),
            "buffers": [
                {
                    "shard": worker.index,
                    "logical_reads": worker.buffer.stats.logical_reads,
                    "physical_reads": worker.buffer.stats.physical_reads,
                    "resident_pages": worker.buffer.resident_count(),
                }
                for worker in self.workers
            ],
        }


def run_fixpoint_distributed(
    engine,
    fix: Fix,
    delta_env: Dict[str, List[StoredRecord]],
    cluster: ShardCluster,
    shards: int,
) -> str:
    """Evaluate ``fix`` as distributed scatter-gather rounds; returns
    the coordinator temp entity name (same contract as the serial and
    parallel paths)."""
    width = max(1, min(shards, cluster.shards))
    if width <= 1:
        from repro.engine.fixpoint import run_fixpoint_serial

        return run_fixpoint_serial(engine, fix, delta_env)

    temp_info = engine.physical.register_temp(fix.name)
    temp_name = temp_info.name
    engine.note_temp(temp_name)
    base_parts, recursive_parts = partition_parts(fix)

    seen: Set[tuple] = set()  # coordinator-side; coordinator thread only
    abort = threading.Event()
    sessions = cluster.open_sessions(engine, width)
    metrics = engine.metrics
    metrics.shards_used = max(metrics.shards_used, width)
    profiler = getattr(engine, "profiler", None)
    insert = engine.store.insert
    peek = engine.store.peek

    def shard_task(
        session: ShardSession,
        round_index: int,
        tasks: List[Tuple[PlanNode, Optional[object]]],
        payloads: Dict[object, List[bytes]],
    ) -> dict:
        """Everything one shard does in one round: receive + stage its
        delta frames, evaluate its parts, frame its results."""
        reads_before = session.io.stats.logical_reads
        produced: List[Dict[str, object]] = []
        staged_cache: Dict[object, List[StoredRecord]] = {}
        for part, payload_key in tasks:
            if abort.is_set():
                break
            session.engine.check_cancelled()
            if payload_key is None:  # base part: no delta leg
                env = delta_env
            else:
                staged = staged_cache.get(payload_key)
                if staged is None:
                    staged = session.stage_delta(
                        fix.name, exchange.decode_tuples(payloads[payload_key])
                    )
                    staged_cache[payload_key] = staged
                env = dict(delta_env)
                env[fix.name] = staged
            produced.extend(session.evaluate(part, env))
        frames = exchange.encode_tuples(
            "result", fix.name, round_index, session.shard, produced
        )
        return {
            "frames": frames,
            "tuples": len(produced),
            "reads": session.io.stats.logical_reads - reads_before,
        }

    def run_round(
        round_index: int,
        assignments: Dict[int, List[Tuple[PlanNode, Optional[object]]]],
        payloads: Dict[object, List[bytes]],
        scatter_by_shard: Dict[int, exchange.ExchangeStats],
    ) -> Tuple[List[StoredRecord], exchange.ExchangeStats]:
        futures = {
            shard: cluster.submit(
                shard_task, sessions[shard], round_index, tasks, payloads
            )
            for shard, tasks in assignments.items()
            if tasks
        }
        outcomes: List[Tuple[int, dict]] = []
        error: Optional[BaseException] = None
        for shard in sorted(futures):
            try:
                outcomes.append((shard, futures[shard].result()))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                abort.set()
                if error is None:
                    error = exc
        if error is not None:
            raise error
        # Gather leg: dedup in shard-index order (deterministic), then
        # materialize the fresh tuples at the coordinator.
        volume = exchange.ExchangeStats()
        for stats in scatter_by_shard.values():
            volume.merge(stats)
        fresh: List[StoredRecord] = []
        for shard, outcome in outcomes:
            volume.count(outcome["frames"], outcome["tuples"])
            arrived = 0
            for values in exchange.decode_tuples(outcome["frames"]):
                arrived += 1
                key = key_of_normalized(values)
                if key in seen:
                    continue
                seen.add(key)
                fresh.append(peek(insert(temp_name, values)))
            scatter = scatter_by_shard.get(shard)
            exchange.write_shard_telemetry(
                {
                    "fix": fix.name,
                    "round": round_index,
                    "shard": shard,
                    "scatter_tuples": scatter.tuples if scatter else 0,
                    "scatter_bytes": scatter.bytes if scatter else 0,
                    "gather_tuples": arrived,
                    "gather_bytes": sum(len(f) for f in outcome["frames"]),
                    "logical_reads": outcome["reads"],
                }
            )
        metrics.exchange_rounds += 1
        metrics.exchange_tuples += volume.tuples
        metrics.exchange_bytes += volume.bytes
        return fresh, volume

    try:
        # Base round: non-recursive parts fan out round-robin; only the
        # gather leg carries tuples.
        round_start = time.perf_counter()
        assignments: Dict[int, List[Tuple[PlanNode, Optional[object]]]] = {
            shard: [] for shard in range(width)
        }
        for index, part in enumerate(base_parts):
            assignments[index % width].append((part, None))
        delta, volume = run_round(0, assignments, {}, {})
        if profiler is not None:
            profiler.fix_iteration(
                fix,
                0,
                len(delta),
                time.perf_counter() - round_start,
                shards=width,
                exchange_tuples=volume.tuples,
                exchange_bytes=volume.bytes,
            )

        rebinding = _rebinding_fields(fix, delta)
        if rebinding:
            cluster.shard_map.place_partitioned(fix.name, rebinding)
        iterations = 0
        while delta:
            iterations += 1
            if iterations > engine.max_fix_iterations:
                raise FixpointLimitError(fix.name, engine.max_fix_iterations)
            engine.check_cancelled()
            metrics.fix_iterations += 1
            round_start = time.perf_counter()

            assignments = {shard: [] for shard in range(width)}
            payloads: Dict[object, List[bytes]] = {}
            scatter_by_shard: Dict[int, exchange.ExchangeStats] = {}
            slices: Optional[List[List[StoredRecord]]] = None
            for part_index, part in enumerate(recursive_parts):
                if partitionable(part, fix.name) and len(delta) > 1:
                    if slices is None:
                        slices = partition_delta(delta, width, rebinding)
                        for shard, piece in enumerate(slices):
                            if not piece:
                                continue
                            frames = exchange.encode_tuples(
                                "delta",
                                fix.name,
                                iterations,
                                shard,
                                [record.values for record in piece],
                            )
                            payloads[("slice", shard)] = frames
                            stats = scatter_by_shard.setdefault(
                                shard, exchange.ExchangeStats()
                            )
                            stats.count(frames, len(piece))
                    for shard, piece in enumerate(slices):
                        if piece:
                            assignments[shard].append((part, ("slice", shard)))
                else:
                    # Unpartitionable part: the whole delta travels to
                    # one shard, rotating per round for balance.
                    target = (iterations + part_index) % width
                    if "full" not in payloads:
                        payloads["full"] = exchange.encode_tuples(
                            "delta",
                            fix.name,
                            iterations,
                            target,
                            [record.values for record in delta],
                        )
                    if not any(
                        key == "full" for _part, key in assignments[target]
                    ):
                        stats = scatter_by_shard.setdefault(
                            target, exchange.ExchangeStats()
                        )
                        stats.count(payloads["full"], len(delta))
                    assignments[target].append((part, "full"))

            delta, volume = run_round(
                iterations, assignments, payloads, scatter_by_shard
            )
            if profiler is not None:
                profiler.fix_iteration(
                    fix,
                    iterations,
                    len(delta),
                    time.perf_counter() - round_start,
                    shards=width,
                    exchange_tuples=volume.tuples,
                    exchange_bytes=volume.bytes,
                )
    finally:
        abort.set()
        for session in sessions:
            session.close()
            engine.absorb_shard(session.shard, session.engine, session.io.stats)
    return temp_name
