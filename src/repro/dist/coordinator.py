"""The shard cluster and the distributed scatter-gather fixpoint.

:class:`ShardCluster` owns N :class:`~repro.dist.shard.ShardWorker`
replicas of a physical schema plus the pool their tasks run on.
:func:`run_fixpoint_distributed` is the distributed twin of
:func:`repro.engine.parallel.run_fixpoint_parallel`: the same
semi-naive structure, but each round is a **scatter-gather exchange**
instead of an in-process fan-out —

1. *partition*: the coordinator hash-partitions the round's delta on
   the recursion-binding columns (one slice per shard; parts whose
   semantics partitioning would change take the whole delta on one
   shard, rotating per round);
2. *scatter*: each shard's slice crosses the service's line-JSON
   framing as ``delta`` frames and is staged into the shard session's
   private store;
3. *evaluate*: each shard runs its recursive parts against the staged
   slice with the batch pipeline, reading base extents through its own
   buffer pool;
4. *gather*: produced tuples come back as ``result`` frames, and the
   coordinator — sole owner of the seen-set — dedups in shard order
   and materializes the fresh tuples as the next delta.

Rounds are barriers and slices are disjoint, so answer sets and
per-node tuple counts match the serial evaluator exactly (the same
additivity argument as the parallel path).  The first shard error
aborts the remaining work of the round and re-raises in the
coordinator; ``Engine.execute``'s cleanup then drops the coordinator
temp, and each session's ``close()`` drops its shard-local staging
extents — failure semantics are documented in
``docs/architecture.md``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple

from repro.dist import exchange
from repro.dist.partition import ShardMap
from repro.dist.shard import ShardSession, ShardWorker
from repro.engine.fixpoint import key_of_normalized, partition_parts
from repro.engine.parallel import (
    _rebinding_fields,
    partition_delta,
    partitionable,
)
from repro.errors import FixpointLimitError
from repro.obs.log import get_logger
from repro.obs.trace import NULL_TRACER
from repro.physical.schema import PhysicalSchema
from repro.physical.storage import StoredRecord
from repro.plans.nodes import Fix, PlanNode

__all__ = ["ShardCluster", "run_fixpoint_distributed"]

#: Structured logger: request id / shard / round travel as fields (see
#: :mod:`repro.obs.log`), so JSON log pipelines can filter on them.
logger = get_logger("dist")


def _annotate(exc: BaseException, context: str) -> None:
    """Prefix an exception's message with request/shard context so
    abort-on-first-error reports name their origin.  Best-effort: an
    exception whose args resist rewriting propagates unchanged."""
    try:
        if exc.args and isinstance(exc.args[0], str):
            exc.args = (f"[{context}] {exc.args[0]}",) + exc.args[1:]
        else:
            exc.args = (f"[{context}]",) + exc.args
    except Exception:  # pragma: no cover - exotic exception types
        pass


class ShardCluster:
    """N shard workers over replicas of one physical schema.

    Base extents are replicated (zero-copy; each shard reads them
    through its own buffer pool); recursion tuple spaces are
    hash-partitioned per round by the distributed fixpoint, which
    records the partitioning in :attr:`shard_map`.  One cluster may
    serve many engines — and several concurrently: all per-request
    state lives in :class:`~repro.dist.shard.ShardSession` objects.
    """

    def __init__(
        self,
        physical: PhysicalSchema,
        shards: int,
        buffer_capacity: Optional[int] = None,
        io_latency: Optional[float] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.physical = physical
        self.shards = shards
        self.shard_map = ShardMap(shards)
        for name in physical.store.extent_names():
            self.shard_map.place_replicated(name)
        self.workers: List[ShardWorker] = [
            ShardWorker(index, physical, buffer_capacity, io_latency)
            for index in range(shards)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, shards), thread_name_prefix="shard"
        )
        self._session_lock = threading.Lock()

    def open_sessions(self, engine, width: int) -> List[ShardSession]:
        """One per-request session on each of the first ``width``
        shards (safe to call from concurrent coordinators)."""
        with self._session_lock:
            return [
                worker.open_session(engine) for worker in self.workers[:width]
            ]

    def submit(self, fn, *args):
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def snapshot(self) -> dict:
        """Per-shard buffer statistics plus the placement map."""
        return {
            "shards": self.shards,
            "shard_map": self.shard_map.to_dict(),
            "buffers": [
                {
                    "shard": worker.index,
                    "logical_reads": worker.buffer.stats.logical_reads,
                    "physical_reads": worker.buffer.stats.physical_reads,
                    "resident_pages": worker.buffer.resident_count(),
                }
                for worker in self.workers
            ],
        }


def run_fixpoint_distributed(
    engine,
    fix: Fix,
    delta_env: Dict[str, List[StoredRecord]],
    cluster: ShardCluster,
    shards: int,
) -> str:
    """Evaluate ``fix`` as distributed scatter-gather rounds; returns
    the coordinator temp entity name (same contract as the serial and
    parallel paths)."""
    width = max(1, min(shards, cluster.shards))
    if width <= 1:
        from repro.engine.fixpoint import run_fixpoint_serial

        return run_fixpoint_serial(engine, fix, delta_env)

    temp_info = engine.physical.register_temp(fix.name)
    temp_name = temp_info.name
    engine.note_temp(temp_name)
    base_parts, recursive_parts = partition_parts(fix)

    seen: Set[tuple] = set()  # coordinator-side; coordinator thread only
    abort = threading.Event()
    sessions = cluster.open_sessions(engine, width)
    metrics = engine.metrics
    metrics.shards_used = max(metrics.shards_used, width)
    profiler = getattr(engine, "profiler", None)
    progress = getattr(engine, "progress", None)
    rid = getattr(engine, "request_id", "") or "local"
    # Wire layout follows the engine's batch layout: columnar engines
    # exchange run-length column frames, row engines keep the
    # tuple-array frames byte-for-byte.
    wire_layout = getattr(engine, "batch_layout", "row")
    tracer = getattr(engine, "tracer", NULL_TRACER)
    if tracer.enabled and tracer.trace_id is None:
        tracer.trace_id = rid
    trace_id = getattr(tracer, "trace_id", "") or ""
    # One thread-confined tracer per shard lane; rounds are barriers,
    # so at most one pool thread records into a lane at a time.
    if tracer.enabled:
        shard_tracers = [
            tracer.child(f"shard{session.shard}") for session in sessions
        ]
    else:
        shard_tracers = [NULL_TRACER for _ in sessions]
    insert = engine.store.insert
    peek = engine.store.peek

    def shard_task(
        session: ShardSession,
        round_index: int,
        tasks: List[Tuple[PlanNode, Optional[object]]],
        payloads: Dict[object, List[bytes]],
    ) -> dict:
        """Everything one shard does in one round: receive + stage its
        delta frames, evaluate its parts, frame its results."""
        shard = session.shard
        stracer = shard_tracers[sessions.index(session)]
        thread = threading.current_thread()
        saved_name = thread.name
        thread.name = f"shard{shard}-{rid}"
        busy_start = time.perf_counter()
        try:
            with stracer.span(
                "round", round=round_index, shard=shard, request=rid
            ) as round_span:
                reads_before = session.io.stats.logical_reads
                produced: List[Dict[str, object]] = []
                staged_cache: Dict[object, List[StoredRecord]] = {}
                for part, payload_key in tasks:
                    if abort.is_set():
                        break
                    session.engine.check_cancelled()
                    if payload_key is None:  # base part: no delta leg
                        env = delta_env
                    else:
                        staged = staged_cache.get(payload_key)
                        if staged is None:
                            with stracer.span(
                                "exchange_recv",
                                round=round_index,
                                frames=len(payloads[payload_key]),
                            ):
                                received = exchange.decode_tuples(
                                    payloads[payload_key]
                                )
                            with stracer.span(
                                "stage", round=round_index, tuples=len(received)
                            ):
                                staged = session.stage_delta(fix.name, received)
                            staged_cache[payload_key] = staged
                        env = dict(delta_env)
                        env[fix.name] = staged
                    with stracer.span(
                        "evaluate", round=round_index, part=type(part).__name__
                    ):
                        produced.extend(session.evaluate(part, env))
                with stracer.span(
                    "exchange_send", round=round_index, tuples=len(produced)
                ):
                    frames = exchange.encode_tuples(
                        "result",
                        fix.name,
                        round_index,
                        shard,
                        produced,
                        trace_id=trace_id,
                        layout=wire_layout,
                    )
                reads = session.io.stats.logical_reads - reads_before
                round_span.set(tuples=len(produced), reads=reads)
                return {
                    "frames": frames,
                    "tuples": len(produced),
                    "reads": reads,
                    "busy": time.perf_counter() - busy_start,
                }
        except BaseException as exc:  # noqa: BLE001 - annotated + re-raised
            _annotate(exc, f"request {rid} shard {shard} round {round_index}")
            logger.error(
                "shard round failed: %s",
                exc,
                extra={
                    "request_id": rid,
                    "shard": shard,
                    "round": round_index,
                },
            )
            raise
        finally:
            thread.name = saved_name

    def run_round(
        round_index: int,
        assignments: Dict[int, List[Tuple[PlanNode, Optional[object]]]],
        payloads: Dict[object, List[bytes]],
        scatter_by_shard: Dict[int, exchange.ExchangeStats],
    ) -> Tuple[List[StoredRecord], dict]:
        futures = {
            shard: cluster.submit(
                shard_task, sessions[shard], round_index, tasks, payloads
            )
            for shard, tasks in assignments.items()
            if tasks
        }
        outcomes: List[Tuple[int, dict]] = []
        error: Optional[BaseException] = None
        wait_begin = time.perf_counter()
        with tracer.span("barrier_wait", round=round_index, request=rid):
            for shard in sorted(futures):
                try:
                    outcomes.append((shard, futures[shard].result()))
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    abort.set()
                    if error is None:
                        error = exc
        barrier_wait = time.perf_counter() - wait_begin
        metrics.barrier_wait_seconds += barrier_wait
        if error is not None:
            raise error
        # Gather leg: dedup in shard-index order (deterministic), then
        # materialize the fresh tuples at the coordinator.
        volume = exchange.ExchangeStats()
        for stats in scatter_by_shard.values():
            volume.merge(stats)
        fresh: List[StoredRecord] = []
        loads: Dict[int, float] = {}
        produced_by_shard: Dict[int, int] = {}
        with tracer.span("gather", round=round_index, request=rid):
            for shard, outcome in outcomes:
                volume.count(outcome["frames"], outcome["tuples"])
                metrics.shard_busy_seconds += outcome["busy"]
                loads[shard] = float(outcome["reads"] + outcome["tuples"])
                produced_by_shard[shard] = outcome["tuples"]
                arrived = 0
                for values in exchange.decode_tuples(outcome["frames"]):
                    arrived += 1
                    key = key_of_normalized(values)
                    if key in seen:
                        continue
                    seen.add(key)
                    fresh.append(peek(insert(temp_name, values)))
                scatter = scatter_by_shard.get(shard)
                exchange.write_shard_telemetry(
                    {
                        "request": rid,
                        "fix": fix.name,
                        "round": round_index,
                        "shard": shard,
                        "scatter_tuples": scatter.tuples if scatter else 0,
                        "scatter_bytes": scatter.bytes if scatter else 0,
                        "gather_tuples": arrived,
                        "gather_bytes": sum(len(f) for f in outcome["frames"]),
                        "logical_reads": outcome["reads"],
                        "busy_seconds": round(outcome["busy"], 6),
                    }
                )
        round_max = max(loads.values(), default=0.0)
        round_mean = (sum(loads.values()) / len(loads)) if loads else 0.0
        skew = (round_max / round_mean) if round_mean > 0 else 1.0
        metrics.shard_load_max += round_max
        metrics.shard_load_mean += round_mean
        metrics.exchange_rounds += 1
        metrics.exchange_tuples += volume.tuples
        metrics.exchange_bytes += volume.bytes
        metrics.exchange_frames += volume.frames
        return fresh, {
            "volume": volume,
            "barrier_wait": barrier_wait,
            "skew": max(1.0, skew),
            "loads": loads,
            "produced_by_shard": produced_by_shard,
        }

    def note_round(round_index, fresh, info, seconds):
        volume = info["volume"]
        if profiler is not None:
            profiler.fix_iteration(
                fix,
                round_index,
                len(fresh),
                seconds,
                shards=width,
                exchange_tuples=volume.tuples,
                exchange_bytes=volume.bytes,
                exchange_frames=volume.frames,
                skew=info["skew"],
                barrier_wait_s=info["barrier_wait"],
                per_shard=info["produced_by_shard"],
            )
        if progress is not None:
            progress.round_update(
                fix=fix.name,
                round_index=round_index,
                delta=len(fresh),
                delta_by_shard=info["produced_by_shard"],
                skew=info["skew"],
                exchange_tuples=volume.tuples,
                exchange_bytes=volume.bytes,
                barrier_wait_s=info["barrier_wait"],
                seconds=seconds,
            )

    with tracer.span(
        "fix", fix=fix.name, shards=width, request=rid
    ) as fix_span:
        try:
            # Base round: non-recursive parts fan out round-robin; only
            # the gather leg carries tuples.
            round_start = time.perf_counter()
            assignments: Dict[int, List[Tuple[PlanNode, Optional[object]]]] = {
                shard: [] for shard in range(width)
            }
            for index, part in enumerate(base_parts):
                assignments[index % width].append((part, None))
            delta, info = run_round(0, assignments, {}, {})
            note_round(0, delta, info, time.perf_counter() - round_start)

            rebinding = _rebinding_fields(fix, delta)
            if rebinding:
                cluster.shard_map.place_partitioned(fix.name, rebinding)
            iterations = 0
            while delta:
                iterations += 1
                if iterations > engine.max_fix_iterations:
                    raise FixpointLimitError(
                        fix.name, engine.max_fix_iterations
                    )
                engine.check_cancelled()
                metrics.fix_iterations += 1
                round_start = time.perf_counter()

                assignments = {shard: [] for shard in range(width)}
                payloads: Dict[object, List[bytes]] = {}
                scatter_by_shard: Dict[int, exchange.ExchangeStats] = {}
                slices: Optional[List[List[StoredRecord]]] = None
                with tracer.span(
                    "partition", round=iterations, delta=len(delta), request=rid
                ):
                    for part_index, part in enumerate(recursive_parts):
                        if partitionable(part, fix.name) and len(delta) > 1:
                            if slices is None:
                                slices = partition_delta(
                                    delta, width, rebinding
                                )
                                for shard, piece in enumerate(slices):
                                    if not piece:
                                        continue
                                    frames = exchange.encode_tuples(
                                        "delta",
                                        fix.name,
                                        iterations,
                                        shard,
                                        [record.values for record in piece],
                                        trace_id=trace_id,
                                        layout=wire_layout,
                                    )
                                    payloads[("slice", shard)] = frames
                                    stats = scatter_by_shard.setdefault(
                                        shard, exchange.ExchangeStats()
                                    )
                                    stats.count(frames, len(piece))
                            for shard, piece in enumerate(slices):
                                if piece:
                                    assignments[shard].append(
                                        (part, ("slice", shard))
                                    )
                        else:
                            # Unpartitionable part: the whole delta
                            # travels to one shard, rotating per round
                            # for balance.  Payloads are keyed (and
                            # their volume counted) per target so the
                            # frame headers name the shard that really
                            # receives them.
                            target = (iterations + part_index) % width
                            payload_key = ("full", target)
                            if payload_key not in payloads:
                                payloads[payload_key] = exchange.encode_tuples(
                                    "delta",
                                    fix.name,
                                    iterations,
                                    target,
                                    [record.values for record in delta],
                                    trace_id=trace_id,
                                    layout=wire_layout,
                                )
                                stats = scatter_by_shard.setdefault(
                                    target, exchange.ExchangeStats()
                                )
                                stats.count(payloads[payload_key], len(delta))
                            assignments[target].append((part, payload_key))

                delta, info = run_round(
                    iterations, assignments, payloads, scatter_by_shard
                )
                note_round(
                    iterations, delta, info, time.perf_counter() - round_start
                )
            fix_span.set(rounds=metrics.exchange_rounds)
        finally:
            abort.set()
            with tracer.span("cleanup", request=rid):
                for session in sessions:
                    dropped = session.close()
                    if tracer.enabled:
                        tracer.event(
                            "staging_cleanup",
                            shard=session.shard,
                            staging_dropped=dropped,
                            request=rid,
                        )
                    engine.absorb_shard(
                        session.shard, session.engine, session.io.stats
                    )
    return temp_name
