"""Delta exchange: tuples as line-JSON frames between coordinator and
shards.

Both legs of a scatter-gather round travel as the service's existing
line-JSON message framing (:mod:`repro.service.protocol`): the
coordinator *scatters* each shard its delta partition as ``delta``
frames, shards *gather* their produced tuples back as ``result``
frames.  Every frame is a real ``protocol.encode``/``decode``
round-trip — the bytes the counters report are exactly the bytes that
would cross a socket, and oversized payloads are chunked to respect
``protocol.MAX_LINE_BYTES`` just as a socket writer would have to.

Value codec: normalized fixpoint tuples contain only atoms, oids and
tuples (``normalize_binding`` collapses records to oids before
insertion), so the wire form needs one marker — ``{"__oid__": n}`` —
to keep object identifiers distinguishable from plain integers; arrays
map back to tuples.  Anything else is rejected loudly rather than
silently stringified.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import ProtocolError
from repro.physical.storage import Oid
from repro.service import protocol

__all__ = [
    "encode_value",
    "decode_value",
    "encode_tuples",
    "decode_tuples",
    "ExchangeStats",
    "shard_telemetry_path",
    "write_shard_telemetry",
]

#: Tuples per frame before size-based splitting kicks in.  Small enough
#: that a typical frame stays far below ``MAX_LINE_BYTES``, large
#: enough that framing overhead is negligible.
FRAME_TUPLES = 2048


def encode_value(value):
    """Wire form of one normalized tuple value."""
    if isinstance(value, Oid):
        return {"__oid__": int(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return [encode_value(item) for item in value]
    raise ProtocolError(
        f"value of type {type(value).__name__!r} cannot cross the "
        f"shard exchange (normalized tuples hold atoms, oids and tuples)"
    )


def decode_value(value):
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        try:
            return Oid(value["__oid__"])
        except KeyError:
            raise ProtocolError(
                f"malformed oid marker in exchange frame: {value!r}"
            ) from None
    if isinstance(value, list):
        return tuple(decode_value(item) for item in value)
    return value


def _encode_tuple(values: Dict[str, object]) -> dict:
    return {key: encode_value(value) for key, value in values.items()}


def _decode_tuple(payload: dict) -> Dict[str, object]:
    return {key: decode_value(value) for key, value in payload.items()}


def _runs_equal(a, b) -> bool:
    """Type-strict wire-value equality for run-length merging.  Plain
    ``==`` would merge ``True`` with ``1`` (and ``1`` with ``1.0``) —
    the decoded column would then silently change a stored value's
    type, so runs only merge when the encoded forms match exactly."""
    if type(a) is not type(b):
        return False
    if isinstance(a, list):
        return len(a) == len(b) and all(
            _runs_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


def _encode_column_runs(column: Sequence[object]) -> List[list]:
    """One column as ``[[wire_value, run_length], ...]`` runs.  Delta
    columns are highly repetitive (invariant fields repeat across every
    tuple of a partition), so run-length framing is where the columnar
    exchange's byte savings come from."""
    runs: List[list] = []
    for value in column:
        encoded = encode_value(value)
        if runs and _runs_equal(runs[-1][0], encoded):
            runs[-1][1] += 1
        else:
            runs.append([encoded, 1])
    return runs


def _decode_column_runs(runs, count: int, field: str) -> List[object]:
    """Inverse of :func:`_encode_column_runs`, validated against the
    frame's tuple count."""
    if not isinstance(runs, list):
        raise ProtocolError(f"malformed column runs for field {field!r}")
    column: List[object] = []
    for entry in runs:
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or isinstance(entry[1], bool)
            or not isinstance(entry[1], int)
            or entry[1] < 1
        ):
            raise ProtocolError(
                f"malformed column run for field {field!r}: {entry!r}"
            )
        value = decode_value(entry[0])
        column.extend([value] * entry[1])
    if len(column) != count:
        raise ProtocolError(
            f"column {field!r} decodes to {len(column)} values "
            f"in a frame of {count} tuples"
        )
    return column


def encode_tuples(
    op: str,
    fix_name: str,
    round_index: int,
    shard: int,
    tuples: Sequence[Dict[str, object]],
    trace_id: str = "",
    layout: str = "row",
) -> List[bytes]:
    """Frame a tuple batch as one or more line-JSON messages.

    A frame that would exceed ``protocol.MAX_LINE_BYTES`` is split in
    half recursively; a single tuple too large for a frame raises (it
    could never cross the real wire either).  Sequence numbers are
    assigned when a frame is *finally* encoded — a chunk that splits
    never occupies a seq, so numbering stays dense and each emitted
    frame is counted exactly once however many splits produced it.
    When ``trace_id`` is set it rides in every frame header, tying the
    wire bytes back to the request's stitched trace.

    ``layout="row"`` (the default) frames each chunk as a ``tuples``
    array of per-tuple objects — the compatibility wire form, byte
    identical to what earlier revisions sent.  ``layout="columnar"``
    frames a chunk as ``{"n": count, "cols": {field: runs}}`` with each
    column run-length encoded; a chunk whose tuples do not all share
    one ordered field list falls back to the row form (the decoder
    accepts both, so the forms may mix within one sequence).
    """
    frames: List[bytes] = []
    columnar = layout == "columnar"

    def payload_of(chunk: Sequence[Dict[str, object]]) -> dict:
        if columnar and chunk:
            keys = tuple(chunk[0])
            if all(tuple(values) == keys for values in chunk):
                return {
                    "n": len(chunk),
                    "cols": {
                        key: _encode_column_runs(
                            [values[key] for values in chunk]
                        )
                        for key in keys
                    },
                }
        return {"tuples": [_encode_tuple(values) for values in chunk]}

    def header(seq: int, chunk: Sequence[Dict[str, object]]) -> dict:
        message = {
            "op": op,
            "fix": fix_name,
            "round": round_index,
            "shard": shard,
            "seq": seq,
        }
        message.update(payload_of(chunk))
        if trace_id:
            message["trace"] = trace_id
        return message

    def emit(chunk: Sequence[Dict[str, object]]) -> None:
        line = protocol.encode(header(len(frames), chunk))
        if len(line) <= protocol.MAX_LINE_BYTES:
            frames.append(line)
            return
        if len(chunk) <= 1:
            raise ProtocolError(
                f"one exchange tuple exceeds the {protocol.MAX_LINE_BYTES}"
                f"-byte frame limit"
            )
        middle = len(chunk) // 2
        emit(chunk[:middle])
        emit(chunk[middle:])

    if not tuples:
        return [protocol.encode(header(0, []))]
    for start in range(0, len(tuples), FRAME_TUPLES):
        emit(tuples[start : start + FRAME_TUPLES])
    return frames


def decode_tuples(frames: Iterable[bytes]) -> List[Dict[str, object]]:
    """Decode the tuple payloads of a frame sequence (order-preserving)."""
    tuples: List[Dict[str, object]] = []
    for line in frames:
        message = protocol.decode(line)
        cols = message.get("cols")
        if cols is not None:
            count = message.get("n")
            if (
                not isinstance(cols, dict)
                or isinstance(count, bool)
                or not isinstance(count, int)
                or count < 0
            ):
                raise ProtocolError(
                    f"malformed columnar exchange frame: "
                    f"{message.get('op')!r}"
                )
            columns = {
                field: _decode_column_runs(runs, count, field)
                for field, runs in cols.items()
            }
            names = list(columns)
            tuples.extend(
                {name: columns[name][index] for name in names}
                for index in range(count)
            )
            continue
        payload = message.get("tuples")
        if not isinstance(payload, list):
            raise ProtocolError(
                f"exchange frame without a tuples array: {message.get('op')!r}"
            )
        tuples.extend(_decode_tuple(entry) for entry in payload)
    return tuples


@dataclass
class ExchangeStats:
    """Volume counters for one exchange leg or round (both directions
    are counted: a tuple scattered and its result gathered are two
    exchanged tuples, exactly as they would be two sends)."""

    tuples: int = 0
    bytes: int = 0
    frames: int = 0

    def count(self, frames: Sequence[bytes], tuple_count: int) -> None:
        self.frames += len(frames)
        self.bytes += sum(len(frame) for frame in frames)
        self.tuples += tuple_count

    def merge(self, other: "ExchangeStats") -> None:
        self.tuples += other.tuples
        self.bytes += other.bytes
        self.frames += other.frames


# -- per-shard telemetry ------------------------------------------------------

_telemetry_lock = threading.Lock()


def shard_telemetry_path() -> str:
    """Target JSONL file for per-round per-shard telemetry records;
    empty string disables (the default)."""
    return os.environ.get("REPRO_SHARD_TELEMETRY", "")


def write_shard_telemetry(record: dict) -> None:
    """Append one JSONL telemetry record (no-op unless
    ``REPRO_SHARD_TELEMETRY`` names a file).  CI uploads the file as a
    build artifact so sharded-round behaviour is inspectable per run."""
    path = shard_telemetry_path()
    if not path:
        return
    line = json.dumps(record, sort_keys=True, default=str)
    with _telemetry_lock:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
