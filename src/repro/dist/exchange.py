"""Delta exchange: tuples as line-JSON frames between coordinator and
shards.

Both legs of a scatter-gather round travel as the service's existing
line-JSON message framing (:mod:`repro.service.protocol`): the
coordinator *scatters* each shard its delta partition as ``delta``
frames, shards *gather* their produced tuples back as ``result``
frames.  Every frame is a real ``protocol.encode``/``decode``
round-trip — the bytes the counters report are exactly the bytes that
would cross a socket, and oversized payloads are chunked to respect
``protocol.MAX_LINE_BYTES`` just as a socket writer would have to.

Value codec: normalized fixpoint tuples contain only atoms, oids and
tuples (``normalize_binding`` collapses records to oids before
insertion), so the wire form needs one marker — ``{"__oid__": n}`` —
to keep object identifiers distinguishable from plain integers; arrays
map back to tuples.  Anything else is rejected loudly rather than
silently stringified.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import ProtocolError
from repro.physical.storage import Oid
from repro.service import protocol

__all__ = [
    "encode_value",
    "decode_value",
    "encode_tuples",
    "decode_tuples",
    "ExchangeStats",
    "shard_telemetry_path",
    "write_shard_telemetry",
]

#: Tuples per frame before size-based splitting kicks in.  Small enough
#: that a typical frame stays far below ``MAX_LINE_BYTES``, large
#: enough that framing overhead is negligible.
FRAME_TUPLES = 2048


def encode_value(value):
    """Wire form of one normalized tuple value."""
    if isinstance(value, Oid):
        return {"__oid__": int(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return [encode_value(item) for item in value]
    raise ProtocolError(
        f"value of type {type(value).__name__!r} cannot cross the "
        f"shard exchange (normalized tuples hold atoms, oids and tuples)"
    )


def decode_value(value):
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        try:
            return Oid(value["__oid__"])
        except KeyError:
            raise ProtocolError(
                f"malformed oid marker in exchange frame: {value!r}"
            ) from None
    if isinstance(value, list):
        return tuple(decode_value(item) for item in value)
    return value


def _encode_tuple(values: Dict[str, object]) -> dict:
    return {key: encode_value(value) for key, value in values.items()}


def _decode_tuple(payload: dict) -> Dict[str, object]:
    return {key: decode_value(value) for key, value in payload.items()}


def encode_tuples(
    op: str,
    fix_name: str,
    round_index: int,
    shard: int,
    tuples: Sequence[Dict[str, object]],
    trace_id: str = "",
) -> List[bytes]:
    """Frame a tuple batch as one or more line-JSON messages.

    A frame that would exceed ``protocol.MAX_LINE_BYTES`` is split in
    half recursively; a single tuple too large for a frame raises (it
    could never cross the real wire either).  Sequence numbers are
    assigned when a frame is *finally* encoded — a chunk that splits
    never occupies a seq, so numbering stays dense and each emitted
    frame is counted exactly once however many splits produced it.
    When ``trace_id`` is set it rides in every frame header, tying the
    wire bytes back to the request's stitched trace.
    """
    frames: List[bytes] = []

    def header(seq: int, chunk: Sequence[Dict[str, object]]) -> dict:
        message = {
            "op": op,
            "fix": fix_name,
            "round": round_index,
            "shard": shard,
            "seq": seq,
            "tuples": [_encode_tuple(values) for values in chunk],
        }
        if trace_id:
            message["trace"] = trace_id
        return message

    def emit(chunk: Sequence[Dict[str, object]]) -> None:
        line = protocol.encode(header(len(frames), chunk))
        if len(line) <= protocol.MAX_LINE_BYTES:
            frames.append(line)
            return
        if len(chunk) <= 1:
            raise ProtocolError(
                f"one exchange tuple exceeds the {protocol.MAX_LINE_BYTES}"
                f"-byte frame limit"
            )
        middle = len(chunk) // 2
        emit(chunk[:middle])
        emit(chunk[middle:])

    if not tuples:
        return [protocol.encode(header(0, []))]
    for start in range(0, len(tuples), FRAME_TUPLES):
        emit(tuples[start : start + FRAME_TUPLES])
    return frames


def decode_tuples(frames: Iterable[bytes]) -> List[Dict[str, object]]:
    """Decode the tuple payloads of a frame sequence (order-preserving)."""
    tuples: List[Dict[str, object]] = []
    for line in frames:
        message = protocol.decode(line)
        payload = message.get("tuples")
        if not isinstance(payload, list):
            raise ProtocolError(
                f"exchange frame without a tuples array: {message.get('op')!r}"
            )
        tuples.extend(_decode_tuple(entry) for entry in payload)
    return tuples


@dataclass
class ExchangeStats:
    """Volume counters for one exchange leg or round (both directions
    are counted: a tuple scattered and its result gathered are two
    exchanged tuples, exactly as they would be two sends)."""

    tuples: int = 0
    bytes: int = 0
    frames: int = 0

    def count(self, frames: Sequence[bytes], tuple_count: int) -> None:
        self.frames += len(frames)
        self.bytes += sum(len(frame) for frame in frames)
        self.tuples += tuple_count

    def merge(self, other: "ExchangeStats") -> None:
        self.tuples += other.tuples
        self.bytes += other.bytes
        self.frames += other.frames


# -- per-shard telemetry ------------------------------------------------------

_telemetry_lock = threading.Lock()


def shard_telemetry_path() -> str:
    """Target JSONL file for per-round per-shard telemetry records;
    empty string disables (the default)."""
    return os.environ.get("REPRO_SHARD_TELEMETRY", "")


def write_shard_telemetry(record: dict) -> None:
    """Append one JSONL telemetry record (no-op unless
    ``REPRO_SHARD_TELEMETRY`` names a file).  CI uploads the file as a
    build artifact so sharded-round behaviour is inspectable per run."""
    path = shard_telemetry_path()
    if not path:
        return
    line = json.dumps(record, sort_keys=True, default=str)
    with _telemetry_lock:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
