"""Partitioning: how tuples and extents map onto shards.

Two placement kinds, mirroring the classical distributed-query split:

* **replicated** — every shard holds the extent in full.  The cluster
  replicates all *base* extents (zero-copy: shard stores share the
  immutable records and page placement, each behind its own buffer
  pool), because object-oriented plans dereference oids freely — a
  pointer join against a partitioned base extent would need remote
  fetches mid-operator.
* **partitioned** — tuples are divided across shards by a hash (or
  range) of a key.  The recursion's tuple space is partitioned this
  way at runtime: each semi-naive round hashes the delta on the
  recursion-binding columns, so each shard owns a disjoint slice of
  new-tuple discovery (the same partition function as
  :func:`repro.engine.parallel.partition_delta`, so the distributed
  rounds inherit the parallel path's count-additivity argument).

:class:`ShardMap` records these placements; the shard-key-aware cost
mode (:mod:`repro.cost.distributed`) consults the same notions to
decide shard-local vs repartitioning joins.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["hash_shard", "range_shard", "ShardMap"]

REPLICATED = "replicated"
PARTITIONED = "partitioned"


def hash_shard(key: Tuple[object, ...], shards: int) -> int:
    """Deterministic shard index of a partition-key tuple; identical
    hashing semantics to the parallel fixpoint's delta partitioner
    (including the unhashable-value fallback)."""
    try:
        return hash(key) % shards
    except TypeError:  # an unhashable field value; rare but legal
        return hash(repr(key)) % shards


def range_shard(value, boundaries: Sequence[object]) -> int:
    """Shard index of ``value`` under range partitioning: ``boundaries``
    is the sorted list of split points; values below the first boundary
    go to shard 0, between boundary ``i-1`` and ``i`` to shard ``i``."""
    return bisect_right(list(boundaries), value)


class ShardMap:
    """Placement metadata for one cluster.

    Every extent starts implicitly replicated (base data).  A
    distributed fixpoint registers its recursion as partitioned on its
    rebinding columns when it first runs, so observability and the
    cost model can see which keys route where.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self._placements: Dict[str, str] = {}
        self._partition_keys: Dict[str, Tuple[str, ...]] = {}
        self._range_boundaries: Dict[str, Tuple[object, ...]] = {}

    def place_replicated(self, name: str) -> None:
        self._placements[name] = REPLICATED
        self._partition_keys.pop(name, None)
        self._range_boundaries.pop(name, None)

    def place_partitioned(
        self,
        name: str,
        key_fields: Sequence[str],
        range_boundaries: Optional[Sequence[object]] = None,
    ) -> None:
        """Mark ``name`` hash-partitioned on ``key_fields`` (or
        range-partitioned on the single key field when ``range_boundaries``
        is given, one fewer boundary than shards)."""
        if range_boundaries is not None:
            if len(key_fields) != 1:
                raise ValueError("range partitioning takes exactly one key field")
            if len(range_boundaries) != self.shards - 1:
                raise ValueError(
                    f"range partitioning over {self.shards} shards needs "
                    f"{self.shards - 1} boundaries"
                )
            self._range_boundaries[name] = tuple(range_boundaries)
        else:
            self._range_boundaries.pop(name, None)
        self._placements[name] = PARTITIONED
        self._partition_keys[name] = tuple(key_fields)

    def placement(self, name: str) -> str:
        return self._placements.get(name, REPLICATED)

    def is_partitioned(self, name: str) -> bool:
        return self.placement(name) == PARTITIONED

    def partition_key(self, name: str) -> Tuple[str, ...]:
        return self._partition_keys.get(name, ())

    def shard_of(self, name: str, values: Dict[str, object]) -> Optional[int]:
        """The shard owning a tuple of a partitioned extent (None for
        replicated extents — any shard can serve them)."""
        if not self.is_partitioned(name):
            return None
        key_fields = self._partition_keys[name]
        boundaries = self._range_boundaries.get(name)
        if boundaries is not None:
            return range_shard(values.get(key_fields[0]), boundaries)
        return hash_shard(
            tuple(values.get(field) for field in key_fields), self.shards
        )

    def to_dict(self) -> dict:
        """JSON-friendly summary (shown by telemetry and docs tooling)."""
        return {
            "shards": self.shards,
            "placements": {
                name: {
                    "kind": kind,
                    "key": list(self._partition_keys.get(name, ())),
                    "scheme": (
                        "range" if name in self._range_boundaries else "hash"
                    )
                    if kind == PARTITIONED
                    else None,
                }
                for name, kind in sorted(self._placements.items())
            },
        }
