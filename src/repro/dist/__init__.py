"""Distribution subsystem: sharded store replicas and the distributed
scatter-gather semi-naive fixpoint.

Layout:

* :mod:`repro.dist.partition` — placement metadata (:class:`ShardMap`)
  and the hash/range shard-of functions;
* :mod:`repro.dist.exchange` — tuples as line-JSON frames (the service
  protocol's framing) plus exchange-volume accounting and the
  per-shard telemetry sink;
* :mod:`repro.dist.shard` — :class:`ShardWorker` (one shard: schema
  replica over a private buffer pool) and :class:`ShardSession` (one
  request's private view of a worker);
* :mod:`repro.dist.coordinator` — :class:`ShardCluster` and
  :func:`run_fixpoint_distributed`, the scatter-gather rounds.

Entry points: build a :class:`ShardCluster` over a physical schema,
hand it to an :class:`~repro.engine.evaluator.Engine` (``cluster=``,
``shards=N``) and execute plans as usual — every ``parallel_safe``
fixpoint runs distributed, and ``shards=1`` bypasses this package
entirely (exact single-process semantics).
"""

from repro.dist.coordinator import ShardCluster, run_fixpoint_distributed
from repro.dist.exchange import ExchangeStats, decode_tuples, encode_tuples
from repro.dist.partition import ShardMap, hash_shard, range_shard
from repro.dist.shard import ShardSession, ShardWorker

__all__ = [
    "ShardCluster",
    "ShardMap",
    "ShardSession",
    "ShardWorker",
    "ExchangeStats",
    "encode_tuples",
    "decode_tuples",
    "hash_shard",
    "range_shard",
    "run_fixpoint_distributed",
]
