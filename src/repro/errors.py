"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  Sub-hierarchies
mirror the package layout: schema errors, query-model errors, physical
storage errors, planning/optimization errors, execution errors and
language (parse) errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


# ---------------------------------------------------------------------------
# Conceptual schema
# ---------------------------------------------------------------------------

class SchemaError(ReproError):
    """A conceptual schema is malformed or used inconsistently."""


class UnknownClassError(SchemaError):
    """A class or relation name is not registered in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown class or relation: {name!r}")
        self.name = name


class UnknownAttributeError(SchemaError):
    """An attribute is not defined (directly or by inheritance) on a type."""

    def __init__(self, owner: str, attribute: str) -> None:
        super().__init__(f"type {owner!r} has no attribute {attribute!r}")
        self.owner = owner
        self.attribute = attribute


class TypeCheckError(SchemaError):
    """A value does not conform to its declared conceptual type."""


class CyclicInheritanceError(SchemaError):
    """The ``isa`` hierarchy contains a cycle."""


# ---------------------------------------------------------------------------
# Query model
# ---------------------------------------------------------------------------

class QueryModelError(ReproError):
    """A query graph or one of its parts is malformed."""


class InvalidPredicateError(QueryModelError):
    """A Boolean predicate is structurally invalid for its context."""


class RecursionError_(QueryModelError):
    """A recursive view definition is not computable as a fixpoint."""


# ---------------------------------------------------------------------------
# Physical schema / storage
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """The simulated object store was used incorrectly."""


class UnknownEntityError(StorageError):
    """An atomic physical entity name is not in the physical schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown physical entity: {name!r}")
        self.name = name


class UnknownIndexError(StorageError):
    """A selection or path index is not in the physical schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown index: {name!r}")
        self.name = name


class OidError(StorageError):
    """An oid does not resolve to a stored object."""

    def __init__(self, oid: object) -> None:
        super().__init__(f"dangling or foreign oid: {oid!r}")
        self.oid = oid


# ---------------------------------------------------------------------------
# Plans / optimization
# ---------------------------------------------------------------------------

class PlanError(ReproError):
    """A processing tree is structurally invalid."""


class OptimizationError(ReproError):
    """The optimizer could not produce a plan for a query graph."""


class CostModelError(ReproError):
    """The cost model was asked to cost an unsupported construct."""


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

class ExecutionError(ReproError):
    """A plan failed while being evaluated against the store."""


class FixpointLimitError(ExecutionError):
    """A semi-naive fixpoint exceeded the engine's iteration cap.

    Raised instead of looping unbounded on pathological cyclic data
    (e.g. a computed field growing along a cyclic reference chain).
    """

    def __init__(self, name: str, limit: int) -> None:
        super().__init__(
            f"Fix({name}) exceeded {limit} iterations; the recursion may "
            "be divergent (e.g. a computed field growing along a cyclic "
            "reference chain). Raise Engine(max_fix_iterations=...) if the "
            "recursion is legitimately this deep."
        )
        self.name = name
        self.limit = limit


class ExecutionCancelled(ExecutionError):
    """Plan evaluation was cancelled through a cancellation token."""


class ExecutionTimeout(ExecutionCancelled):
    """Plan evaluation exceeded its per-query deadline."""


# ---------------------------------------------------------------------------
# Query service
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for query-service failures."""


class AdmissionError(ServiceError):
    """A request was refused by admission control.

    ``reason`` is ``"over_budget"`` (estimated cost exceeds the
    configured budget) or ``"queue_full"`` (no execution slot became
    free within the queue timeout).
    """

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


class ProtocolError(ServiceError):
    """A malformed request or response on the service wire protocol."""


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------

class LanguageError(ReproError):
    """Base class for query-language front-end errors."""


class LexError(LanguageError):
    """The query text contains an unrecognizable token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """The query text is not well-formed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class CompileError(LanguageError):
    """A parsed query cannot be compiled onto the schema."""
