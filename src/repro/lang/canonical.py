"""Canonicalization of query text for plan-cache keys.

Two query texts that differ only in formatting — whitespace, comments,
redundant parentheses, the spelling of bound variables (``from x in
Composer`` vs ``from c in Composer``), or ``==`` vs ``=`` — compile to
the same query graph and deserve the same cached plan.  This module
parses the text and re-serializes the AST deterministically:

* every bound variable is renamed positionally (``v0``, ``v1``, ... in
  binding order, per statement scope), erasing alias choices;
* all layout is normalized to single spaces;
* ``==`` is folded into ``=``;
* conjunct/disjunct nesting is flattened the way the parser already
  flattens it.

View names, class names, attribute names and literals are semantic and
kept verbatim.  The result is a valid query text (it re-parses to an
equivalent program), so it doubles as a normal form for display.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang.ast import (
    AndNode,
    BinaryOp,
    Call,
    ComparisonNode,
    ExprNode,
    FieldNode,
    Literal,
    NotNode,
    OrNode,
    Path,
    PredicateNode,
    ProgramNode,
    SelectNode,
    SelectUnionNode,
)
from repro.lang.parser import parse

__all__ = ["canonical_text", "canonical_program"]


def canonical_text(text: str) -> str:
    """Parse ``text`` and return its canonical serialization.

    Raises the usual :class:`~repro.errors.LanguageError` subclasses on
    malformed input — a cache should not key on garbage.
    """
    return canonical_program(parse(text))


def canonical_program(program: ProgramNode) -> str:
    parts: List[str] = []
    for view in program.views:
        body = _select_union(view.body)
        parts.append(f"view {view.name} as {body};")
    parts.append(f"{_select_union(program.query)};")
    return "\n".join(parts)


def _select_union(node: SelectUnionNode) -> str:
    return " union ".join(_select(select) for select in node.selects)


def _select(node: SelectNode) -> str:
    # One rename scope per select: the language scopes range variables
    # to their select statement.
    names: Dict[str, str] = {}
    for binding in node.bindings:
        names.setdefault(binding.var, f"v{len(names)}")
    fields = ", ".join(
        f"{field.name}: {_expr(field.expr, names)}" for field in node.fields
    )
    bindings = ", ".join(
        f"{names[binding.var]} in {binding.source}"
        for binding in node.bindings
    )
    text = f"select [{fields}] from {bindings}"
    if node.predicate is not None:
        text += f" where {_predicate(node.predicate, names)}"
    return text


def _predicate(node: PredicateNode, names: Dict[str, str]) -> str:
    if isinstance(node, ComparisonNode):
        op = "=" if node.op == "==" else node.op
        return f"{_expr(node.left, names)} {op} {_expr(node.right, names)}"
    if isinstance(node, AndNode):
        return " and ".join(
            _group(part, names, (OrNode,)) for part in node.parts
        )
    if isinstance(node, OrNode):
        return " or ".join(
            _group(part, names, (AndNode,)) for part in node.parts
        )
    if isinstance(node, NotNode):
        return f"not {_group(node.part, names, (AndNode, OrNode))}"
    raise TypeError(f"unexpected predicate node {node!r}")


def _group(node: PredicateNode, names: Dict[str, str], wrap: tuple) -> str:
    text = _predicate(node, names)
    if isinstance(node, wrap):
        return f"({text})"
    return text


def _expr(node: ExprNode, names: Dict[str, str]) -> str:
    if isinstance(node, Literal):
        return _literal(node.value)
    if isinstance(node, Path):
        root = names.get(node.var, node.var)
        return ".".join([root, *node.attrs])
    if isinstance(node, Call):
        args = ", ".join(_expr(arg, names) for arg in node.args)
        return f"{node.name}({args})"
    if isinstance(node, BinaryOp):
        left = _operand(node.left, names)
        right = _operand(node.right, names)
        return f"{left} {node.op} {right}"
    raise TypeError(f"unexpected expression node {node!r}")


def _operand(node: ExprNode, names: Dict[str, str]) -> str:
    # Parenthesize nested arithmetic so the serialization re-parses to
    # the same tree regardless of precedence.
    text = _expr(node, names)
    if isinstance(node, BinaryOp):
        return f"({text})"
    return text


def _literal(value: object) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, float) and value == int(value):
        # The lexer produces float only for texts with a decimal point;
        # keep one so the round-trip stays a float.
        return f"{value:.1f}"
    return repr(value)
