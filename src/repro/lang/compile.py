"""Compile parsed programs to query graphs.

Each ``select`` becomes one predicate node (its ``from`` bindings the
incoming arcs, the ``where`` the Boolean predicate, the projection the
output spec); a view's union branches become multiple rules producing
the view's name node — exactly the shape the paper's ``rewrite`` step
expects to find.  The query itself produces the ``Answer`` name node.

Functions used in queries (e.g. ``add1gen``) are resolved against a
caller-supplied registry mapping name → ``(callable, eval_weight)``;
built-in arithmetic needs no registration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import CompileError
from repro.lang.ast import (
    AndNode,
    BinaryOp,
    BindingNode,
    Call,
    ComparisonNode,
    ExprNode,
    FieldNode,
    Literal,
    NotNode,
    OrNode,
    Path,
    PredicateNode,
    ProgramNode,
    SelectNode,
    SelectUnionNode,
    ViewDefNode,
)
from repro.lang.parser import parse
from repro.querygraph.graph import (
    Arc,
    OutputField,
    OutputSpec,
    QueryGraph,
    Rule,
    SPJNode,
)
from repro.querygraph.predicates import (
    And,
    Arith,
    Comparison,
    Const,
    Expr,
    FunctionApp,
    Not,
    Or,
    PathRef,
    Predicate,
    TruePredicate,
)
from repro.querygraph.tree_labels import TreeLabel
from repro.schema.catalog import Catalog

__all__ = ["compile_program", "compile_text", "FunctionRegistry"]

FunctionRegistry = Dict[str, Tuple[Callable[..., object], float]]

ANSWER = "Answer"


def compile_text(
    text: str,
    catalog: Optional[Catalog] = None,
    functions: Optional[FunctionRegistry] = None,
) -> QueryGraph:
    """Parse and compile query text to a query graph."""
    return compile_program(parse(text), catalog, functions)


def compile_program(
    program: ProgramNode,
    catalog: Optional[Catalog] = None,
    functions: Optional[FunctionRegistry] = None,
) -> QueryGraph:
    compiler = _Compiler(catalog, functions or {})
    rules: List[Rule] = []
    view_names = {view.name for view in program.views}
    for view in program.views:
        rules.extend(compiler.compile_union(view.name, view.body, view_names))
    rules.extend(compiler.compile_union(ANSWER, program.query, view_names))
    return QueryGraph(rules, ANSWER)


class _Compiler:
    def __init__(
        self, catalog: Optional[Catalog], functions: FunctionRegistry
    ) -> None:
        self.catalog = catalog
        self.functions = functions

    def compile_union(
        self, name: str, union: SelectUnionNode, view_names: set
    ) -> List[Rule]:
        return [
            Rule(name, self.compile_select(select, view_names))
            for select in union.selects
        ]

    def compile_select(self, select: SelectNode, view_names: set) -> SPJNode:
        seen_vars: Dict[str, str] = {}
        arcs: List[Arc] = []
        for binding in select.bindings:
            if binding.var in seen_vars:
                raise CompileError(
                    f"variable {binding.var!r} bound twice in one select"
                )
            seen_vars[binding.var] = binding.source
            if (
                self.catalog is not None
                and binding.source not in self.catalog
                and binding.source not in view_names
            ):
                raise CompileError(
                    f"unknown class, relation or view {binding.source!r}"
                )
            arcs.append(Arc(binding.source, TreeLabel.from_bindings({binding.var: "."})))
        predicate = (
            self.compile_predicate(select.predicate, seen_vars)
            if select.predicate is not None
            else TruePredicate()
        )
        fields = [
            OutputField(field.name, self.compile_expr(field.expr, seen_vars))
            for field in select.fields
        ]
        return SPJNode(arcs, predicate, OutputSpec(fields))

    # -- predicates ---------------------------------------------------------------

    def compile_predicate(
        self, node: PredicateNode, variables: Dict[str, str]
    ) -> Predicate:
        if isinstance(node, ComparisonNode):
            return Comparison(
                node.op,
                self.compile_expr(node.left, variables),
                self.compile_expr(node.right, variables),
            )
        if isinstance(node, AndNode):
            return And(
                *[self.compile_predicate(part, variables) for part in node.parts]
            )
        if isinstance(node, OrNode):
            return Or(
                *[self.compile_predicate(part, variables) for part in node.parts]
            )
        if isinstance(node, NotNode):
            return Not(self.compile_predicate(node.part, variables))
        raise CompileError(f"unknown predicate node {node!r}")

    # -- expressions -----------------------------------------------------------------

    def compile_expr(self, node: ExprNode, variables: Dict[str, str]) -> Expr:
        if isinstance(node, Literal):
            return Const(node.value)
        if isinstance(node, Path):
            if node.var not in variables:
                raise CompileError(
                    f"unbound variable {node.var!r} (range variables: "
                    f"{sorted(variables)})"
                )
            return PathRef(node.var, node.attrs)
        if isinstance(node, BinaryOp):
            return Arith(
                node.op,
                self.compile_expr(node.left, variables),
                self.compile_expr(node.right, variables),
            )
        if isinstance(node, Call):
            if node.name not in self.functions:
                raise CompileError(
                    f"unknown function {node.name!r}; register it in the "
                    "function registry"
                )
            fn, weight = self.functions[node.name]
            return FunctionApp(
                node.name,
                [self.compile_expr(arg, variables) for arg in node.args],
                fn,
                weight,
            )
        raise CompileError(f"unknown expression node {node!r}")
