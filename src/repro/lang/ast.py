"""Abstract syntax for the query language.

A program is a list of view definitions followed by one query.  The
AST mirrors the paper's surface syntax closely; compilation to query
graphs happens in :mod:`repro.lang.compile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Literal",
    "Path",
    "Call",
    "BinaryOp",
    "ExprNode",
    "ComparisonNode",
    "AndNode",
    "OrNode",
    "NotNode",
    "PredicateNode",
    "FieldNode",
    "BindingNode",
    "SelectNode",
    "SelectUnionNode",
    "ViewDefNode",
    "ProgramNode",
]


# -- expressions ---------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """A literal constant (number, string, bool, null)."""

    value: object


@dataclass(frozen=True)
class Path:
    """A path expression ``var.a1.a2...`` (a bare variable has no attrs)."""

    var: str
    attrs: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Call:
    """A function application ``name(args...)``."""

    name: str
    args: Tuple["ExprNode", ...]


@dataclass(frozen=True)
class BinaryOp:
    """Binary arithmetic: ``left op right``."""

    op: str  # + - * /
    left: "ExprNode"
    right: "ExprNode"


ExprNode = Union[Literal, Path, Call, BinaryOp]


# -- predicates -------------------------------------------------------------------

@dataclass(frozen=True)
class ComparisonNode:
    """A comparison ``left op right``."""

    op: str
    left: ExprNode
    right: ExprNode


@dataclass(frozen=True)
class AndNode:
    """Conjunction of predicates."""

    parts: Tuple["PredicateNode", ...]


@dataclass(frozen=True)
class OrNode:
    """Disjunction of predicates."""

    parts: Tuple["PredicateNode", ...]


@dataclass(frozen=True)
class NotNode:
    """Negated predicate."""

    part: "PredicateNode"


PredicateNode = Union[ComparisonNode, AndNode, OrNode, NotNode]


# -- statements -------------------------------------------------------------------------

@dataclass(frozen=True)
class FieldNode:
    """One output field ``name: expr``."""

    name: str
    expr: ExprNode


@dataclass(frozen=True)
class BindingNode:
    """One range binding ``var in Name``."""

    var: str
    source: str


@dataclass(frozen=True)
class SelectNode:
    """One select: projection, range bindings, optional where."""

    fields: Tuple[FieldNode, ...]
    bindings: Tuple[BindingNode, ...]
    predicate: Optional[PredicateNode]


@dataclass(frozen=True)
class SelectUnionNode:
    """One or more selects combined by ``union``."""

    selects: Tuple[SelectNode, ...]


@dataclass(frozen=True)
class ViewDefNode:
    """A named view definition ``view N as <select union>;``."""

    name: str
    body: SelectUnionNode


@dataclass(frozen=True)
class ProgramNode:
    """A full program: view definitions plus one query."""

    views: Tuple[ViewDefNode, ...]
    query: SelectUnionNode
