"""OQL-like query-language front-end: text → query graphs."""

from repro.lang.canonical import canonical_program, canonical_text
from repro.lang.compile import FunctionRegistry, compile_program, compile_text
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import Parser, parse

__all__ = [
    "FunctionRegistry",
    "canonical_program",
    "canonical_text",
    "compile_program",
    "compile_text",
    "Token",
    "tokenize",
    "Parser",
    "parse",
]
