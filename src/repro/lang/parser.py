"""Recursive-descent parser for the query language.

Grammar (informal)::

    program      := view_def* select_union ';'?
    view_def     := 'view' IDENT 'as' select_union ';'
    select_union := select ('union' select)*
    select       := 'select' projection 'from' bindings ('where' predicate)?
    projection   := '[' field (',' field)* ']' | expr
    field        := IDENT ':' expr
    bindings     := IDENT 'in' IDENT (',' IDENT 'in' IDENT)*
    predicate    := or ;  or := and ('or' and)* ;  and := unary ('and' unary)*
    unary        := 'not' unary | '(' predicate ')' | comparison
    comparison   := expr ('='|'=='|'!='|'<'|'<='|'>'|'>=') expr
    expr         := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)*
    factor       := literal | path | call | '(' expr ')'

A bare projection expression (``select x.name from ...``) names its
field after the final path component.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.lang.ast import (
    AndNode,
    BinaryOp,
    BindingNode,
    Call,
    ComparisonNode,
    ExprNode,
    FieldNode,
    Literal,
    NotNode,
    OrNode,
    Path,
    PredicateNode,
    ProgramNode,
    SelectNode,
    SelectUnionNode,
    ViewDefNode,
)
from repro.lang.lexer import Token, tokenize

__all__ = ["parse", "Parser"]

COMPARISON_OPS = {"=", "==", "!=", "<", "<=", ">", ">="}


def parse(text: str) -> ProgramNode:
    """Parse a full program (views + one query)."""
    return Parser(tokenize(text)).parse_program()


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self._position += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not token.is_(kind, value):
            wanted = value if value is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._peek().is_(kind, value):
            return self._advance()
        return None

    def _save(self) -> int:
        return self._position

    def _restore(self, mark: int) -> None:
        self._position = mark

    # -- program -----------------------------------------------------------------

    def parse_program(self) -> ProgramNode:
        views: List[ViewDefNode] = []
        while self._peek().is_("keyword", "view"):
            views.append(self._parse_view())
        query = self._parse_select_union()
        self._accept("punct", ";")
        token = self._peek()
        if not token.is_("eof"):
            raise ParseError(
                f"unexpected trailing input {token.value!r}",
                token.line,
                token.column,
            )
        return ProgramNode(tuple(views), query)

    def _parse_view(self) -> ViewDefNode:
        self._expect("keyword", "view")
        name = self._expect("ident").value
        self._expect("keyword", "as")
        body = self._parse_select_union()
        self._expect("punct", ";")
        return ViewDefNode(name, body)

    def _parse_select_union(self) -> SelectUnionNode:
        selects = [self._parse_select()]
        while self._accept("keyword", "union"):
            selects.append(self._parse_select())
        return SelectUnionNode(tuple(selects))

    def _parse_select(self) -> SelectNode:
        self._expect("keyword", "select")
        fields = self._parse_projection()
        self._expect("keyword", "from")
        bindings = self._parse_bindings()
        predicate: Optional[PredicateNode] = None
        if self._accept("keyword", "where"):
            predicate = self._parse_predicate()
        return SelectNode(tuple(fields), tuple(bindings), predicate)

    def _parse_projection(self) -> List[FieldNode]:
        if self._accept("punct", "["):
            fields = [self._parse_field()]
            while self._accept("punct", ","):
                fields.append(self._parse_field())
            self._expect("punct", "]")
            return fields
        expr = self._parse_expr()
        return [FieldNode(self._implicit_field_name(expr), expr)]

    def _implicit_field_name(self, expr: ExprNode) -> str:
        if isinstance(expr, Path):
            return expr.attrs[-1] if expr.attrs else expr.var
        if isinstance(expr, Call):
            return expr.name
        return "value"

    def _parse_field(self) -> FieldNode:
        name = self._expect("ident").value
        self._expect("punct", ":")
        return FieldNode(name, self._parse_expr())

    def _parse_bindings(self) -> List[BindingNode]:
        bindings = [self._parse_binding()]
        while self._accept("punct", ","):
            bindings.append(self._parse_binding())
        return bindings

    def _parse_binding(self) -> BindingNode:
        var = self._expect("ident").value
        self._expect("keyword", "in")
        source = self._expect("ident").value
        return BindingNode(var, source)

    # -- predicates ----------------------------------------------------------------------

    def _parse_predicate(self) -> PredicateNode:
        return self._parse_or()

    def _parse_or(self) -> PredicateNode:
        parts = [self._parse_and()]
        while self._accept("keyword", "or"):
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return OrNode(tuple(parts))

    def _parse_and(self) -> PredicateNode:
        parts = [self._parse_unary()]
        while self._accept("keyword", "and"):
            parts.append(self._parse_unary())
        if len(parts) == 1:
            return parts[0]
        return AndNode(tuple(parts))

    def _parse_unary(self) -> PredicateNode:
        if self._accept("keyword", "not"):
            return NotNode(self._parse_unary())
        if self._peek().is_("punct", "("):
            # '(' is ambiguous: parenthesized predicate or arithmetic
            # grouping inside a comparison.  Try the predicate reading
            # first; on failure, backtrack to a comparison.
            mark = self._save()
            try:
                self._expect("punct", "(")
                inner = self._parse_predicate()
                self._expect("punct", ")")
                return inner
            except ParseError:
                self._restore(mark)
        return self._parse_comparison()

    def _parse_comparison(self) -> PredicateNode:
        left = self._parse_expr()
        token = self._peek()
        if token.kind == "op" and token.value in COMPARISON_OPS:
            self._advance()
            right = self._parse_expr()
            return ComparisonNode(token.value, left, right)
        raise ParseError(
            f"expected a comparison operator, found {token.value!r}",
            token.line,
            token.column,
        )

    # -- expressions -----------------------------------------------------------------------

    def _parse_expr(self) -> ExprNode:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> ExprNode:
        left = self._parse_factor()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> ExprNode:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.kind == "string":
            self._advance()
            return Literal(token.value)
        if token.is_("keyword", "true"):
            self._advance()
            return Literal(True)
        if token.is_("keyword", "false"):
            self._advance()
            return Literal(False)
        if token.is_("keyword", "null"):
            self._advance()
            return Literal(None)
        if token.is_("punct", "("):
            self._advance()
            inner = self._parse_expr()
            self._expect("punct", ")")
            return inner
        if token.kind == "ident":
            return self._parse_path_or_call()
        raise ParseError(
            f"unexpected token {token.value!r}", token.line, token.column
        )

    def _parse_path_or_call(self) -> ExprNode:
        name = self._expect("ident").value
        if self._peek().is_("punct", "("):
            self._advance()
            args: List[ExprNode] = []
            if not self._peek().is_("punct", ")"):
                args.append(self._parse_expr())
                while self._accept("punct", ","):
                    args.append(self._parse_expr())
            self._expect("punct", ")")
            return Call(name, tuple(args))
        attrs: List[str] = []
        while self._peek().is_("punct", "."):
            self._advance()
            attrs.append(self._expect("ident").value)
        return Path(name, tuple(attrs))
