"""Lexer for the OQL-like query language.

The paper's queries are written in an ESQL/O2Query-style surface
(Section 1, Section 2.3)::

    view Influencer as
      select [master: x.master, disciple: x, gen: 1]
      from x in Composer
      union
      select [master: i.master, disciple: x, gen: i.gen + 1]
      from i in Influencer, x in Composer
      where i.disciple = x.master;

Tokens carry line/column positions for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import LexError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "in",
        "union",
        "view",
        "as",
        "and",
        "or",
        "not",
        "true",
        "false",
        "null",
    }
)

# Multi-character operators first so "<=" beats "<".
OPERATORS = ["<=", ">=", "!=", "==", "=", "<", ">", "+", "-", "*", "/"]
PUNCTUATION = {"(", ")", "[", "]", "{", "}", ",", ":", ";", "."}


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` is ``ident``, ``keyword``,
    ``number``, ``string``, ``op``, ``punct`` or ``eof``."""

    kind: str
    value: str
    line: int
    column: int

    def is_(self, kind: str, value: Optional[str] = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{self.kind}:{self.value!r}@{self.line}:{self.column}"


def tokenize(text: str) -> List[Token]:
    """Tokenize query text; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    line, column = 1, 1
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue
        if text.startswith("--", position):
            while position < length and text[position] != "\n":
                position += 1
            continue
        if char == '"' or char == "'":
            literal, consumed = _read_string(text, position, line, column)
            tokens.append(Token("string", literal, line, column))
            position += consumed
            column += consumed
            continue
        if char.isdigit():
            start = position
            while position < length and (
                text[position].isdigit() or text[position] == "."
            ):
                # A dot followed by a non-digit ends the number (it is
                # path punctuation, not a decimal point).
                if text[position] == "." and (
                    position + 1 >= length or not text[position + 1].isdigit()
                ):
                    break
                position += 1
            value = text[start:position]
            tokens.append(Token("number", value, line, column))
            column += position - start
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (
                text[position].isalnum() or text[position] == "_"
            ):
                position += 1
            word = text[start:position]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            value = word.lower() if kind == "keyword" else word
            tokens.append(Token(kind, value, line, column))
            column += position - start
            continue
        matched_operator = None
        for operator in OPERATORS:
            if text.startswith(operator, position):
                matched_operator = operator
                break
        if matched_operator is not None:
            tokens.append(Token("op", matched_operator, line, column))
            position += len(matched_operator)
            column += len(matched_operator)
            continue
        if char in PUNCTUATION:
            tokens.append(Token("punct", char, line, column))
            position += 1
            column += 1
            continue
        raise LexError(f"unexpected character {char!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens


def _read_string(text: str, position: int, line: int, column: int):
    quote = text[position]
    value_chars: List[str] = []
    cursor = position + 1
    while cursor < len(text):
        char = text[cursor]
        if char == "\\" and cursor + 1 < len(text):
            value_chars.append(text[cursor + 1])
            cursor += 2
            continue
        if char == quote:
            return "".join(value_chars), cursor - position + 1
        if char == "\n":
            break
        value_chars.append(char)
        cursor += 1
    raise LexError("unterminated string literal", line, column)
