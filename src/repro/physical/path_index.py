"""Path indices ([MS86]) and join indices ([Va87]).

A path index on ``C1.A1...A(n-1)`` materializes, for every complete
instantiation of the path, the tuple of oids ``(o1, o2, ..., on)`` of
the traversed objects.  The paper's example: a path index on
``works.instruments`` holds (Composer, Composition, Instrument) oid
triples and "speeds the access of the instruments used in the works of
a Composer".

Two access directions are supported, both B⁺-tree backed:

* **forward** — keyed by the head oid ``o1``; this is what the ``PIJ``
  node uses and what the Figure 5 cost formula
  ``||C|| * (nblevels + nbleaves/||C1||)`` models;
* **reverse** — keyed by the terminal object's oid (or, when the path
  is extended by an atomic attribute, by that atomic value), supporting
  selection pushdown through paths, as in [MS86]'s nested-attribute
  indices.

A join index ([Va87]) is the n=2 special case.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.physical.btree import BPlusTree
from repro.physical.storage import ObjectStore, Oid, StoredRecord

__all__ = ["PathIndex", "build_path_index", "SelectionIndex", "build_selection_index"]


class PathIndex:
    """A materialized index over a path of reference attributes."""

    def __init__(
        self,
        root_entity: str,
        attributes: Sequence[str],
        entities: Sequence[str],
        terminal_attribute: Optional[str] = None,
        order: int = 32,
    ) -> None:
        if len(entities) != len(attributes) + 1:
            raise StorageError(
                "a path over k attributes spans k+1 entities"
            )
        self.root_entity = root_entity
        self.attributes = tuple(attributes)
        self.entities = tuple(entities)
        # Optional atomic attribute of the terminal class that extends
        # the path (e.g. instruments.name); reverse lookups key on it.
        self.terminal_attribute = terminal_attribute
        self._forward = BPlusTree(order)
        self._reverse = BPlusTree(order)
        self._entries = 0

    @property
    def name(self) -> str:
        """Dotted attribute path, e.g. ``works.instruments``."""
        return ".".join(self.attributes)

    @property
    def full_name(self) -> str:
        return f"{self.root_entity}.{self.name}"

    # -- structural parameters (cost model) ---------------------------------

    @property
    def nblevels(self) -> int:
        return self._forward.nblevels

    @property
    def nbleaves(self) -> int:
        return self._forward.nbleaves

    @property
    def entry_count(self) -> int:
        return self._entries

    # -- population -----------------------------------------------------------

    def add(self, path_tuple: Tuple[Oid, ...], terminal_value: object = None) -> None:
        if len(path_tuple) != len(self.entities):
            raise StorageError(
                f"path tuple arity {len(path_tuple)} != {len(self.entities)}"
            )
        self._forward.insert(int(path_tuple[0]), path_tuple)
        reverse_key = (
            terminal_value
            if self.terminal_attribute is not None
            else int(path_tuple[-1])
        )
        self._reverse.insert(reverse_key, path_tuple)
        self._entries += 1

    # -- lookups ----------------------------------------------------------------

    def forward(self, head: Oid) -> List[Tuple[Oid, ...]]:
        """All complete path tuples rooted at ``head``."""
        return self._forward.search(int(head))

    def reverse(self, terminal_key: object) -> List[Tuple[Oid, ...]]:
        """All path tuples whose terminal matches ``terminal_key``.

        When the index has a ``terminal_attribute``, the key is that
        attribute's value; otherwise it is the terminal object's oid.
        """
        key = int(terminal_key) if isinstance(terminal_key, Oid) else terminal_key
        return self._reverse.search(key)

    def scan(self) -> Iterator[Tuple[Oid, ...]]:
        for _key, path_tuple in self._forward.items():
            yield path_tuple


def build_path_index(
    store: ObjectStore,
    root_entity: str,
    attributes: Sequence[str],
    entities: Sequence[str],
    terminal_attribute: Optional[str] = None,
    order: int = 32,
) -> PathIndex:
    """Materialize a path index by traversing the store.

    Traversal uses :meth:`ObjectStore.peek` — building an index is a
    setup activity, not a charged runtime access.
    """
    index = PathIndex(root_entity, attributes, entities, terminal_attribute, order)
    for head in store.extent(root_entity).records:
        for path_tuple in _expand(store, head, attributes):
            terminal_value = None
            if terminal_attribute is not None:
                terminal = store.peek(path_tuple[-1])
                terminal_value = terminal.values.get(terminal_attribute)
            index.add(path_tuple, terminal_value)
    return index


def _expand(
    store: ObjectStore, record: StoredRecord, attributes: Sequence[str]
) -> Iterator[Tuple[Oid, ...]]:
    """All complete oid tuples along ``attributes`` starting at record."""
    if not attributes:
        yield (record.oid,)
        return
    head, rest = attributes[0], attributes[1:]
    value = record.values.get(head)
    if value is None:
        return
    children = (
        [value] if isinstance(value, Oid) else [v for v in value if isinstance(v, Oid)]
    )
    for child_oid in children:
        child = store.peek(child_oid)
        for suffix in _expand(store, child, rest):
            yield (record.oid,) + suffix


class SelectionIndex:
    """A B⁺-tree secondary index on one attribute of one entity."""

    def __init__(self, entity: str, attribute: str, order: int = 32) -> None:
        self.entity = entity
        self.attribute = attribute
        self._tree = BPlusTree(order)

    @property
    def name(self) -> str:
        return f"{self.entity}.{self.attribute}"

    @property
    def nblevels(self) -> int:
        return self._tree.nblevels

    @property
    def nbleaves(self) -> int:
        return self._tree.nbleaves

    @property
    def entry_count(self) -> int:
        return len(self._tree)

    @property
    def distinct_keys(self) -> int:
        return self._tree.distinct_keys

    def add(self, key: object, oid: Oid) -> None:
        self._tree.insert(key, oid)

    def lookup(self, key: object) -> List[Oid]:
        return self._tree.search(key)

    def range(
        self, low: object = None, high: object = None,
        include_low: bool = True, include_high: bool = True,
    ) -> Iterator[Tuple[object, Oid]]:
        return self._tree.range_search(low, high, include_low, include_high)


def build_selection_index(
    store: ObjectStore, entity: str, attribute: str, order: int = 32
) -> SelectionIndex:
    """Materialize a selection index over ``entity.attribute``."""
    index = SelectionIndex(entity, attribute, order)
    for record in store.extent(entity).records:
        value = record.values.get(attribute)
        if value is not None and not isinstance(value, (tuple, list)):
            index.add(value, record.oid)
    return index
