"""Static clustering strategies ([VKC86], Section 3).

The direct storage model "allows for clustering the instances of the
sub-objects close to the owner object record (e.g., in a same or
neighbor disk page).  A static clustering strategy is assumed."

A :class:`ClusterTree` declares which reference attributes to cluster
along, starting from a root class, e.g.::

    ClusterTree("Composer", {"works": ClusterTree("Composition",
                                                  {"instruments": None})})

Applying it re-places the root extent and the reachable sub-object
extents into one shared segment, placing each owner followed by its
(transitively) clustered sub-objects.  A sub-object shared by several
owners is clustered next to the first owner that reaches it; records
never reached from any root stay in an overflow area of the same
segment.  Extents not mentioned in the tree keep their own segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import StorageError
from repro.physical.pages import PagedSegment
from repro.physical.storage import ObjectStore, Oid, StoredRecord

__all__ = ["ClusterTree", "apply_clustering", "cluster_along_path"]


@dataclass
class ClusterTree:
    """Declarative description of a multiclass cluster hierarchy.

    ``root`` is the owning class; ``children`` maps a reference
    attribute of the root to an optional nested :class:`ClusterTree`
    for the attribute's target class (None means: cluster the target's
    records but do not recurse further).
    """

    root: str
    children: Dict[str, Optional["ClusterTree"]] = field(default_factory=dict)

    def extent_names(self, store: ObjectStore) -> Set[str]:
        """All extent names that participate in this cluster tree."""
        names = {self.root}
        for attribute, subtree in self.children.items():
            if subtree is not None:
                names |= subtree.extent_names(store)
            else:
                names |= self._targets_of(store, attribute)
        return names

    def _targets_of(self, store: ObjectStore, attribute: str) -> Set[str]:
        targets: Set[str] = set()
        for record in store.extent(self.root).records:
            for oid in _reference_oids(record, attribute):
                targets.add(store.entity_of(oid))
        return targets


def _reference_oids(record: StoredRecord, attribute: str) -> List[Oid]:
    value = record.values.get(attribute)
    if value is None:
        return []
    if isinstance(value, Oid):
        return [value]
    if isinstance(value, (tuple, list)):
        return [v for v in value if isinstance(v, Oid)]
    return []


def apply_clustering(
    store: ObjectStore,
    tree: ClusterTree,
    records_per_page: Optional[int] = None,
    page_aligned_owners: bool = False,
) -> PagedSegment:
    """Re-place the extents of ``tree`` into one shared cluster segment.

    Returns the new segment.  When ``page_aligned_owners`` is set, each
    root owner's cluster starts on a fresh page — this trades space for
    a guarantee that one owner's cluster never straddles an unrelated
    owner's page.
    """
    participants = tree.extent_names(store)
    segment_name = "cluster(" + "+".join(sorted(participants)) + ")"
    rpp = records_per_page or store.extent(tree.root).records_per_page
    segment = PagedSegment(segment_name, rpp)

    placed: Set[Oid] = set()

    def place(record: StoredRecord) -> None:
        if record.oid in placed:
            return
        placed.add(record.oid)
        segment.append_record(int(record.oid))

    def place_cluster(record: StoredRecord, node: ClusterTree) -> None:
        place(record)
        for attribute, subtree in node.children.items():
            for oid in _reference_oids(record, attribute):
                child = store.peek(oid)
                if child.oid in placed:
                    continue
                if subtree is not None:
                    place_cluster(child, subtree)
                else:
                    place(child)

    for owner in store.extent(tree.root).records:
        if page_aligned_owners:
            segment.open_new_page()
        place_cluster(owner, tree)

    # Overflow area: participant records unreachable from any root.
    for name in sorted(participants):
        for record in store.extent(name).records:
            place(record)

    placements = {name: segment for name in participants}
    store.replace_segment(placements, {})
    return segment


def cluster_along_path(
    store: ObjectStore,
    root: str,
    attributes: List[str],
    targets: List[str],
    records_per_page: Optional[int] = None,
) -> PagedSegment:
    """Convenience: cluster along a linear path ``root.a1.a2...``.

    ``targets`` gives the class stored at the end of each hop (the
    caller resolves these from the conceptual catalog); a
    :class:`ClusterTree` spine is built and applied.
    """
    if len(attributes) != len(targets):
        raise StorageError("attributes and targets must align")
    if not attributes:
        raise StorageError("empty clustering path")
    # Build the spine bottom-up: the i-th tree owns attribute i+1's tree.
    spine: Optional[ClusterTree] = None
    for i in range(len(attributes) - 1, -1, -1):
        children: Dict[str, Optional[ClusterTree]] = {}
        if i + 1 < len(attributes):
            children[attributes[i + 1]] = spine
        spine = ClusterTree(targets[i], children)
    tree = ClusterTree(root, {attributes[0]: spine})
    return apply_clustering(store, tree, records_per_page)
