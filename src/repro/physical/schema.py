"""The physical schema: atomic entities, indices and statistics.

Glues together the storage substrate: which atomic entities exist
(non-decomposed extensions, fragments, temporaries), which selection
and path indices are available, and the statistics the cost model
reads.  The ``translate`` optimization step consults this object to map
conceptual names onto physical entities and to find applicable path
indices for the ``collapse`` action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError, UnknownEntityError, UnknownIndexError
from repro.physical.buffer import BufferPool
from repro.physical.fragments import FragmentInfo
from repro.physical.path_index import (
    PathIndex,
    SelectionIndex,
    build_path_index,
    build_selection_index,
)
from repro.physical.stats import Statistics
from repro.physical.storage import ObjectStore
from repro.schema.catalog import Catalog

__all__ = ["EntityInfo", "PhysicalSchema"]


@dataclass
class EntityInfo:
    """Descriptor of one atomic physical entity.

    ``kind`` is one of ``extent`` (a non-decomposed extension),
    ``fragment`` (horizontal/vertical decomposition product) or
    ``temp`` (an intermediate-result file such as the materialized
    ``Influencer``).  ``conceptual_name`` is the class/relation this
    entity implements (fragments and temps point at their origin).
    """

    name: str
    kind: str
    conceptual_name: Optional[str] = None
    fragment: Optional[FragmentInfo] = None


class PhysicalSchema:
    """Registry of atomic entities, indices and statistics."""

    def __init__(self, store: ObjectStore, catalog: Optional[Catalog] = None) -> None:
        self.store = store
        self.catalog = catalog
        self._entities: Dict[str, EntityInfo] = {}
        self._implements: Dict[str, List[str]] = {}
        self._selection_indices: Dict[Tuple[str, str], SelectionIndex] = {}
        self._path_indices: Dict[Tuple[str, Tuple[str, ...]], PathIndex] = {}
        self._statistics: Optional[Statistics] = None
        self._temp_counter = 0

    # -- entity registration ------------------------------------------------

    def register_extent(
        self,
        name: str,
        conceptual_name: Optional[str] = None,
        records_per_page: Optional[int] = None,
    ) -> EntityInfo:
        """Create and register the extent implementing a class/relation."""
        if not self.store.has_extent(name):
            self.store.create_extent(name, records_per_page)
        info = EntityInfo(name, "extent", conceptual_name or name)
        self._register(info)
        return info

    def register_fragment(self, fragment: FragmentInfo) -> EntityInfo:
        """Register an already-materialized fragment as an atomic entity."""
        base = self.entity(fragment.base_entity)
        info = EntityInfo(
            fragment.name, "fragment", base.conceptual_name, fragment
        )
        self._register(info)
        return info

    def register_temp(self, conceptual_name: str, records_per_page: Optional[int] = None) -> EntityInfo:
        """Create a fresh temporary entity (intermediate-result file)."""
        self._temp_counter += 1
        name = f"__temp{self._temp_counter}_{conceptual_name}"
        self.store.create_extent(name, records_per_page)
        info = EntityInfo(name, "temp", conceptual_name)
        self._register(info)
        return info

    def _register(self, info: EntityInfo) -> None:
        if info.name in self._entities:
            raise StorageError(f"entity {info.name!r} already registered")
        self._entities[info.name] = info
        if info.conceptual_name is not None:
            self._implements.setdefault(info.conceptual_name, []).append(info.name)
        self._statistics = None  # invalidate

    def drop_temp(self, name: str) -> None:
        info = self.entity(name)
        if info.kind != "temp":
            raise StorageError(f"{name!r} is not a temporary entity")
        self.store.drop_extent(name)
        del self._entities[name]
        if info.conceptual_name is not None:
            self._implements[info.conceptual_name].remove(name)
        self._statistics = None

    # -- lookup ---------------------------------------------------------------

    def entity(self, name: str) -> EntityInfo:
        try:
            return self._entities[name]
        except KeyError:
            raise UnknownEntityError(name) from None

    def has_entity(self, name: str) -> bool:
        return name in self._entities

    def entities(self) -> Iterator[EntityInfo]:
        return iter(self._entities.values())

    def implementations_of(self, conceptual_name: str) -> List[EntityInfo]:
        """Atomic entities implementing a conceptual class/relation.

        The primary (non-decomposed) extent comes first when present.
        """
        names = self._implements.get(conceptual_name, [])
        infos = [self._entities[name] for name in names]
        infos.sort(key=lambda info: 0 if info.kind == "extent" else 1)
        return infos

    def primary_entity(self, conceptual_name: str) -> EntityInfo:
        """The non-decomposed extent for a conceptual name."""
        for info in self.implementations_of(conceptual_name):
            if info.kind == "extent":
                return info
        raise UnknownEntityError(conceptual_name)

    # -- indices -----------------------------------------------------------------

    def build_selection_index(self, entity: str, attribute: str) -> SelectionIndex:
        self.entity(entity)
        index = build_selection_index(self.store, entity, attribute)
        self._selection_indices[(entity, attribute)] = index
        return index

    def selection_index(self, entity: str, attribute: str) -> Optional[SelectionIndex]:
        return self._selection_indices.get((entity, attribute))

    def has_selection_index(self, entity: str, attribute: str) -> bool:
        return (entity, attribute) in self._selection_indices

    def selection_indices(self) -> Iterator[SelectionIndex]:
        return iter(self._selection_indices.values())

    def build_path_index(
        self,
        root_entity: str,
        attributes: Sequence[str],
        entities: Sequence[str],
        terminal_attribute: Optional[str] = None,
    ) -> PathIndex:
        self.entity(root_entity)
        index = build_path_index(
            self.store, root_entity, attributes, entities, terminal_attribute
        )
        self._path_indices[(root_entity, tuple(attributes))] = index
        return index

    def path_index(
        self, root_entity: str, attributes: Sequence[str]
    ) -> Optional[PathIndex]:
        return self._path_indices.get((root_entity, tuple(attributes)))

    def find_path_index(self, attributes: Sequence[str]) -> Optional[PathIndex]:
        """Find a path index by attribute sequence alone.

        The paper's ``collapse`` action checks ``existPathIndex(p2.p1)``
        by attribute path (e.g. ``works.instruments``) — the root entity
        is implied by the pattern being collapsed.
        """
        wanted = tuple(attributes)
        for (_root, path), index in self._path_indices.items():
            if path == wanted:
                return index
        return None

    def path_indices(self) -> Iterator[PathIndex]:
        return iter(self._path_indices.values())

    # -- shard / session views -------------------------------------------------------

    def shard_view(self, store: ObjectStore) -> "PhysicalSchema":
        """A schema view over a replica ``store`` (see
        :meth:`ObjectStore.replica_view`), for shard workers and
        per-request shard sessions.

        The view shares the catalog and all built indices (index
        payloads are oids, valid in every replica since records are
        shared), but owns shallow copies of the entity namespaces so
        temporaries registered through the view — delta staging extents
        — stay private to it and never race with the source schema.
        """
        view = PhysicalSchema.__new__(PhysicalSchema)
        view.store = store
        view.catalog = self.catalog
        view._entities = dict(self._entities)
        view._implements = {
            name: list(entities) for name, entities in self._implements.items()
        }
        view._selection_indices = dict(self._selection_indices)
        view._path_indices = dict(self._path_indices)
        view._statistics = None
        view._temp_counter = self._temp_counter
        return view

    # -- statistics ------------------------------------------------------------------

    @property
    def statistics(self) -> Statistics:
        if self._statistics is None:
            self._statistics = Statistics(self.store)
        return self._statistics

    def refresh_statistics(self) -> Statistics:
        self._statistics = Statistics(self.store)
        return self._statistics
