"""Physical storage substrate (Section 3 of the paper).

A simulated direct-storage OODB: pages and segments
(:mod:`~repro.physical.pages`), an LRU buffer pool with I/O accounting
(:mod:`~repro.physical.buffer`), the object store
(:mod:`~repro.physical.storage`), static multiclass clustering
(:mod:`~repro.physical.clustering`), horizontal/vertical fragments
(:mod:`~repro.physical.fragments`), B⁺-trees
(:mod:`~repro.physical.btree`), path/selection indices
(:mod:`~repro.physical.path_index`), statistics
(:mod:`~repro.physical.stats`) and the physical schema registry
(:mod:`~repro.physical.schema`).
"""

from repro.physical.btree import BPlusTree
from repro.physical.buffer import BufferPool, BufferStats
from repro.physical.clustering import ClusterTree, apply_clustering, cluster_along_path
from repro.physical.fragments import (
    SOURCE_ATTRIBUTE,
    FragmentInfo,
    create_horizontal_fragment,
    create_vertical_fragment,
)
from repro.physical.pages import DEFAULT_RECORDS_PER_PAGE, Page, PagedSegment, PageId
from repro.physical.path_index import (
    PathIndex,
    SelectionIndex,
    build_path_index,
    build_selection_index,
)
from repro.physical.schema import EntityInfo, PhysicalSchema
from repro.physical.stats import EntityStatistics, Statistics
from repro.physical.storage import Extent, ObjectStore, Oid, StoredRecord

__all__ = [
    "BPlusTree",
    "BufferPool",
    "BufferStats",
    "ClusterTree",
    "apply_clustering",
    "cluster_along_path",
    "SOURCE_ATTRIBUTE",
    "FragmentInfo",
    "create_horizontal_fragment",
    "create_vertical_fragment",
    "DEFAULT_RECORDS_PER_PAGE",
    "Page",
    "PagedSegment",
    "PageId",
    "PathIndex",
    "SelectionIndex",
    "build_path_index",
    "build_selection_index",
    "EntityInfo",
    "PhysicalSchema",
    "EntityStatistics",
    "Statistics",
    "Extent",
    "ObjectStore",
    "Oid",
    "StoredRecord",
]
