"""Horizontal and vertical decomposition of extensions (Section 3).

"The physical model also allows for decomposing extensions into
horizontal or vertical fragments to optimize the processing of
selections and projections."

A fragment is a first-class atomic entity: its records get their own
pages, so scanning a narrow vertical fragment or a small horizontal
fragment touches fewer pages than scanning the base extent.  Fragment
records carry a ``__source__`` attribute holding the base object's oid,
so results can be re-joined with the base when needed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import StorageError
from repro.physical.storage import ObjectStore, Oid, StoredRecord

__all__ = [
    "SOURCE_ATTRIBUTE",
    "FragmentInfo",
    "create_horizontal_fragment",
    "create_vertical_fragment",
]

SOURCE_ATTRIBUTE = "__source__"


class FragmentInfo:
    """Provenance of a fragment entity."""

    def __init__(
        self,
        name: str,
        base_entity: str,
        kind: str,
        attributes: Optional[Sequence[str]] = None,
        description: str = "",
    ) -> None:
        if kind not in ("horizontal", "vertical"):
            raise StorageError(f"unknown fragment kind {kind!r}")
        self.name = name
        self.base_entity = base_entity
        self.kind = kind
        self.attributes = tuple(attributes) if attributes is not None else None
        self.description = description

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"FragmentInfo({self.name!r}, {self.kind} of {self.base_entity!r})"


def create_horizontal_fragment(
    store: ObjectStore,
    base_entity: str,
    fragment_name: str,
    predicate: Callable[[StoredRecord], bool],
    description: str = "",
    records_per_page: Optional[int] = None,
) -> FragmentInfo:
    """Materialize the subset of ``base_entity`` satisfying ``predicate``.

    The fragment holds full copies of the qualifying records (all
    attributes), placed densely on fresh pages.
    """
    base = store.extent(base_entity)
    store.create_extent(fragment_name, records_per_page or base.records_per_page)
    for record in base.records:
        if predicate(record):
            values = dict(record.values)
            values[SOURCE_ATTRIBUTE] = record.oid
            store.insert(fragment_name, values)
    return FragmentInfo(
        fragment_name, base_entity, "horizontal", None, description
    )


def create_vertical_fragment(
    store: ObjectStore,
    base_entity: str,
    fragment_name: str,
    attributes: Sequence[str],
    description: str = "",
    records_per_page: Optional[int] = None,
) -> FragmentInfo:
    """Materialize the projection of ``base_entity`` on ``attributes``.

    Narrow records pack more densely: unless overridden, the fragment's
    records-per-page scales up by the ratio of dropped attributes, the
    standard payoff of vertical partitioning.
    """
    base = store.extent(base_entity)
    if records_per_page is None:
        base_width = _typical_width(base.records)
        kept = len(attributes) + 1  # +1 for the source oid
        scale = max(1.0, base_width / max(1, kept))
        records_per_page = max(1, int(base.records_per_page * scale))
    store.create_extent(fragment_name, records_per_page)
    for record in base.records:
        values: Dict[str, object] = {
            name: record.values.get(name) for name in attributes
        }
        values[SOURCE_ATTRIBUTE] = record.oid
        store.insert(fragment_name, values)
    return FragmentInfo(
        fragment_name, base_entity, "vertical", attributes, description
    )


def _typical_width(records: List[StoredRecord]) -> int:
    if not records:
        return 1
    return max(1, max(len(record.values) for record in records[:32]))
