"""A B⁺-tree, used for selection indices and as the path-index backbone.

"Selection or path indices are assumed to be implemented as B⁺-trees"
(Section 3.2).  The cost model needs two structural parameters from an
index: ``nblevels`` (its height) and ``nbleaves`` (its leaf count), so
this is a real node-based B⁺-tree, not a sorted-dict stand-in — the
structural parameters fall out of the actual shape.

Keys must be mutually comparable; values are opaque.  Duplicate keys
are supported: each leaf entry holds the list of values inserted under
its key, which is the natural shape for a secondary index (one key,
many oids).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["BPlusTree"]

DEFAULT_ORDER = 32


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: List[Any] = []

    def is_leaf(self) -> bool:
        raise NotImplementedError


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__()
        self.values: List[List[Any]] = []
        self.next: Optional["_Leaf"] = None

    def is_leaf(self) -> bool:
        return True


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: List[_Node] = []

    def is_leaf(self) -> bool:
        return False


def _bisect_right(keys: List[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _bisect_left(keys: List[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTree:
    """A B⁺-tree with duplicate-key support and leaf chaining.

    ``order`` is the maximum number of keys per node; nodes split when
    they would exceed it.
    """

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise ValueError("B+-tree order must be >= 3")
        self.order = order
        self._root: _Node = _Leaf()
        self._size = 0  # number of (key, value) pairs
        self._distinct = 0  # number of distinct keys

    # -- structural parameters used by the cost model -----------------------

    @property
    def nblevels(self) -> int:
        """Height of the tree (1 for a lone leaf) — ``nblevels(I)``."""
        levels = 1
        node = self._root
        while not node.is_leaf():
            node = node.children[0]  # type: ignore[attr-defined]
            levels += 1
        return levels

    @property
    def nbleaves(self) -> int:
        """Number of leaf nodes — ``nbleaves(I)``."""
        count = 0
        leaf = self._leftmost_leaf()
        while leaf is not None:
            count += 1
            leaf = leaf.next
        return count

    def __len__(self) -> int:
        return self._size

    @property
    def distinct_keys(self) -> int:
        return self._distinct

    # -- mutation ------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(
        self, node: _Node, key: Any, value: Any
    ) -> Optional[Tuple[Any, _Node]]:
        if node.is_leaf():
            leaf = node  # type: _Leaf
            index = _bisect_left(leaf.keys, key)
            if index < len(leaf.keys) and leaf.keys[index] == key:
                leaf.values[index].append(value)
                self._size += 1
                return None
            leaf.keys.insert(index, key)
            leaf.values.insert(index, [value])
            self._size += 1
            self._distinct += 1
            if len(leaf.keys) > self.order:
                return self._split_leaf(leaf)
            return None
        internal = node  # type: _Internal
        index = _bisect_right(internal.keys, key)
        split = self._insert(internal.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        internal.keys.insert(index, separator)
        internal.children.insert(index + 1, right)
        if len(internal.keys) > self.order:
            return self._split_internal(internal)
        return None

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Any, _Node]:
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, internal: _Internal) -> Tuple[Any, _Node]:
        middle = len(internal.keys) // 2
        separator = internal.keys[middle]
        right = _Internal()
        right.keys = internal.keys[middle + 1:]
        right.children = internal.children[middle + 1:]
        internal.keys = internal.keys[:middle]
        internal.children = internal.children[:middle + 1]
        return separator, right

    # -- lookup ----------------------------------------------------------------

    def _leftmost_leaf(self) -> Optional[_Leaf]:
        node = self._root
        while not node.is_leaf():
            node = node.children[0]  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while not node.is_leaf():
            internal = node  # type: _Internal
            index = _bisect_right(internal.keys, key)
            node = internal.children[index]
        return node  # type: ignore[return-value]

    def search(self, key: Any) -> List[Any]:
        """All values stored under ``key`` (empty list when absent)."""
        leaf = self._find_leaf(key)
        index = _bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def contains(self, key: Any) -> bool:
        leaf = self._find_leaf(key)
        index = _bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def range_search(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high``.

        Bounds of None are open; inclusion flags control strictness.
        """
        if low is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            index = 0
        else:
            leaf = self._find_leaf(low)
            index = (
                _bisect_left(leaf.keys, low)
                if include_low
                else _bisect_right(leaf.keys, low)
            )
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high is not None:
                    if include_high:
                        if high < key:
                            return
                    elif not (key < high):
                        return
                for value in leaf.values[index]:
                    yield key, value
                index += 1
            leaf = leaf.next
            index = 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return self.range_search()

    def keys(self) -> Iterator[Any]:
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for key in leaf.keys:
                yield key
            leaf = leaf.next

    # -- invariant checking (used by property tests) -----------------------------

    def check_invariants(self) -> None:
        """Assert B⁺-tree structural invariants; raises AssertionError."""
        self._check_node(self._root, None, None, is_root=True)
        # Leaf chain must be sorted and cover all keys.
        previous = None
        for key in self.keys():
            if previous is not None:
                assert previous < key, "leaf chain out of order"
            previous = key

    def _check_node(
        self, node: _Node, low: Any, high: Any, is_root: bool = False
    ) -> int:
        assert node.keys == sorted(node.keys), "node keys unsorted"
        if not is_root:
            minimum = 1 if node.is_leaf() else self.order // 2 - 1
            assert len(node.keys) >= max(1, minimum) or node.is_leaf(), (
                "underfull internal node"
            )
        for key in node.keys:
            if low is not None:
                assert not (key < low), "key below subtree bound"
            if high is not None:
                assert key < high or key == high, "key above subtree bound"
        if node.is_leaf():
            return 1
        internal = node  # type: _Internal
        assert len(internal.children) == len(internal.keys) + 1
        depths = set()
        bounds = [low] + list(internal.keys) + [high]
        for index, child in enumerate(internal.children):
            depths.add(
                self._check_node(child, bounds[index], bounds[index + 1])
            )
        assert len(depths) == 1, "unbalanced subtree depths"
        return depths.pop() + 1
