"""Disk-page abstraction for the simulated object store.

The paper's cost model is page-grained: ``|C|`` is the number of pages
an entity occupies, and every basic-operation formula charges page
accesses.  We simulate pages as fixed-capacity containers of record
slots.  A page is identified by a :class:`PageId` (a segment name plus
an offset); the buffer pool uses these ids as cache keys.

Record sizes are modelled in abstract *slot units* rather than bytes:
an entity declares how many of its records fit on one page
(``records_per_page``), which is what 1992-era analytic cost models
parameterized as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["PageId", "Page", "PagedSegment", "DEFAULT_RECORDS_PER_PAGE"]

DEFAULT_RECORDS_PER_PAGE = 20


@dataclass(frozen=True, order=True)
class PageId:
    """Identifier of one page: a segment name plus a page offset."""

    segment: str
    number: int

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{self.segment}#{self.number}"


class Page:
    """One simulated disk page holding record slots.

    Slots store opaque record keys (oids or value-record ids); the
    actual record payloads live in the store.  A page only needs to
    know *which* records it holds so scans can resolve them.
    """

    __slots__ = ("page_id", "capacity", "slots")

    def __init__(self, page_id: PageId, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("page capacity must be positive")
        self.page_id = page_id
        self.capacity = capacity
        self.slots: List[int] = []

    def is_full(self) -> bool:
        return len(self.slots) >= self.capacity

    def add(self, record_key: int) -> None:
        if self.is_full():
            raise ValueError(f"page {self.page_id!r} is full")
        self.slots.append(record_key)

    def __len__(self) -> int:
        return len(self.slots)


class PagedSegment:
    """An append-only sequence of pages within one storage segment.

    Segments model the physical placement unit: one segment per
    non-clustered extent, or one shared segment for a multiclass
    cluster tree (owner and sub-objects interleaved, Section 3).
    """

    def __init__(self, name: str, records_per_page: int = DEFAULT_RECORDS_PER_PAGE) -> None:
        self.name = name
        self.records_per_page = records_per_page
        self.pages: List[Page] = []

    def append_record(self, record_key: int) -> PageId:
        """Place a record on the last page, opening a new one when full."""
        if not self.pages or self.pages[-1].is_full():
            self.pages.append(
                Page(PageId(self.name, len(self.pages)), self.records_per_page)
            )
        page = self.pages[-1]
        page.add(record_key)
        return page.page_id

    def open_new_page(self) -> None:
        """Force the next record onto a fresh page (used by clustering
        strategies to start each owner's cluster on a page boundary)."""
        if self.pages and len(self.pages[-1]) > 0:
            self.pages.append(
                Page(PageId(self.name, len(self.pages)), self.records_per_page)
            )

    def page_count(self) -> int:
        return len(self.pages)

    def page_ids(self) -> List[PageId]:
        return [page.page_id for page in self.pages]

    def record_count(self) -> int:
        return sum(len(page) for page in self.pages)
