"""The simulated direct-storage object store.

Implements the physical model of Section 3 ([VKC86]): objects are
records holding atomic values and the *oids* of their sub-objects
(direct storage).  Records live on simulated pages grouped into
segments; every record access goes through the buffer pool so that
page-grain I/O is observable.

The store is deliberately in-memory — the paper's evaluation is
analytic and all of its comparisons are expressed in page touches and
predicate evaluations, which the simulator counts exactly.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.errors import OidError, StorageError, UnknownEntityError
from repro.physical.buffer import BufferPool
from repro.physical.pages import DEFAULT_RECORDS_PER_PAGE, PageId, PagedSegment

__all__ = ["Oid", "StoredRecord", "Extent", "ObjectStore"]


class Oid(int):
    """An object identifier.

    A subclass of :class:`int` so oids are cheap, hashable and ordered,
    while still being distinguishable (``isinstance(v, Oid)``) from
    plain integer attribute values — the store's records mix both.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return f"oid:{int(self)}"


class StoredRecord:
    """One stored object or relation value.

    ``values`` maps attribute names to atomic Python values, ``Oid``s
    (single-valued references) or tuples of ``Oid``s (set/list-valued
    references).  ``page_id`` is assigned at placement time.
    """

    __slots__ = ("oid", "entity", "values", "page_id")

    def __init__(self, oid: Oid, entity: str, values: Dict[str, object]) -> None:
        self.oid = oid
        self.entity = entity
        self.values = values
        self.page_id: Optional[PageId] = None

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"<{self.entity} {self.oid!r}>"


class Extent:
    """All stored records of one atomic physical entity."""

    def __init__(self, name: str, records_per_page: int) -> None:
        self.name = name
        self.records_per_page = records_per_page
        self.records: List[StoredRecord] = []
        self.by_oid: Dict[Oid, StoredRecord] = {}
        # The segment the extent is placed in.  Initially its own; a
        # clustering strategy may re-place records into a shared segment.
        self.segment: PagedSegment = PagedSegment(name, records_per_page)

    def add(self, record: StoredRecord) -> None:
        self.records.append(record)
        self.by_oid[record.oid] = record

    def __len__(self) -> int:
        return len(self.records)

    def page_ids(self) -> List[PageId]:
        """Distinct pages holding at least one record of this extent.

        For an extent placed in its own segment this is simply the
        segment's pages; for an extent interleaved into a shared
        cluster segment it is the subset of shared pages the extent's
        records sit on.
        """
        seen: Set[PageId] = set()
        ordered: List[PageId] = []
        for record in self.records:
            if record.page_id is not None and record.page_id not in seen:
                seen.add(record.page_id)
                ordered.append(record.page_id)
        return ordered

    def page_count(self) -> int:
        return len(self.page_ids())


class ObjectStore:
    """Direct-storage object store with page-grain buffered access."""

    def __init__(
        self,
        buffer_pool: Optional[BufferPool] = None,
        records_per_page: int = DEFAULT_RECORDS_PER_PAGE,
    ) -> None:
        self.buffer = buffer_pool if buffer_pool is not None else BufferPool()
        self.default_records_per_page = records_per_page
        self._extents: Dict[str, Extent] = {}
        self._records: Dict[Oid, StoredRecord] = {}
        self._next_oid = 1

    # -- extent management --------------------------------------------------

    def create_extent(
        self, name: str, records_per_page: Optional[int] = None
    ) -> Extent:
        if name in self._extents:
            raise StorageError(f"extent {name!r} already exists")
        extent = Extent(
            name, records_per_page or self.default_records_per_page
        )
        self._extents[name] = extent
        return extent

    def has_extent(self, name: str) -> bool:
        return name in self._extents

    def extent(self, name: str) -> Extent:
        try:
            return self._extents[name]
        except KeyError:
            raise UnknownEntityError(name) from None

    def extent_names(self) -> List[str]:
        return list(self._extents)

    def drop_extent(self, name: str) -> None:
        extent = self.extent(name)
        for record in extent.records:
            del self._records[record.oid]
        del self._extents[name]

    # -- record creation ----------------------------------------------------

    def insert(self, entity: str, values: Mapping[str, object]) -> Oid:
        """Insert a record, placing it immediately in the extent's
        own segment (no clustering).  A clustering strategy may later
        re-place all records (see :mod:`repro.physical.clustering`)."""
        extent = self.extent(entity)
        oid = Oid(self._next_oid)
        self._next_oid += 1
        record = StoredRecord(oid, entity, dict(values))
        record.page_id = extent.segment.append_record(int(oid))
        extent.add(record)
        self._records[oid] = record
        return oid

    # -- buffered access ----------------------------------------------------

    def fetch(self, oid: Oid) -> StoredRecord:
        """Fetch one record by oid, charging a page touch."""
        record = self._records.get(oid)
        if record is None:
            raise OidError(oid)
        if record.page_id is not None:
            self.buffer.touch(record.page_id)
        return record

    def peek(self, oid: Oid) -> StoredRecord:
        """Fetch a record *without* charging I/O.

        Used by index builders, statistics collection and test
        assertions — anything that would not be a runtime page access.
        """
        record = self._records.get(oid)
        if record is None:
            raise OidError(oid)
        return record

    def scan(self, entity: str) -> Iterator[StoredRecord]:
        """Sequentially scan an extent, touching each of its pages once.

        The scan is page-ordered: records come out grouped by page, and
        each page is charged exactly one logical read, matching the
        sequential-scan term of ``access_cost``.
        """
        extent = self.extent(entity)
        by_page: Dict[PageId, List[StoredRecord]] = {}
        for record in extent.records:
            if record.page_id is None:
                raise StorageError(
                    f"record {record.oid!r} of {entity!r} is unplaced"
                )
            by_page.setdefault(record.page_id, []).append(record)
        for page_id in sorted(by_page):
            self.buffer.touch(page_id)
            for record in by_page[page_id]:
                yield record

    def entity_of(self, oid: Oid) -> str:
        record = self._records.get(oid)
        if record is None:
            raise OidError(oid)
        return record.entity

    # -- placement (used by clustering strategies) ---------------------------

    def replace_segment(
        self, placements: Mapping[str, PagedSegment], orderings: Mapping[str, List[Oid]]
    ) -> None:
        """Atomically re-place extents into new segments.

        ``placements`` maps extent name to its (already filled) new
        segment; ``orderings`` gives, per extent, the oid order in which
        records were appended so page ids can be re-derived.  Clustering
        strategies build the segments and call this once.
        """
        for name in placements:
            self.extent(name)  # raises on unknown extents
        for name, segment in placements.items():
            extent = self.extent(name)
            extent.segment = segment
        # Re-derive page ids from the segments' slot contents.
        for name, segment in placements.items():
            for page in segment.pages:
                for slot in page.slots:
                    record = self._records.get(Oid(slot))
                    if record is None:
                        raise OidError(slot)
                    record.page_id = page.page_id

    # -- shard / session replicas --------------------------------------------

    def replica_view(
        self,
        buffer_pool: BufferPool,
        oid_offset: int = 0,
    ) -> "ObjectStore":
        """A replica of this store for a shard worker or a per-request
        session.

        The replica *shares* every :class:`StoredRecord`, every
        :class:`Extent` and the page placement with this store
        (zero-copy — the base data is immutable at runtime), but owns
        shallow copies of the extent/record namespaces so that extents
        created through the replica (delta staging temps) stay private,
        and reads pages through ``buffer_pool`` so its I/O is charged to
        the replica's owner.

        ``oid_offset`` shifts the replica's oid allocator into a
        disjoint range.  Replica-private records (staged delta tuples)
        then can never collide with oids minted by the source store, so
        a replica-local oid that leaks into another store fails loudly
        as an :class:`OidError` instead of silently resolving to an
        unrelated record.
        """
        view = ObjectStore.__new__(ObjectStore)
        view.buffer = buffer_pool
        view.default_records_per_page = self.default_records_per_page
        view._extents = dict(self._extents)
        view._records = dict(self._records)
        view._next_oid = self._next_oid + oid_offset
        return view

    # -- whole-store summaries -----------------------------------------------

    def record_count(self) -> int:
        return len(self._records)

    def page_count(self) -> int:
        seen: Set[PageId] = set()
        for record in self._records.values():
            if record.page_id is not None:
                seen.add(record.page_id)
        return len(seen)
