"""LRU buffer pool with I/O accounting.

The paper's ``access_cost`` footnote says the model "takes into account
the fact that some of the needed data are already in main memory and
need not be fetched from disk".  The buffer pool is the component that
makes this true in the simulator: every page touch is a *logical* read;
only misses are *physical* reads.  The engine reports both so cost-model
validation benchmarks can compare estimated page I/O against measured
physical reads.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.physical.pages import PageId

__all__ = ["BufferStats", "BufferPool", "BufferView"]


@dataclass
class BufferStats:
    """Counters maintained by the buffer pool."""

    logical_reads: int = 0
    physical_reads: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.logical_reads - self.physical_reads

    @property
    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 0.0
        return self.hits / self.logical_reads

    def snapshot(self) -> "BufferStats":
        return BufferStats(self.logical_reads, self.physical_reads, self.evictions)

    def delta_since(self, earlier: "BufferStats") -> "BufferStats":
        return BufferStats(
            self.logical_reads - earlier.logical_reads,
            self.physical_reads - earlier.physical_reads,
            self.evictions - earlier.evictions,
        )


class BufferPool:
    """A fixed-capacity LRU page cache.

    ``capacity`` is measured in pages.  A capacity of 0 disables
    caching entirely (every logical read is physical) — convenient for
    benchmarks that want the raw analytic page counts of the paper's
    simplified cost model.
    """

    def __init__(self, capacity: int = 256, io_latency: float = 0.0) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0")
        self.capacity = capacity
        self.stats = BufferStats()
        #: Simulated device latency per physical read, in seconds.  0.0
        #: (the default) keeps the simulator purely analytic; the
        #: parallel-fixpoint benchmark sets it so the workload becomes
        #: I/O-bound and worker threads genuinely overlap their waits
        #: (the sleep happens outside the pool lock).
        self.io_latency = io_latency
        self._resident: "OrderedDict[PageId, None]" = OrderedDict()
        #: Residency and counters are shared across parallel-fixpoint
        #: workers; one lock keeps the LRU bookkeeping consistent.
        self._lock = threading.Lock()

    def touch(self, page_id: PageId) -> bool:
        """Access a page; return True on a buffer hit."""
        with self._lock:
            self.stats.logical_reads += 1
            if self.capacity == 0:
                self.stats.physical_reads += 1
                hit = False
            elif page_id in self._resident:
                self._resident.move_to_end(page_id)
                hit = True
            else:
                self.stats.physical_reads += 1
                self._resident[page_id] = None
                if len(self._resident) > self.capacity:
                    self._resident.popitem(last=False)
                    self.stats.evictions += 1
                hit = False
        if not hit and self.io_latency > 0.0:
            time.sleep(self.io_latency)
        return hit

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._resident

    def resident_count(self) -> int:
        return len(self._resident)

    def clear(self) -> None:
        """Drop all resident pages (counters are preserved)."""
        self._resident.clear()

    def reset_stats(self) -> None:
        self.stats = BufferStats()

    def view(self) -> "BufferView":
        """A private counting view over this pool (see
        :class:`BufferView`)."""
        return BufferView(self)


class BufferView:
    """A counting view over a shared :class:`BufferPool`.

    Residency — which pages are cached, the LRU order and the simulated
    miss latency — stays with the parent pool, so concurrent users of
    the same shard genuinely share its cache.  The *counters* accrue
    privately: each view has its own :class:`BufferStats`, which is what
    lets the service attribute a shard's page reads to the one request
    that caused them even when shard workers serve several coordinators
    at once.  Hit/miss classification is taken from the parent's
    verdict, so a view's physical reads reflect the true shared
    residency at the time of the touch.
    """

    def __init__(self, parent: BufferPool) -> None:
        self.parent = parent
        self.stats = BufferStats()

    @property
    def capacity(self) -> int:
        return self.parent.capacity

    @property
    def io_latency(self) -> float:
        return self.parent.io_latency

    def touch(self, page_id: PageId) -> bool:
        hit = self.parent.touch(page_id)
        self.stats.logical_reads += 1
        if not hit:
            self.stats.physical_reads += 1
        return hit

    def contains(self, page_id: PageId) -> bool:
        return self.parent.contains(page_id)

    def resident_count(self) -> int:
        return self.parent.resident_count()

    def reset_stats(self) -> None:
        self.stats = BufferStats()
