"""Physical statistics used by the cost model.

Provides the paper's schema parameters — ``|C|`` (pages), ``||C||``
(instances), index ``nblevels``/``nbleaves`` — plus the derived
quantities the basic-operation formulas need: attribute selectivities
(from distinct-value counts), reference fan-outs, clustering fractions
and recursion-depth estimates for fixpoint costing.

Statistics are collected by an offline pass over the store (using
``peek``, charging no simulated I/O), as a real system's ANALYZE would.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.physical.storage import ObjectStore, Oid

__all__ = ["EntityStatistics", "Statistics"]


MAX_TRACKED_VALUES = 512


class EntityStatistics:
    """Collected statistics for one atomic entity."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.pages = 0  # |C|
        self.instances = 0  # ||C||
        self.distinct: Dict[str, int] = {}
        self.non_null: Dict[str, int] = {}
        self.fanout: Dict[str, float] = {}  # avg refs per instance
        self.min_value: Dict[str, object] = {}
        self.max_value: Dict[str, object] = {}
        #: attr -> value -> extent frequency (capped; None when overflown)
        self.frequency: Dict[str, Optional[Dict[object, int]]] = {}
        #: attr -> value -> frequency weighted by how often the owning
        #: record is *referenced* from elsewhere — the distribution an
        #: implicit-join-expanded stream actually sees (a popular
        #: instrument shows up in many works even if the extent holds
        #: it once).
        self.weighted_frequency: Dict[str, Optional[Dict[object, float]]] = {}
        self.weighted_total: Dict[str, float] = {}

    def eq_selectivity(self, attribute: str) -> float:
        """Selectivity of ``attribute = constant`` (uniformity assumption)."""
        distinct = self.distinct.get(attribute, 0)
        if distinct <= 0 or self.instances == 0:
            return 1.0
        non_null_fraction = self.non_null.get(attribute, 0) / self.instances
        return non_null_fraction / distinct

    def range_selectivity(self, attribute: str) -> float:
        """Default selectivity of an inequality predicate (System R's 1/3)."""
        if self.instances == 0:
            return 1.0
        return 1.0 / 3.0

    def value_selectivity(self, attribute: str, value: object) -> Optional[float]:
        """Fraction of *extent* records with ``attribute = value``
        (None when frequencies were not trackable)."""
        frequencies = self.frequency.get(attribute)
        if frequencies is None or self.instances == 0:
            return None
        try:
            return frequencies.get(value, 0) / self.instances
        except TypeError:
            return None

    def weighted_value_selectivity(
        self, attribute: str, value: object
    ) -> Optional[float]:
        """Fraction of the reference-weighted stream with
        ``attribute = value`` — the right selectivity for a selection
        applied *after* an implicit join reached this entity."""
        frequencies = self.weighted_frequency.get(attribute)
        total = self.weighted_total.get(attribute, 0.0)
        if frequencies is None or total <= 0:
            return None
        try:
            return frequencies.get(value, 0.0) / total
        except TypeError:
            return None


class Statistics:
    """Whole-store statistics with recursion-depth estimation."""

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        self._entities: Dict[str, EntityStatistics] = {}
        self._chain_depth_cache: Dict[Tuple[str, str], List[int]] = {}
        self.refresh()

    def refresh(self) -> None:
        """Recollect statistics for every extent."""
        self._entities.clear()
        self._chain_depth_cache.clear()
        weights = self._reference_weights()
        for name in self._store.extent_names():
            self._entities[name] = self._collect(name, weights)

    def _reference_weights(self) -> Dict[Oid, int]:
        """How many times each object is referenced from any record."""
        weights: Dict[Oid, int] = {}
        for name in self._store.extent_names():
            for record in self._store.extent(name).records:
                for value in record.values.values():
                    if isinstance(value, Oid):
                        weights[value] = weights.get(value, 0) + 1
                    elif isinstance(value, (tuple, list)):
                        for element in value:
                            if isinstance(element, Oid):
                                weights[element] = weights.get(element, 0) + 1
        return weights

    def _collect(
        self, name: str, weights: Optional[Dict[Oid, int]] = None
    ) -> EntityStatistics:
        extent = self._store.extent(name)
        stats = EntityStatistics(name)
        stats.instances = len(extent)
        stats.pages = max(1, extent.page_count()) if len(extent) else 0
        distinct: Dict[str, Set[object]] = {}
        ref_counts: Dict[str, int] = {}
        weights = weights or {}
        for record in extent.records:
            record_weight = float(weights.get(record.oid, 0))
            for attribute, value in record.values.items():
                if value is None:
                    continue
                stats.non_null[attribute] = stats.non_null.get(attribute, 0) + 1
                if isinstance(value, (tuple, list)):
                    ref_counts[attribute] = ref_counts.get(attribute, 0) + len(value)
                    continue
                if isinstance(value, Oid):
                    ref_counts[attribute] = ref_counts.get(attribute, 0) + 1
                distinct.setdefault(attribute, set()).add(value)
                self._note_frequency(stats, attribute, value, record_weight)
                current_min = stats.min_value.get(attribute)
                current_max = stats.max_value.get(attribute)
                try:
                    if current_min is None or value < current_min:  # type: ignore[operator]
                        stats.min_value[attribute] = value
                    if current_max is None or value > current_max:  # type: ignore[operator]
                        stats.max_value[attribute] = value
                except TypeError:
                    pass
        for attribute, values in distinct.items():
            stats.distinct[attribute] = len(values)
        if stats.instances:
            for attribute, count in ref_counts.items():
                stats.fanout[attribute] = count / stats.instances
        return stats

    def _note_frequency(
        self,
        stats: EntityStatistics,
        attribute: str,
        value: object,
        record_weight: float,
    ) -> None:
        if isinstance(value, Oid):
            return  # reference identities are not selection constants
        frequencies = stats.frequency.setdefault(attribute, {})
        if frequencies is not None:
            try:
                frequencies[value] = frequencies.get(value, 0) + 1
            except TypeError:
                stats.frequency[attribute] = None
                frequencies = None
            if frequencies is not None and len(frequencies) > MAX_TRACKED_VALUES:
                stats.frequency[attribute] = None
        weighted = stats.weighted_frequency.setdefault(attribute, {})
        if weighted is not None:
            try:
                weighted[value] = weighted.get(value, 0.0) + record_weight
            except TypeError:
                stats.weighted_frequency[attribute] = None
                weighted = None
            if weighted is not None and len(weighted) > MAX_TRACKED_VALUES:
                stats.weighted_frequency[attribute] = None
        stats.weighted_total[attribute] = (
            stats.weighted_total.get(attribute, 0.0) + record_weight
        )

    # -- lookups ---------------------------------------------------------------

    def entity(self, name: str) -> EntityStatistics:
        if name not in self._entities:
            # Entity created after the last refresh (e.g. a temp file):
            # collect it lazily.
            self._entities[name] = self._collect(name)
        return self._entities[name]

    def pages(self, name: str) -> int:
        """``|C|`` — pages the entity occupies (at least 1 when non-empty)."""
        return self.entity(name).pages

    def instances(self, name: str) -> int:
        """``||C||`` — instance count."""
        return self.entity(name).instances

    def fanout(self, name: str, attribute: str) -> float:
        """Average number of sub-objects referenced through attribute."""
        return self.entity(name).fanout.get(attribute, 1.0)

    def eq_selectivity(self, name: str, attribute: str) -> float:
        return self.entity(name).eq_selectivity(attribute)

    def clustered_fraction(self, owner: str, attribute: str) -> float:
        """Fraction of ``owner.attribute`` references whose target sits on
        the owner's own page — the clustering payoff ``access_cost(Ci, Cj)``
        depends on (Section 3.2)."""
        extent = self._store.extent(owner)
        total = 0
        colocated = 0
        for record in extent.records:
            value = record.values.get(attribute)
            oids: List[Oid]
            if isinstance(value, Oid):
                oids = [value]
            elif isinstance(value, (tuple, list)):
                oids = [v for v in value if isinstance(v, Oid)]
            else:
                continue
            for oid in oids:
                total += 1
                try:
                    target = self._store.peek(oid)
                except Exception:
                    continue
                if target.page_id == record.page_id:
                    colocated += 1
        if total == 0:
            return 0.0
        return colocated / total

    # -- recursion statistics -----------------------------------------------------

    def chain_depths(self, entity: str, attribute: str) -> List[int]:
        """Per-record chain length along a self-referencing attribute.

        The depth of a record is the longest path following
        ``attribute`` references before reaching a null (or a cycle
        back-edge, which is treated as a chain end)."""
        key = (entity, attribute)
        cached = self._chain_depth_cache.get(key)
        if cached is not None:
            return cached
        depths = self._compute_chain_depths(entity, attribute)
        self._chain_depth_cache[key] = depths
        return depths

    def chain_survivors(self, entity: str, attribute: str) -> List[int]:
        """``survivors[g]`` = number of records whose chain along
        ``attribute`` has length > ``g`` — the exact size of the
        semi-naive delta at iteration ``g+1`` of a transitive closure
        over that attribute (iteration 0 produces one tuple per record
        with a non-null reference)."""
        depths = self.chain_depths(entity, attribute)
        if not depths:
            return []
        maximum = max(depths)
        return [
            sum(1 for depth in depths if depth >= g)
            for g in range(1, maximum + 1)
        ]

    def chain_depth(self, entity: str, attribute: str) -> Tuple[int, float]:
        """(max, mean) length of reference chains along a self-referencing
        attribute — the estimate for the number of semi-naive iterations
        of a transitive closure over that attribute."""
        depths = self.chain_depths(entity, attribute)
        if depths:
            return (max(depths), sum(depths) / len(depths))
        return (0, 0.0)

    def _compute_chain_depths(self, entity: str, attribute: str) -> List[int]:
        extent = self._store.extent(entity)
        depth_of: Dict[Oid, int] = {}

        def depth(oid: Oid, trail: Set[Oid]) -> int:
            if oid in depth_of:
                return depth_of[oid]
            if oid in trail:
                return 0  # cycle guard: treat back-edges as chain ends
            trail.add(oid)
            record = self._store.peek(oid)
            value = record.values.get(attribute)
            result = 0
            if isinstance(value, Oid):
                result = 1 + depth(value, trail)
            elif isinstance(value, (tuple, list)):
                child_depths = [
                    1 + depth(v, trail) for v in value if isinstance(v, Oid)
                ]
                result = max(child_depths) if child_depths else 0
            trail.discard(oid)
            depth_of[oid] = result
            return result

        return [depth(record.oid, set()) for record in extent.records]

    def estimated_fixpoint_iterations(self, entity: str, attribute: str) -> int:
        """Estimated semi-naive iteration count ``n`` of Figure 5's Fix row."""
        max_depth, _mean = self.chain_depth(entity, attribute)
        return max(1, max_depth)
