"""Rendering of processing trees.

Two renderings are provided: the paper's *functional-term* notation
(``Answer = IJ_disc(Sel_name="harpsichord"(...), Composer)``) and an
indented tree for humans reading benchmark output.  The tree renderer
accepts an optional per-node annotation callback, which is how
``EXPLAIN ANALYZE`` (:mod:`repro.obs.explain`) prints estimated vs.
actual figures next to each operator.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.plans.nodes import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)

__all__ = ["render_functional", "render_tree"]


def render_functional(node: PlanNode) -> str:
    """The paper's functional-term notation for a PT."""
    if isinstance(node, EntityLeaf):
        return node.entity
    if isinstance(node, TempLeaf):
        return node.entity
    if isinstance(node, RecLeaf):
        return node.name
    if isinstance(node, Sel):
        return f"Sel_{{{node.predicate!r}}}({render_functional(node.child)})"
    if isinstance(node, Proj):
        fields = ", ".join(f.name for f in node.fields.fields)
        return f"Proj_{{{fields}}}({render_functional(node.child)})"
    if isinstance(node, IJ):
        return (
            f"IJ_{{{node.attr_name}}}("
            f"{render_functional(node.child)}, {node.target.entity})"
        )
    if isinstance(node, PIJ):
        targets = ", ".join(t.entity for t in node.targets)
        return (
            f"PIJ_{{{node.path_name}}}("
            f"{render_functional(node.child)}, {targets})"
        )
    if isinstance(node, EJ):
        return (
            f"EJ_{{{node.predicate!r}}}("
            f"{render_functional(node.left)}, {render_functional(node.right)})"
        )
    if isinstance(node, UnionOp):
        return (
            f"Union({render_functional(node.left)}, "
            f"{render_functional(node.right)})"
        )
    if isinstance(node, Fix):
        return f"Fix({node.name}, {render_functional(node.body)})"
    if isinstance(node, Materialize):
        return f"Mat({node.name}, {render_functional(node.child)})"
    return node.label()


#: Optional annotation callback: node -> (suffix appended to the
#: label line, extra lines printed indented under the node).
Annotator = Callable[[PlanNode], Tuple[str, List[str]]]


def render_tree(node: PlanNode, annotate: Optional[Annotator] = None) -> str:
    """Indented multi-line rendering, one operator per line."""
    lines: List[str] = []
    _render(node, "", True, lines, is_root=True, annotate=annotate)
    return "\n".join(lines)


def _render(
    node: PlanNode,
    prefix: str,
    last: bool,
    lines: List[str],
    is_root: bool = False,
    annotate: Optional[Annotator] = None,
) -> None:
    suffix, extra = ("", [])
    if annotate is not None:
        suffix, extra = annotate(node)
    if is_root:
        lines.append(node.label() + suffix)
        child_prefix = ""
    else:
        connector = "`-- " if last else "|-- "
        lines.append(prefix + connector + node.label() + suffix)
        child_prefix = prefix + ("    " if last else "|   ")
    has_children = bool(node.children)
    for line in extra:
        lines.append(child_prefix + ("|   " if has_children else "    ") + line)
    children = node.children
    for index, child in enumerate(children):
        _render(
            child,
            child_prefix,
            index == len(children) - 1,
            lines,
            annotate=annotate,
        )
