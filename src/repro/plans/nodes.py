"""Processing-Tree (PT) node algebra (Section 3.1).

"PTs can be considered as an algebra for specifying the query
execution: the interior nodes are operators (e.g., join, union) and the
leaf nodes are atomic entities of the physical schema referenced in the
query."

Nodes are treated as *functional terms*: they are immutable after
construction, compare structurally, and support generic reconstruction
(:meth:`PlanNode.with_children`), which is what lets optimizer actions
be written as term rewrites (Section 4).

Execution semantics (consumed by :mod:`repro.engine`): every node
produces a stream of *bindings* — dictionaries mapping variable names
to stored records, temp tuples or atomic values.

* :class:`EntityLeaf` — an atomic entity; as a plan input it scans its
  extent binding ``var`` to each record; as the right child of an
  ``IJ``/``PIJ`` it is the dereference target (not scanned).
* :class:`TempLeaf` — a temporary file of tuples (k=0 case).
* :class:`RecLeaf` — the recursion placeholder inside a ``Fix`` body;
  at runtime it yields the semi-naive *delta* of the named recursion.
* :class:`Sel` — filters bindings by a predicate.
* :class:`Proj` — computes named output fields; its output bindings
  are keyed by the field names.
* :class:`IJ` — implicit join: dereference ``source`` (an attribute
  path on an already-bound variable) into the target entity, binding
  ``out_var``; multivalued references expand.
* :class:`PIJ` — implicit join over ≥2 hops implemented by a path
  index.
* :class:`EJ` — explicit join with a join predicate (nested-loop or
  index algorithm).
* :class:`UnionOp` — bag union of two compatible streams.
* :class:`Fix` — fixpoint of its body (a union of base and recursive
  parts), materialized into a temporary; binds ``out_var`` downstream.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanError
from repro.querygraph.graph import OutputSpec
from repro.querygraph.predicates import PathRef, Predicate

__all__ = [
    "PlanNode",
    "EntityLeaf",
    "TempLeaf",
    "RecLeaf",
    "Sel",
    "Proj",
    "IJ",
    "PIJ",
    "EJ",
    "UnionOp",
    "Fix",
    "Materialize",
    "NESTED_LOOP",
    "INDEX_JOIN",
]

NESTED_LOOP = "nested_loop"
INDEX_JOIN = "index_join"


class PlanNode:
    """Abstract base of PT nodes."""

    __slots__ = ()

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        raise NotImplementedError

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """Rebuild this node with new children, keeping other fields."""
        raise NotImplementedError

    def output_vars(self) -> Set[str]:
        """Variables bound in the bindings this node produces."""
        raise NotImplementedError

    def label(self) -> str:
        """Short operator label used by the plan printer."""
        raise NotImplementedError

    # -- generic term utilities ----------------------------------------------

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def substitute(self, old: "PlanNode", new: "PlanNode") -> "PlanNode":
        """Return a copy with every occurrence of ``old`` replaced."""
        if self == old:
            return new
        children = self.children
        if not children:
            return self
        rebuilt = tuple(child.substitute(old, new) for child in children)
        if rebuilt == children:
            return self
        return self.with_children(rebuilt)

    def contains(self, other: "PlanNode") -> bool:
        return any(node == other for node in self.walk())

    def leaf_entities(self) -> List[str]:
        """Names of all atomic entities referenced in the subtree."""
        return [
            node.entity
            for node in self.walk()
            if isinstance(node, (EntityLeaf, TempLeaf))
        ]

    def size(self) -> int:
        return sum(1 for _node in self.walk())

    def _key(self) -> object:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PlanNode) and other._key() == self._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        from repro.plans.display import render_functional

        return render_functional(self)


# ---------------------------------------------------------------------------
# Leaves (k = 0)
# ---------------------------------------------------------------------------

class EntityLeaf(PlanNode):
    """An atomic entity of the physical schema, binding ``var``."""

    __slots__ = ("entity", "var")

    def __init__(self, entity: str, var: str) -> None:
        self.entity = entity
        self.var = var

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return ()

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        if children:
            raise PlanError("EntityLeaf takes no children")
        return self

    def output_vars(self) -> Set[str]:
        return {self.var}

    def label(self) -> str:
        return self.entity

    def _key(self) -> object:
        return ("entity", self.entity, self.var)


class TempLeaf(PlanNode):
    """A temporary file of tuples, binding ``var`` to each tuple."""

    __slots__ = ("entity", "var")

    def __init__(self, entity: str, var: str) -> None:
        self.entity = entity
        self.var = var

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return ()

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        if children:
            raise PlanError("TempLeaf takes no children")
        return self

    def output_vars(self) -> Set[str]:
        return {self.var}

    def label(self) -> str:
        return self.entity

    def _key(self) -> object:
        return ("temp", self.entity, self.var)


class RecLeaf(PlanNode):
    """The recursion placeholder inside a Fix body (the delta stream)."""

    __slots__ = ("name", "var")

    def __init__(self, name: str, var: str) -> None:
        self.name = name
        self.var = var

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return ()

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        if children:
            raise PlanError("RecLeaf takes no children")
        return self

    def output_vars(self) -> Set[str]:
        return {self.var}

    def label(self) -> str:
        return f"Δ{self.name}"

    def _key(self) -> object:
        return ("rec", self.name, self.var)


# ---------------------------------------------------------------------------
# Unary operators (k = 1)
# ---------------------------------------------------------------------------

class Sel(PlanNode):
    """Selection ``Sel_pred(child)``."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: PlanNode, predicate: Predicate) -> None:
        self.child = child
        self.predicate = predicate

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Sel(child, self.predicate)

    def output_vars(self) -> Set[str]:
        return self.child.output_vars()

    def label(self) -> str:
        return f"Sel[{self.predicate!r}]"

    def _key(self) -> object:
        return ("sel", self.child._key(), self.predicate)


class Proj(PlanNode):
    """Projection ``Proj(child)`` computing named output fields."""

    __slots__ = ("child", "fields")

    def __init__(self, child: PlanNode, fields: OutputSpec) -> None:
        self.child = child
        self.fields = fields

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Proj(child, self.fields)

    def output_vars(self) -> Set[str]:
        return set(self.fields.field_names())

    def label(self) -> str:
        return f"Proj[{self.fields!r}]"

    def _key(self) -> object:
        return (
            "proj",
            self.child._key(),
            tuple((f.name, f.expr) for f in self.fields.fields),
        )


# ---------------------------------------------------------------------------
# Binary operators (k = 2)
# ---------------------------------------------------------------------------

class IJ(PlanNode):
    """Implicit join ``IJ_attr(child, target)``.

    For each input binding, dereference the oid(s) found at ``source``
    (a path on a bound variable — usually a single attribute) into the
    ``target`` entity, binding ``out_var`` to the fetched record.
    Multivalued references expand to one output binding per element;
    bindings whose reference is null produce nothing (inner-join
    semantics, like the paper's IJ).
    """

    __slots__ = ("child", "target", "source", "out_var")

    def __init__(
        self, child: PlanNode, target: EntityLeaf, source: PathRef, out_var: str
    ) -> None:
        if not isinstance(target, EntityLeaf):
            raise PlanError("the right child of IJ must be an atomic entity")
        if not source.attrs:
            raise PlanError("IJ needs an attribute path to dereference")
        self.child = child
        self.target = target
        self.source = source
        self.out_var = out_var

    @property
    def attr_name(self) -> str:
        """The ``attrName`` subscript of the paper's IJ node."""
        return self.source.attrs[-1]

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child, self.target)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        child, target = children
        if not isinstance(target, EntityLeaf):
            raise PlanError("the right child of IJ must be an atomic entity")
        return IJ(child, target, self.source, self.out_var)

    def output_vars(self) -> Set[str]:
        return self.child.output_vars() | {self.out_var}

    def label(self) -> str:
        return f"IJ[{self.source.dotted()}]"

    def _key(self) -> object:
        return (
            "ij",
            self.child._key(),
            self.target._key(),
            self.source,
            self.out_var,
        )


class EJ(PlanNode):
    """Explicit join ``EJ_pred(left, right)``.

    ``algorithm`` selects the implementation: ``nested_loop`` re-scans
    the right subtree per left binding (the engine materializes it once
    and loops in memory-over-pages fashion); ``index_join`` requires an
    equality conjunct whose right side is a direct attribute of a right
    entity leaf carrying a selection index.
    """

    __slots__ = ("left", "right", "predicate", "algorithm")

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        predicate: Predicate,
        algorithm: str = NESTED_LOOP,
    ) -> None:
        if algorithm not in (NESTED_LOOP, INDEX_JOIN):
            raise PlanError(f"unknown join algorithm {algorithm!r}")
        self.left = left
        self.right = right
        self.predicate = predicate
        self.algorithm = algorithm

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        left, right = children
        return EJ(left, right, self.predicate, self.algorithm)

    def output_vars(self) -> Set[str]:
        return self.left.output_vars() | self.right.output_vars()

    def label(self) -> str:
        return f"EJ[{self.predicate!r}]"

    def _key(self) -> object:
        return (
            "ej",
            self.left._key(),
            self.right._key(),
            self.predicate,
            self.algorithm,
        )


class UnionOp(PlanNode):
    """Bag union ``Union(left, right)`` of compatible streams."""

    __slots__ = ("left", "right")

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        left, right = children
        return UnionOp(left, right)

    def output_vars(self) -> Set[str]:
        return self.left.output_vars() & self.right.output_vars()

    def label(self) -> str:
        return "Union"

    def _key(self) -> object:
        return ("union", self.left._key(), self.right._key())


class Fix(PlanNode):
    """Fixpoint ``Fix(T, P)`` — "a paradigm for recursive queries".

    ``name`` identifies the recursion's temporary file ``T``; ``body``
    is the fixpoint equation ``P`` (a union of base and recursive
    parts, the recursive parts referencing :class:`RecLeaf` leaves with
    the same name).  The engine evaluates it semi-naively and
    materializes the result; downstream operators see bindings of
    ``out_var`` to the accumulated tuples.

    ``recursion_entity``/``recursion_attribute`` are optimizer hints
    (set by ``translate``) naming the stored reference attribute the
    recursion advances along — the cardinality model estimates the
    semi-naive iteration count ``n`` of Figure 5 from its chain-depth
    statistics.  ``invariant_fields`` carries the provenance analysis
    used by the ``canPush`` constraint of the ``filter`` action.
    """

    __slots__ = (
        "name",
        "body",
        "out_var",
        "recursion_entity",
        "recursion_attribute",
        "invariant_fields",
    )

    def __init__(
        self,
        name: str,
        body: PlanNode,
        out_var: str,
        recursion_entity: Optional[str] = None,
        recursion_attribute: Optional[str] = None,
        invariant_fields: Optional[Set[str]] = None,
    ) -> None:
        self.name = name
        self.body = body
        self.out_var = out_var
        self.recursion_entity = recursion_entity
        self.recursion_attribute = recursion_attribute
        self.invariant_fields = (
            frozenset(invariant_fields) if invariant_fields is not None else frozenset()
        )

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.body,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (body,) = children
        return Fix(
            self.name,
            body,
            self.out_var,
            self.recursion_entity,
            self.recursion_attribute,
            set(self.invariant_fields),
        )

    def rec_leaves(self) -> List[RecLeaf]:
        return [
            node
            for node in self.body.walk()
            if isinstance(node, RecLeaf) and node.name == self.name
        ]

    def output_vars(self) -> Set[str]:
        return {self.out_var}

    def label(self) -> str:
        return f"Fix[{self.name}]"

    def _key(self) -> object:
        return (
            "fix",
            self.name,
            self.body._key(),
            self.out_var,
            self.invariant_fields,
        )


class Materialize(PlanNode):
    """Materialize a tuple stream into a temporary file.

    The child must produce field-keyed bindings (i.e. end in ``Proj``
    or a union of projections); downstream operators see bindings of
    ``out_var`` to the stored tuples — the same consumption interface
    as ``Fix``.  Used for non-recursive union views, which cannot be
    folded into their consumers.
    """

    __slots__ = ("name", "child", "out_var")

    def __init__(self, name: str, child: PlanNode, out_var: str) -> None:
        self.name = name
        self.child = child
        self.out_var = out_var

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Materialize(self.name, child, self.out_var)

    def output_vars(self) -> Set[str]:
        return {self.out_var}

    def label(self) -> str:
        return f"Materialize[{self.name}]"

    def _key(self) -> object:
        return ("mat", self.name, self.child._key(), self.out_var)


class PIJ(PlanNode):
    """Path-index implicit join ``PIJ_pathIndex(child, C2, ..., Cn)``.

    Replaces a chain of IJ nodes when a path index on
    ``attributes`` exists (the ``collapse`` action, Section 4.3).  For
    each input binding, the head oid found at ``source`` keys a forward
    index lookup; each resulting oid tuple binds ``out_vars`` (one per
    target, parallel to ``targets``) to the fetched records.
    """

    __slots__ = ("child", "targets", "attributes", "source", "out_vars")

    def __init__(
        self,
        child: PlanNode,
        targets: Sequence[EntityLeaf],
        attributes: Sequence[str],
        source: PathRef,
        out_vars: Sequence[str],
    ) -> None:
        if len(targets) < 2:
            raise PlanError("PIJ spans at least two hops (k >= 2 children)")
        if len(targets) != len(attributes) or len(targets) != len(out_vars):
            raise PlanError("PIJ targets/attributes/out_vars must align")
        for target in targets:
            if not isinstance(target, EntityLeaf):
                raise PlanError("PIJ targets must be atomic entities")
        self.child = child
        self.targets: Tuple[EntityLeaf, ...] = tuple(targets)
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.source = source
        self.out_vars: Tuple[str, ...] = tuple(out_vars)

    @property
    def path_name(self) -> str:
        """The ``pathIndex`` subscript, e.g. ``works.instruments``."""
        return ".".join(self.attributes)

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,) + self.targets

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        child = children[0]
        targets = children[1:]
        for target in targets:
            if not isinstance(target, EntityLeaf):
                raise PlanError("PIJ targets must be atomic entities")
        return PIJ(child, targets, self.attributes, self.source, self.out_vars)  # type: ignore[arg-type]

    def output_vars(self) -> Set[str]:
        return self.child.output_vars() | set(self.out_vars)

    def label(self) -> str:
        return f"PIJ[{self.path_name}]"

    def _key(self) -> object:
        return (
            "pij",
            self.child._key(),
            tuple(t._key() for t in self.targets),
            self.attributes,
            self.source,
            self.out_vars,
        )
