"""Pattern-location utilities over processing trees.

Transformation actions (Section 4.1) have the form
``action: F | constraint -> G`` where ``F`` matches a *subpart* of the
granule.  Because PTs are functional terms, matching a subpart means
locating a subtree together with its context; this module provides the
zipper (:class:`PlanPath`) that actions use to splice rewritten
subtrees back into the whole plan, plus generic saturation rewriting.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Set, Tuple, Type

from repro.plans.nodes import EJ, IJ, PIJ, PlanNode, Proj, Sel

__all__ = [
    "PlanPath",
    "find_all",
    "paths_to",
    "rewrite_once",
    "rewrite_saturate",
    "consumed_variables",
]


class PlanPath:
    """A subtree plus the path of (ancestor, child-index) steps to it.

    ``rebuild(new_subtree)`` reconstructs the full plan with the focus
    replaced — the splice operation every transformation action needs.
    """

    def __init__(self, root: PlanNode, steps: List[Tuple[PlanNode, int]]) -> None:
        self.root = root
        self.steps = steps

    @property
    def focus(self) -> PlanNode:
        if not self.steps:
            return self.root
        parent, index = self.steps[-1]
        return parent.children[index]

    def ancestors(self) -> List[PlanNode]:
        """Nodes strictly above the focus, outermost first."""
        return [parent for parent, _index in self.steps]

    def rebuild(self, new_subtree: PlanNode) -> PlanNode:
        """The full plan with the focus replaced by ``new_subtree``."""
        current = new_subtree
        for parent, index in reversed(self.steps):
            children = list(parent.children)
            children[index] = current
            current = parent.with_children(children)
        return current

    def __repr__(self) -> str:  # pragma: no cover - convenience
        chain = " > ".join(p.label() for p in self.ancestors())
        return f"PlanPath({chain} > {self.focus.label()})"


def paths_to(
    root: PlanNode, wanted: Callable[[PlanNode], bool]
) -> Iterator[PlanPath]:
    """All paths from ``root`` to nodes satisfying ``wanted`` (pre-order)."""

    def walk(
        node: PlanNode, steps: List[Tuple[PlanNode, int]]
    ) -> Iterator[PlanPath]:
        if wanted(node):
            yield PlanPath(root, list(steps))
        for index, child in enumerate(node.children):
            steps.append((node, index))
            yield from walk(child, steps)
            steps.pop()

    yield from walk(root, [])


def find_all(root: PlanNode, node_type: Type[PlanNode]) -> List[PlanNode]:
    """All nodes of a given type in pre-order."""
    return [node for node in root.walk() if isinstance(node, node_type)]


def rewrite_once(
    root: PlanNode, fn: Callable[[PlanNode], Optional[PlanNode]]
) -> Tuple[PlanNode, bool]:
    """Apply ``fn`` at the first (pre-order) node where it fires.

    ``fn`` returns a replacement subtree or None.  Returns the new plan
    and whether a rewrite happened.
    """
    for path in paths_to(root, lambda _node: True):
        replacement = fn(path.focus)
        if replacement is not None and replacement != path.focus:
            return path.rebuild(replacement), True
    return root, False


def consumed_variables(root: PlanNode) -> Set[str]:
    """Every variable any operator in the plan actually *reads* —
    predicate variables, projection inputs, implicit-join sources.

    Used by the engine and the cost model to skip dereferencing
    path-index targets nobody consumes: a PIJ binds one variable per
    traversed class, but a query that only filters on the terminal
    never needs the intermediate objects fetched (the [MS86] payoff).
    """
    consumed: Set[str] = set()
    for node in root.walk():
        if isinstance(node, Sel):
            consumed |= node.predicate.variables()
        elif isinstance(node, Proj):
            consumed |= node.fields.variables()
        elif isinstance(node, IJ):
            consumed.add(node.source.var)
        elif isinstance(node, PIJ):
            consumed.add(node.source.var)
        elif isinstance(node, EJ):
            consumed |= node.predicate.variables()
    return consumed


def rewrite_saturate(
    root: PlanNode,
    fn: Callable[[PlanNode], Optional[PlanNode]],
    max_steps: int = 10_000,
) -> PlanNode:
    """Apply ``fn`` up to saturation (the irrevocable strategies of
    Section 4.2 apply their actions this way)."""
    current = root
    for _step in range(max_steps):
        current, changed = rewrite_once(current, fn)
        if not changed:
            return current
    raise RuntimeError("rewrite_saturate did not converge")
