"""Processing-tree plan algebra (Section 3.1 of the paper)."""

from repro.plans.display import render_functional, render_tree
from repro.plans.nodes import (
    EJ,
    IJ,
    INDEX_JOIN,
    NESTED_LOOP,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)
from repro.plans.patterns import (
    PlanPath,
    find_all,
    paths_to,
    rewrite_once,
    rewrite_saturate,
)
from repro.plans.validate import validate_plan

__all__ = [
    "EJ",
    "IJ",
    "INDEX_JOIN",
    "NESTED_LOOP",
    "PIJ",
    "EntityLeaf",
    "Fix",
    "Materialize",
    "PlanNode",
    "Proj",
    "RecLeaf",
    "Sel",
    "TempLeaf",
    "UnionOp",
    "PlanPath",
    "find_all",
    "paths_to",
    "rewrite_once",
    "rewrite_saturate",
    "validate_plan",
    "render_functional",
    "render_tree",
]
