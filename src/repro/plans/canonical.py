"""Canonical plan fingerprints: structural identity up to renaming.

Transformation closures reach the same plan along many paths, and the
paths disagree about *names*: pushing two independent segments through
a Fix in either order yields plans that differ only in the ``_pN``
suffixes the push renamer minted.  Structural equality
(:meth:`PlanNode._key`) keeps such alpha-equivalent duplicates apart,
so a closure dedup keyed on it costs the same plan twice, and a memo
table keyed on it misses shared subproblems.

:func:`canonical_fingerprint` closes that gap: variables are renamed to
their first-appearance index in a deterministic pre-order walk
(``§0``, ``§1``, ...), and the renamed term is hashed over *every*
cost-relevant field — operator kind, entities, attribute paths,
predicates, join algorithm, invariant fields — unlike
:func:`repro.obs.history.plan_fingerprint`, which hashes display labels
(and therefore conflates, e.g., the two EJ algorithms).  Two plans
share a canonical fingerprint iff they are identical up to a bijective
variable renaming; such plans have identical neighbourhoods under the
move graph and identical costs under every model, which is what makes
the fingerprint a sound memo key for plan enumeration.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.errors import PlanError
from repro.plans.nodes import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)
from repro.querygraph.graph import OutputField, OutputSpec
from repro.querygraph.predicates import Expr, PathRef, Predicate

__all__ = ["alpha_rename", "canonical_fingerprint", "canonical_key"]


def _node_vars(node: PlanNode) -> List[str]:
    """The variable names a node mentions, in a deterministic order
    (definition sites and reference sites alike — only the *order* of
    first appearance matters for canonical naming)."""
    if isinstance(node, (EntityLeaf, TempLeaf, RecLeaf)):
        return [node.var]
    if isinstance(node, Sel):
        return [p.var for p in node.predicate.paths()]
    if isinstance(node, Proj):
        return [
            p.var
            for output_field in node.fields.fields
            for p in output_field.expr.paths()
        ]
    if isinstance(node, IJ):
        return [node.source.var, node.out_var]
    if isinstance(node, PIJ):
        return [node.source.var, *node.out_vars]
    if isinstance(node, EJ):
        return [p.var for p in node.predicate.paths()]
    if isinstance(node, (Fix, Materialize)):
        return [node.out_var]
    if isinstance(node, UnionOp):
        return []
    raise PlanError(f"cannot canonicalize node {node.label()}")


def _canonical_names(plan: PlanNode) -> Dict[str, str]:
    """First-appearance canonical names over a pre-order walk."""
    mapping: Dict[str, str] = {}
    for node in plan.walk():
        for name in _node_vars(node):
            if name not in mapping:
                mapping[name] = f"§{len(mapping)}"
    return mapping


def alpha_rename(plan: PlanNode, mapping: Dict[str, str]) -> PlanNode:
    """Rebuild ``plan`` with every variable renamed through ``mapping``
    (names absent from the mapping are kept)."""

    def var(name: str) -> str:
        return mapping.get(name, name)

    def ref(path: PathRef) -> PathRef:
        return PathRef(var(path.var), path.attrs)

    def expr(e: Expr) -> Expr:
        subst = {
            name: PathRef(var(name))
            for name in e.variables()
            if name in mapping
        }
        return e.substitute(subst) if subst else e

    def pred(p: Predicate) -> Predicate:
        subst = {
            name: PathRef(var(name))
            for name in p.variables()
            if name in mapping
        }
        return p.substitute(subst) if subst else p

    def rebuild(node: PlanNode) -> PlanNode:
        if isinstance(node, EntityLeaf):
            return EntityLeaf(node.entity, var(node.var))
        if isinstance(node, TempLeaf):
            return TempLeaf(node.entity, var(node.var))
        if isinstance(node, RecLeaf):
            return RecLeaf(node.name, var(node.var))
        if isinstance(node, Sel):
            return Sel(rebuild(node.child), pred(node.predicate))
        if isinstance(node, Proj):
            return Proj(
                rebuild(node.child),
                OutputSpec(
                    [
                        OutputField(f.name, expr(f.expr))
                        for f in node.fields.fields
                    ]
                ),
            )
        if isinstance(node, IJ):
            return IJ(
                rebuild(node.child),
                EntityLeaf(node.target.entity, var(node.target.var)),
                ref(node.source),
                var(node.out_var),
            )
        if isinstance(node, PIJ):
            return PIJ(
                rebuild(node.child),
                [EntityLeaf(t.entity, var(t.var)) for t in node.targets],
                node.attributes,
                ref(node.source),
                [var(v) for v in node.out_vars],
            )
        if isinstance(node, EJ):
            return EJ(
                rebuild(node.left),
                rebuild(node.right),
                pred(node.predicate),
                node.algorithm,
            )
        if isinstance(node, UnionOp):
            return UnionOp(rebuild(node.left), rebuild(node.right))
        if isinstance(node, Fix):
            return Fix(
                node.name,
                rebuild(node.body),
                var(node.out_var),
                node.recursion_entity,
                node.recursion_attribute,
                set(node.invariant_fields),
            )
        if isinstance(node, Materialize):
            return Materialize(node.name, rebuild(node.child), var(node.out_var))
        raise PlanError(f"cannot rename node {node.label()}")

    return rebuild(plan)


def _serialize(node: PlanNode, out: List[str]) -> None:
    """Append a stable, cost-complete token stream for ``node`` (whose
    variables are already canonical) to ``out``."""
    if isinstance(node, EntityLeaf):
        out.append(f"entity({node.entity},{node.var})")
    elif isinstance(node, TempLeaf):
        out.append(f"temp({node.entity},{node.var})")
    elif isinstance(node, RecLeaf):
        out.append(f"rec({node.name},{node.var})")
    elif isinstance(node, Sel):
        out.append(f"sel({node.predicate!r})")
    elif isinstance(node, Proj):
        fields = ";".join(
            f"{f.name}={f.expr!r}" for f in node.fields.fields
        )
        out.append(f"proj({fields})")
    elif isinstance(node, IJ):
        out.append(f"ij({node.source.dotted()},{node.out_var})")
    elif isinstance(node, PIJ):
        out.append(
            "pij({},{},{})".format(
                ".".join(node.attributes),
                node.source.dotted(),
                ",".join(node.out_vars),
            )
        )
    elif isinstance(node, EJ):
        out.append(f"ej({node.predicate!r},{node.algorithm})")
    elif isinstance(node, UnionOp):
        out.append("union")
    elif isinstance(node, Fix):
        invariant = ",".join(sorted(node.invariant_fields))
        out.append(f"fix({node.name},{node.out_var},[{invariant}])")
    elif isinstance(node, Materialize):
        out.append(f"mat({node.name},{node.out_var})")
    else:
        raise PlanError(f"cannot serialize node {node.label()}")
    out.append("(")
    for child in node.children:
        _serialize(child, out)
    out.append(")")


def canonical_key(plan: PlanNode) -> str:
    """The full canonical serialization (alpha-renamed token stream)."""
    renamed = alpha_rename(plan, _canonical_names(plan))
    tokens: List[str] = []
    _serialize(renamed, tokens)
    return "\x1f".join(tokens)


def canonical_fingerprint(plan: PlanNode) -> str:
    """A 16-hex-digit digest of :func:`canonical_key`, stable across
    processes (no reliance on set/hash iteration order)."""
    digest = hashlib.sha256(canonical_key(plan).encode("utf-8"))
    return digest.hexdigest()[:16]
