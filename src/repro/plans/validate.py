"""Structural validation of processing trees.

``validate_plan`` checks the well-formedness rules implied by the PT
definition of Section 3.1 plus the binding discipline our execution
semantics adds (every variable a node consumes must be bound by its
input).  The optimizer validates every plan it emits; the engine
validates before executing.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import PlanError
from repro.plans.nodes import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)
from repro.physical.schema import PhysicalSchema

__all__ = ["validate_plan"]


def validate_plan(plan: PlanNode, physical: Optional[PhysicalSchema] = None) -> None:
    """Raise :class:`PlanError` when the plan is malformed.

    When a physical schema is given, entity leaves must name registered
    entities and PIJ nodes must have a matching path index.
    """
    _validate(plan, physical, enclosing_fix=None)


def _validate(
    node: PlanNode,
    physical: Optional[PhysicalSchema],
    enclosing_fix: Optional[Set[str]],
) -> None:
    if isinstance(node, EntityLeaf):
        if physical is not None and not physical.has_entity(node.entity):
            raise PlanError(f"unknown atomic entity {node.entity!r}")
        return
    if isinstance(node, TempLeaf):
        return
    if isinstance(node, RecLeaf):
        if enclosing_fix is None or node.name not in enclosing_fix:
            raise PlanError(
                f"recursion reference {node.name!r} outside its Fix"
            )
        return
    if isinstance(node, Sel):
        _validate(node.child, physical, enclosing_fix)
        missing = node.predicate.variables() - node.child.output_vars()
        if missing:
            raise PlanError(
                f"Sel predicate references unbound variables {sorted(missing)}"
            )
        return
    if isinstance(node, Proj):
        _validate(node.child, physical, enclosing_fix)
        missing = node.fields.variables() - node.child.output_vars()
        if missing:
            raise PlanError(
                f"Proj fields reference unbound variables {sorted(missing)}"
            )
        return
    if isinstance(node, IJ):
        _validate(node.child, physical, enclosing_fix)
        _validate(node.target, physical, enclosing_fix)
        if node.source.var not in node.child.output_vars():
            raise PlanError(
                f"IJ source variable {node.source.var!r} is unbound"
            )
        if node.out_var in node.child.output_vars():
            raise PlanError(f"IJ rebinds variable {node.out_var!r}")
        return
    if isinstance(node, PIJ):
        _validate(node.child, physical, enclosing_fix)
        for target in node.targets:
            _validate(target, physical, enclosing_fix)
        if node.source.var not in node.child.output_vars():
            raise PlanError(
                f"PIJ source variable {node.source.var!r} is unbound"
            )
        for out_var in node.out_vars:
            if out_var in node.child.output_vars():
                raise PlanError(f"PIJ rebinds variable {out_var!r}")
        if physical is not None:
            if physical.find_path_index(node.attributes) is None:
                raise PlanError(
                    f"no path index on {node.path_name!r} for PIJ node"
                )
        return
    if isinstance(node, EJ):
        _validate(node.left, physical, enclosing_fix)
        _validate(node.right, physical, enclosing_fix)
        overlap = node.left.output_vars() & node.right.output_vars()
        if overlap:
            raise PlanError(
                f"EJ operands bind overlapping variables {sorted(overlap)}"
            )
        missing = node.predicate.variables() - node.output_vars()
        if missing:
            raise PlanError(
                f"EJ predicate references unbound variables {sorted(missing)}"
            )
        left_vars = node.predicate.variables() & node.left.output_vars()
        right_vars = node.predicate.variables() & node.right.output_vars()
        if not left_vars or not right_vars:
            raise PlanError(
                "EJ predicate must reference both operands "
                "(Cartesian products are not generated; Section 4.4)"
            )
        return
    if isinstance(node, UnionOp):
        _validate(node.left, physical, enclosing_fix)
        _validate(node.right, physical, enclosing_fix)
        if node.left.output_vars() != node.right.output_vars():
            raise PlanError(
                "Union operands produce incompatible bindings: "
                f"{sorted(node.left.output_vars())} vs "
                f"{sorted(node.right.output_vars())}"
            )
        return
    if isinstance(node, Fix):
        inner = set(enclosing_fix) if enclosing_fix else set()
        inner.add(node.name)
        _validate(node.body, physical, inner)
        if not node.rec_leaves():
            raise PlanError(
                f"Fix({node.name}) body contains no recursion reference"
            )
        return
    if isinstance(node, Materialize):
        _validate(node.child, physical, enclosing_fix)
        return
    raise PlanError(f"unknown plan node type {type(node).__name__}")
