"""Engineering-database workload: recursive part/subpart queries.

The paper motivates object-oriented recursion with engineering DBs
([CS90]): "execute a method for each subpart (recursively) connected to
a given part object".  This module provides that workload:

* a conceptual schema — ``Part`` objects with a *set-valued*
  ``subparts`` reference (the recursion closes over a multivalued
  attribute, unlike the single-valued ``master`` of the music schema);
* a generator building assembly trees of configurable depth/fan-out
  with optional component sharing (a DAG, not just a tree);
* the recursive ``Contains`` view (assembly, component, level) and
  canned queries, including one whose selection invokes a *method*
  (``weight_class``) — the expensive-selection case the paper's
  cost-controlled push decision exists for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.physical.buffer import BufferPool
from repro.physical.schema import PhysicalSchema
from repro.physical.storage import ObjectStore, Oid
from repro.querygraph.builder import (
    add,
    and_,
    arc,
    const,
    eq,
    ge,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.querygraph.graph import QueryGraph, Rule
from repro.schema.catalog import Catalog
from repro.schema.conceptual import Attribute, ClassDef, Method
from repro.schema.types import FLOAT, INT, STRING, ClassRef, SetType

__all__ = [
    "PartsConfig",
    "PartsDatabase",
    "build_parts_catalog",
    "generate_parts_database",
    "contains_rules",
    "components_of_query",
    "heavy_components_query",
    "CONTAINS",
]

CONTAINS = "Contains"
ROOT_ASSEMBLY = "assembly_root"


def _weight_class(values: Dict[str, object]) -> object:
    mass = values.get("mass")
    if not isinstance(mass, (int, float)):
        return None
    if mass >= 50.0:
        return "heavy"
    if mass >= 5.0:
        return "medium"
    return "light"


def build_parts_catalog() -> Catalog:
    """``class Part: [pname, cost, mass, subparts: {Part}]`` plus the
    computed attribute ``weight_class``."""
    catalog = Catalog()
    catalog.add_class(
        ClassDef(
            "Part",
            attributes=[
                Attribute("pname", STRING),
                Attribute("cost", FLOAT),
                Attribute("mass", FLOAT),
                Attribute("category", STRING),
                Attribute("subparts", SetType(ClassRef("Part"))),
            ],
            methods=[Method("weight_class", STRING, _weight_class, eval_weight=2.0)],
        )
    )
    catalog.validate()
    return catalog


@dataclass
class PartsConfig:
    """Knobs for the synthetic bill-of-materials."""

    assemblies: int = 4
    depth: int = 4
    fanout: int = 3
    sharing: float = 0.1  # probability a slot reuses an existing part
    categories: int = 5
    records_per_page: int = 20
    buffer_pages: int = 256
    seed: int = 1992


@dataclass
class PartsDatabase:
    """A generated bill-of-materials plus its physical schema."""

    config: PartsConfig
    catalog: Catalog
    store: ObjectStore
    physical: PhysicalSchema
    root_oids: List[Oid] = field(default_factory=list)


def generate_parts_database(config: Optional[PartsConfig] = None) -> PartsDatabase:
    """Generate assemblies of nested parts.

    Each of ``assemblies`` root parts gets a tree of ``depth`` levels
    with ``fanout`` children per node; with probability ``sharing`` a
    child slot points at an already-generated part of the same level
    (making the structure a DAG and exercising the fixpoint's duplicate
    elimination)."""
    if config is None:
        config = PartsConfig()
    rng = random.Random(config.seed)
    catalog = build_parts_catalog()
    store = ObjectStore(
        BufferPool(config.buffer_pages), records_per_page=config.records_per_page
    )
    physical = PhysicalSchema(store, catalog)
    physical.register_extent("Part")

    database = PartsDatabase(config, catalog, store, physical)
    by_level: Dict[int, List[Oid]] = {}
    serial = [0]

    def make_part(level: int) -> Oid:
        children: List[Oid] = []
        if level < config.depth:
            for _slot in range(config.fanout):
                pool = by_level.get(level + 1, [])
                if pool and rng.random() < config.sharing:
                    children.append(rng.choice(pool))
                else:
                    children.append(make_part(level + 1))
        name = (
            ROOT_ASSEMBLY + f"_{len(database.root_oids)}"
            if level == 0
            else f"part_{serial[0]:05d}"
        )
        serial[0] += 1
        oid = store.insert(
            "Part",
            {
                "pname": name,
                "cost": round(rng.uniform(1.0, 100.0), 2),
                "mass": round(rng.uniform(0.1, 80.0), 2),
                "category": f"cat_{rng.randrange(config.categories)}",
                "subparts": tuple(children),
            },
        )
        by_level.setdefault(level, []).append(oid)
        return oid

    for _assembly in range(config.assemblies):
        database.root_oids.append(make_part(0))
    physical.refresh_statistics()
    return database


def contains_rules() -> List[Rule]:
    """The recursive Contains view over the *multivalued* ``subparts``::

        view Contains as
          select [assembly: p, component: c, level: 1]
          from p in Part, c in Part where p.subparts = c
          union
          select [assembly: r.assembly, component: c, level: r.level + 1]
          from r in Contains, c in Part where r.component.subparts = c

    The equality ``p.subparts = c`` uses the model's existential
    semantics over set-valued paths (membership).  ``assembly`` is the
    invariant field; ``component`` rebinds and ``level`` is computed.
    """
    base = rule(
        CONTAINS,
        spj(
            [arc("Part", p="."), arc("Part", c=".")],
            where=eq(path("p", "subparts"), var("c")),
            select=out(assembly=var("p"), component=var("c"), level=const(1)),
        ),
    )
    recursive = rule(
        CONTAINS,
        spj(
            [arc(CONTAINS, r="."), arc("Part", c=".")],
            where=eq(path("r", "component", "subparts"), var("c")),
            select=out(
                assembly=path("r", "assembly"),
                component=var("c"),
                level=add(path("r", "level"), const(1)),
            ),
        ),
    )
    return [base, recursive]


def components_of_query(assembly_name: str = ROOT_ASSEMBLY + "_0") -> QueryGraph:
    """All components (recursively) of a named assembly — the selection
    ``assembly.pname = ...`` is on the invariant field and therefore a
    candidate for pushing through the recursion."""
    base, recursive = contains_rules()
    answer = rule(
        "Answer",
        spj(
            [arc(CONTAINS, k=".")],
            where=eq(path("k", "assembly", "pname"), const(assembly_name)),
            select=out(
                component=path("k", "component", "pname"),
                level=path("k", "level"),
            ),
        ),
    )
    return query(base, recursive, answer)


def heavy_components_query(
    assembly_name: str = ROOT_ASSEMBLY + "_0", min_level: int = 2
) -> QueryGraph:
    """Deep heavy components of an assembly.

    Mixes an invariant-field selection (pushable), a *method* call
    (``component.weight_class`` — rebound field, not pushable) and a
    computed-field range (``level``, not pushable): the optimizer must
    split the conjunction correctly."""
    base, recursive = contains_rules()
    answer = rule(
        "Answer",
        spj(
            [arc(CONTAINS, k=".")],
            where=and_(
                eq(path("k", "assembly", "pname"), const(assembly_name)),
                eq(path("k", "component", "weight_class"), const("heavy")),
                ge(path("k", "level"), const(min_level)),
            ),
            select=out(
                component=path("k", "component", "pname"),
                level=path("k", "level"),
            ),
        ),
    )
    return query(base, recursive, answer)
