"""Workloads: synthetic data generators and the paper's canned queries."""

from repro.workloads.generator import (
    MusicConfig,
    MusicDatabase,
    generate_music_database,
)
from repro.workloads.parts import (
    CONTAINS,
    PartsConfig,
    PartsDatabase,
    build_parts_catalog,
    components_of_query,
    contains_rules,
    generate_parts_database,
    heavy_components_query,
)
from repro.workloads.scenarios import (
    PushComparison,
    compare_push_policies,
    selection_push_sweep,
)
from repro.workloads.queries import (
    INFLUENCER,
    fig2_query,
    fig3_query,
    influencer_rules,
    join_push_query,
)

__all__ = [
    "MusicConfig",
    "MusicDatabase",
    "generate_music_database",
    "CONTAINS",
    "PartsConfig",
    "PartsDatabase",
    "build_parts_catalog",
    "components_of_query",
    "contains_rules",
    "generate_parts_database",
    "heavy_components_query",
    "PushComparison",
    "compare_push_policies",
    "selection_push_sweep",
    "INFLUENCER",
    "fig2_query",
    "fig3_query",
    "influencer_rules",
    "join_push_query",
]
