"""The paper's canned queries as query graphs.

* :func:`fig2_query` — Figure 2: "the title of the works of Bach
  including a harpsichord and a flute".
* :func:`influencer_rules` — Section 2.3: the recursive ``Influencer``
  view (base + recursive rule).
* :func:`fig3_query` — Figure 3: "the names of the composers influenced
  by composers for harpsichord that lived 6 generations before".
* :func:`join_push_query` — Section 4.5: "the composers that were
  influenced by the masters of Bach" (the selective-join example).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.querygraph.builder import (
    add,
    and_,
    arc,
    const,
    eq,
    ge,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.querygraph.graph import QueryGraph, Rule

__all__ = [
    "fig2_query",
    "influencer_rules",
    "fig3_query",
    "join_push_query",
    "INFLUENCER",
]

INFLUENCER = "Influencer"


def fig2_query(
    composer: str = "Bach",
    instrument1: str = "harpsichord",
    instrument2: str = "flute",
) -> QueryGraph:
    """The Figure 2 query graph.

    One predicate node over ``Composer`` whose tree label binds ``n``
    (the name), ``t`` (a work's title) and ``i1``/``i2`` (names of two
    instrument of the *same* work — two branches under one ``works``
    element, the overlapping-path factorization the paper highlights).
    """
    return query(
        rule(
            "Answer",
            spj(
                [
                    arc(
                        "Composer",
                        n="name",
                        t="works.*.title",
                        i1="works.*.instruments.*.name",
                        i2="works.*.instruments#2.*.name",
                    )
                ],
                where=and_(
                    eq(var("n"), const(composer)),
                    eq(var("i1"), const(instrument1)),
                    eq(var("i2"), const(instrument2)),
                ),
                select=out(title=var("t")),
            ),
        )
    )


def influencer_rules() -> List[Rule]:
    """The recursive ``Influencer`` view of Section 2.3::

        relation Influencer
          includes (select [master: x.master, disciple: x, gen: 1]
                    from x in Composer)
          union    (select [master: i.master, disciple: x,
                            gen: add1gen(i.gen)]
                    from i in Influencer, x in Composer
                    where i.disciple = x.master)

    The base rule only emits tuples for composers that *have* a master
    (inner-join semantics of the implicit access to ``x.master``): we
    make that explicit with ``x.master = x.master`` being unnecessary —
    instead the reference/physical evaluators drop null references
    uniformly, so no extra predicate is needed.
    """
    base = rule(
        INFLUENCER,
        spj(
            [arc("Composer", x=".")],
            select=out(
                master=path("x", "master"),
                disciple=var("x"),
                gen=const(1),
            ),
        ),
    )
    recursive = rule(
        INFLUENCER,
        spj(
            [arc(INFLUENCER, i="."), arc("Composer", x=".")],
            where=eq(path("i", "disciple"), path("x", "master")),
            select=out(
                master=path("i", "master"),
                disciple=var("x"),
                gen=add(path("i", "gen"), const(1)),
            ),
        ),
    )
    return [base, recursive]


def fig3_query(
    instrument: str = "harpsichord", min_generations: int = 6
) -> QueryGraph:
    """The Figure 3 query: predicate nodes P1/P2 define ``Influencer``
    and P3 retrieves disciples of harpsichord composers at least
    ``min_generations`` generations back."""
    p1, p2 = influencer_rules()
    p3 = rule(
        "Answer",
        spj(
            [arc(INFLUENCER, i=".")],
            where=and_(
                eq(
                    path("i", "master", "works", "instruments", "name"),
                    const(instrument),
                ),
                ge(path("i", "gen"), const(min_generations)),
            ),
            select=out(name=path("i", "disciple", "name")),
        ),
    )
    return query(p1, p2, p3)


def join_push_query(composer: str = "Bach") -> QueryGraph:
    """The Section 4.5 query: "the composers that were influenced by the
    masters of Bach" — answered by a *join* between ``Influencer`` and
    ``Composer`` (``Influencer.master = Composer.master`` with
    ``Composer.name = 'Bach'``), selective enough that pushing the join
    through the recursion pays off."""
    p1, p2 = influencer_rules()
    p3 = rule(
        "Answer",
        spj(
            [arc(INFLUENCER, i="."), arc("Composer", c=".")],
            where=and_(
                eq(path("i", "master"), path("c", "master")),
                eq(path("c", "name"), const(composer)),
            ),
            select=out(name=path("i", "disciple", "name")),
        ),
    )
    return query(p1, p2, p3)
