"""Parameter-sweep scenarios: reusable experiment drivers.

The benchmarks regenerate the paper's artifacts; this module exposes
the same sweeps as a library API so users can run them on their own
parameter grids (and so examples can print compact tables).

Each sweep returns a list of result dictionaries; nothing is printed —
callers format as they wish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core import (
    cost_controlled_optimizer,
    deductive_optimizer,
    naive_optimizer,
)
from repro.cost import CostParameters, DetailedCostModel
from repro.engine import Engine, ReferenceEvaluator
from repro.querygraph.graph import QueryGraph
from repro.workloads.generator import MusicConfig, generate_music_database
from repro.workloads.queries import fig3_query

__all__ = ["PushComparison", "selection_push_sweep", "compare_push_policies"]


@dataclass
class PushComparison:
    """Measured/estimated costs of the pushed vs unpushed plan for one
    database configuration."""

    config: MusicConfig
    estimated_unpushed: float
    estimated_pushed: float
    measured_unpushed: float
    measured_pushed: float
    answers: int

    @property
    def measured_winner(self) -> str:
        return (
            "push"
            if self.measured_pushed < self.measured_unpushed
            else "no-push"
        )

    @property
    def model_winner(self) -> str:
        return (
            "push"
            if self.estimated_pushed < self.estimated_unpushed
            else "no-push"
        )

    @property
    def model_agrees(self) -> bool:
        return self.measured_winner == self.model_winner


def compare_push_policies(
    config: MusicConfig,
    graph_factory: Callable[[], QueryGraph] = fig3_query,
    buffer_pages: Optional[int] = None,
) -> PushComparison:
    """Build a database from ``config`` and compare both Figure 4
    plans, cold, under model and measurement."""
    db = generate_music_database(config)
    db.build_paper_indexes()
    params = CostParameters(
        buffer_pages=buffer_pages
        if buffer_pages is not None
        else config.buffer_pages
    )
    model = DetailedCostModel(db.physical, params)
    graph = graph_factory()
    unpushed = naive_optimizer(db.physical, model).optimize(graph)
    pushed = deductive_optimizer(db.physical, model).optimize(graph)
    engine = Engine(db.physical)
    db.store.buffer.clear()
    run_unpushed = engine.execute(unpushed.plan)
    db.store.buffer.clear()
    run_pushed = engine.execute(pushed.plan)
    if run_unpushed.answer_set() != run_pushed.answer_set():
        raise AssertionError("push transformation changed the answers")
    return PushComparison(
        config=config,
        estimated_unpushed=unpushed.cost,
        estimated_pushed=pushed.cost,
        measured_unpushed=run_unpushed.metrics.measured_cost(),
        measured_pushed=run_pushed.metrics.measured_cost(),
        answers=len(run_unpushed.rows),
    )


def selection_push_sweep(
    fractions: Sequence[float],
    base_config: Optional[MusicConfig] = None,
    graph_factory: Callable[[], QueryGraph] = fig3_query,
) -> List[PushComparison]:
    """The CLAIM-SELPUSH sweep: vary the selective instrument's
    frequency and compare pushed vs unpushed plans per point."""
    if base_config is None:
        base_config = MusicConfig(
            lineages=10, generations=9, works_per_composer=3, buffer_pages=4
        )
    results: List[PushComparison] = []
    for fraction in fractions:
        config = MusicConfig(
            lineages=base_config.lineages,
            generations=base_config.generations,
            works_per_composer=base_config.works_per_composer,
            instruments=base_config.instruments,
            instruments_per_work=base_config.instruments_per_work,
            selective_fraction=fraction,
            records_per_page=base_config.records_per_page,
            buffer_pages=base_config.buffer_pages,
            seed=base_config.seed,
        )
        results.append(
            compare_push_policies(config, graph_factory)
        )
    return results
