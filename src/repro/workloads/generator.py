"""Synthetic music-database generator.

Generates instances of the Figure 1 schema with controllable knobs:

* ``lineages`` × ``generations`` composers arranged in master-chains
  (the recursion the ``Influencer`` view closes over);
* works per composer and instruments per work (implicit-join fan-outs);
* the fraction of works scored for the *selective instrument*
  (``harpsichord``) — the selectivity that decides whether pushing the
  selection through recursion pays off;
* page sizes, so ``|C|``/``||C||`` ratios can be swept.

Everything is driven by a seeded :class:`random.Random`; identical
configs produce identical databases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.physical.buffer import BufferPool
from repro.physical.schema import PhysicalSchema
from repro.physical.storage import ObjectStore, Oid
from repro.schema.catalog import Catalog
from repro.schema.sample import build_music_catalog

__all__ = ["MusicConfig", "MusicDatabase", "generate_music_database"]

SELECTIVE_INSTRUMENT = "harpsichord"
SECOND_INSTRUMENT = "flute"
FAMOUS_COMPOSER = "Bach"


@dataclass
class MusicConfig:
    """Knobs for the synthetic music database."""

    lineages: int = 8
    generations: int = 8
    works_per_composer: int = 3
    instruments: int = 12
    instruments_per_work: int = 2
    selective_fraction: float = 0.15
    records_per_page: int = 20
    buffer_pages: int = 256
    seed: int = 1992

    @property
    def composer_count(self) -> int:
        return self.lineages * self.generations


@dataclass
class MusicDatabase:
    """A generated database plus handles the benchmarks need."""

    config: MusicConfig
    catalog: Catalog
    store: ObjectStore
    physical: PhysicalSchema
    composer_oids: List[Oid] = field(default_factory=list)
    famous_oid: Optional[Oid] = None

    def build_paper_indexes(self) -> None:
        """Create the paper's physical design: the path index on
        ``works.instruments`` (Section 3) and a selection index on
        ``Composer.name``."""
        if self.physical.path_index("Composer", ("works", "instruments")) is None:
            self.physical.build_path_index(
                "Composer",
                ["works", "instruments"],
                ["Composer", "Composition", "Instrument"],
                terminal_attribute="name",
            )
        if not self.physical.has_selection_index("Composer", "name"):
            self.physical.build_selection_index("Composer", "name")


def generate_music_database(config: Optional[MusicConfig] = None) -> MusicDatabase:
    """Generate a database according to ``config`` (defaults apply)."""
    if config is None:
        config = MusicConfig()
    rng = random.Random(config.seed)
    catalog = build_music_catalog()
    store = ObjectStore(
        BufferPool(config.buffer_pages), records_per_page=config.records_per_page
    )
    physical = PhysicalSchema(store, catalog)
    for name in ("Person", "Composer", "Composition", "Instrument", "Play"):
        physical.register_extent(name)

    instrument_oids = _generate_instruments(store, config)
    composer_oids, famous = _generate_composers(store, config, rng)
    _generate_works(store, config, rng, composer_oids, instrument_oids)
    _generate_play(store, config, rng, composer_oids, instrument_oids)
    physical.refresh_statistics()
    return MusicDatabase(
        config, catalog, store, physical, composer_oids, famous
    )


def _generate_instruments(store: ObjectStore, config: MusicConfig) -> List[Oid]:
    names = [SELECTIVE_INSTRUMENT, SECOND_INSTRUMENT]
    families = {SELECTIVE_INSTRUMENT: "keyboard", SECOND_INSTRUMENT: "wind"}
    for index in range(max(0, config.instruments - 2)):
        names.append(f"instrument_{index:03d}")
    oids = []
    for name in names:
        family = families.get(name, f"family_{hash(name) % 5}")
        oids.append(store.insert("Instrument", {"name": name, "family": family}))
    return oids


def _generate_composers(
    store: ObjectStore, config: MusicConfig, rng: random.Random
) -> Tuple[List[Oid], Optional[Oid]]:
    """Composers in ``lineages`` master-chains of length ``generations``.

    Chains run oldest → youngest: each composer's ``master`` is the
    previous one in the chain (None for chain founders).  The famous
    composer ("Bach") sits a couple of generations into the first
    lineage so that he both *has* a master (the Section 4.5 join-push
    query needs ``Bach.master``) and has a long tail of disciples below
    him.
    """
    oids: List[Oid] = []
    famous: Optional[Oid] = None
    serial = 0
    famous_generation = min(2, config.generations - 1)
    for lineage in range(config.lineages):
        previous: Optional[Oid] = None
        for generation in range(config.generations):
            if lineage == 0 and generation == famous_generation:
                name = FAMOUS_COMPOSER
            else:
                name = f"composer_{serial:04d}"
            birthyear = 1600 + generation * 30 + rng.randint(0, 25)
            oid = store.insert(
                "Composer",
                {
                    "name": name,
                    "birthyear": birthyear,
                    "master": previous,
                    "works": (),
                },
            )
            if name == FAMOUS_COMPOSER:
                famous = oid
            oids.append(oid)
            previous = oid
            serial += 1
    return oids, famous


def _generate_play(
    store: ObjectStore,
    config: MusicConfig,
    rng: random.Random,
    composer_oids: List[Oid],
    instrument_oids: List[Oid],
) -> None:
    """The ``Play`` relation of Figure 1: who plays which instrument.

    Each composer plays one or two instruments; relation instances are
    *values* (no inverse references)."""
    for composer_oid in composer_oids:
        plays = rng.sample(
            instrument_oids, k=min(len(instrument_oids), rng.randint(1, 2))
        )
        for instrument_oid in plays:
            store.insert(
                "Play", {"who": composer_oid, "instrument": instrument_oid}
            )


def _generate_works(
    store: ObjectStore,
    config: MusicConfig,
    rng: random.Random,
    composer_oids: List[Oid],
    instrument_oids: List[Oid],
) -> None:
    """Works with back-references; a ``selective_fraction`` of works is
    scored for the selective instrument (plus the second instrument, so
    the Figure 2 two-instrument query has answers)."""
    selective = instrument_oids[0]
    second = instrument_oids[1]
    others = instrument_oids[2:] if len(instrument_oids) > 2 else instrument_oids
    serial = 0
    famous = {
        record.oid
        for record in store.extent("Composer").records
        if record.values.get("name") == FAMOUS_COMPOSER
    }
    for composer_oid in composer_oids:
        work_oids: List[Oid] = []
        for work_index in range(config.works_per_composer):
            uses_selective = rng.random() < config.selective_fraction
            if composer_oid in famous and work_index == 0:
                # The Figure 2 query ("works of Bach including a
                # harpsichord and a flute") must have an answer at any
                # selectivity setting.
                uses_selective = True
            if uses_selective:
                chosen = [selective, second]
                extra_needed = max(0, config.instruments_per_work - 2)
            else:
                chosen = []
                extra_needed = config.instruments_per_work
            pool = [oid for oid in others if oid not in chosen]
            rng.shuffle(pool)
            chosen.extend(pool[:extra_needed])
            work_oid = store.insert(
                "Composition",
                {
                    "title": f"work_{serial:05d}",
                    "author": composer_oid,
                    "instruments": tuple(chosen),
                },
            )
            work_oids.append(work_oid)
            serial += 1
        composer = store.peek(composer_oid)
        composer.values["works"] = tuple(work_oids)
