"""Service-level metrics registry.

Aggregates per-query :class:`~repro.engine.metrics.RuntimeMetrics` and
the serving-layer counters an operator dashboard needs: cache hit ratio,
optimize vs. execute latency, and estimated vs. measured cost (the
Figure 5 validation, now tracked continuously in production instead of
once per benchmark).  A bounded ring of recent per-query records
supports the ``stats`` protocol request without unbounded growth; a
second bounded ring holds the slow-query log (queries over the
configured latency threshold, or whose measured cost diverged from the
estimate by more than the misestimate ratio).  :meth:`to_prometheus`
renders everything in the Prometheus text exposition format.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.engine.metrics import RuntimeMetrics

__all__ = [
    "LATENCY_BUCKETS",
    "LatencyHistogram",
    "QueryRecord",
    "ServiceMetrics",
]


@dataclass
class QueryRecord:
    """One served query, as remembered by the metrics ring."""

    canonical: str
    cache_status: str
    estimated_cost: float
    measured_cost: float
    optimize_seconds: float
    execute_seconds: float
    rows: int
    request_id: str = ""
    #: Engine batch size the request ran with, so slow-log entries and
    #: telemetry attribute latency regressions to the right pipeline
    #: configuration (0 = unknown, for records predating the field).
    batch_size: int = 0
    #: Engine batch layout the request ran with (``"row"`` or
    #: ``"columnar"``; "" = unknown, for records predating the field).
    batch_layout: str = ""
    #: Shard width the request ran with (1 = single-process).  The
    #: per-shard counters below belong to *this* request alone — they
    #: are read from the request's own engine, whose shard sessions are
    #: private, so two concurrent sharded queries never bleed work into
    #: each other's records.
    shards: int = 1
    exchange_tuples: int = 0
    exchange_bytes: int = 0
    #: Logical reads per shard index, for this request only.
    reads_by_shard: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "query": self.canonical,
            "cache": self.cache_status,
            "estimated_cost": round(self.estimated_cost, 2),
            "measured_cost": round(self.measured_cost, 2),
            "optimize_ms": round(self.optimize_seconds * 1000, 3),
            "execute_ms": round(self.execute_seconds * 1000, 3),
            "rows": self.rows,
            "request_id": self.request_id,
            "batch_size": self.batch_size,
            "batch_layout": self.batch_layout,
            "shards": self.shards,
        }
        if self.shards > 1:
            payload["exchange_tuples"] = self.exchange_tuples
            payload["exchange_bytes"] = self.exchange_bytes
            payload["reads_by_shard"] = {
                str(shard): reads
                for shard, reads in sorted(self.reads_by_shard.items())
            }
        return payload


#: Upper bounds (seconds) of the execute-latency histogram.  Unlike the
#: windowed percentile summary, the bucket counters are cumulative
#: since process start — Prometheus can ``rate()`` and aggregate them
#: across scrapes and restarts.
LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencyHistogram:
    """Fixed-bucket cumulative histogram (Prometheus ``_bucket``/``le``
    exposition).  Not thread-safe on its own; the owning registry's
    lock covers it."""

    def __init__(self, buckets=LATENCY_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.total = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.total += 1
        self.sum += seconds
        for index, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.counts[index] += 1

    def snapshot(self) -> dict:
        cumulative = {}
        for bound, count in zip(self.buckets, self.counts):
            cumulative[f"{bound:g}"] = count
        cumulative["+Inf"] = self.total
        return {
            "buckets": cumulative,
            "sum": round(self.sum, 6),
            "count": self.total,
        }

    def exposition(self, name: str, help_text: str) -> List[str]:
        lines = [
            f"# HELP {name} {help_text}",
            f"# TYPE {name} histogram",
        ]
        for bound, count in zip(self.buckets, self.counts):
            lines.append(f'{name}_bucket{{le="{bound:g}"}} {count}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {self.total}')
        lines.append(f"{name}_sum {_number(self.sum)}")
        lines.append(f"{name}_count {self.total}")
        return lines


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _percentile(values: List[float], fraction: float) -> float:
    """Linear interpolation between closest ranks (the ``inclusive``
    method of :func:`statistics.quantiles`): the p-quantile sits at
    position ``p * (n - 1)`` of the sorted sample, interpolated
    between its floor and ceiling neighbours."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


class ServiceMetrics:
    """Thread-safe aggregation of everything the service observes."""

    def __init__(self, window: int = 256, slow_window: int = 64) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.executed = 0
        self.errors = 0
        self.timeouts = 0
        self.cancelled = 0
        self.rejected = 0
        self.slow_queries = 0
        self.counters: Dict[str, int] = {}
        self.optimize_seconds = 0.0
        self.execute_seconds = 0.0
        self.runtime = RuntimeMetrics()
        self.recent: Deque[QueryRecord] = deque(maxlen=window)
        #: The slow-query log: record dicts plus why they qualified.
        self.slow: Deque[dict] = deque(maxlen=slow_window)
        #: Cumulative execute-latency histogram (dashboards aggregate
        #: the bucket counters across restarts; the percentile summary
        #: above only covers the recent window).
        self.latency_histogram = LatencyHistogram()
        #: Cumulative fixpoint-round latency histogram, fed by the live
        #: progress tracker (one observation per semi-naive round).
        self.round_histogram = LatencyHistogram()
        #: Labelled gauges: name -> (help text, {labels-tuple: value}).
        #: The feedback loop publishes per-query-class misestimate
        #: ratios here.
        self.gauges: Dict[str, tuple] = {}

    # -- recording ----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_cancel(self) -> None:
        with self._lock:
            self.cancelled += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_execution(
        self,
        record: QueryRecord,
        runtime: Optional[RuntimeMetrics] = None,
    ) -> None:
        with self._lock:
            self.executed += 1
            self.optimize_seconds += record.optimize_seconds
            self.execute_seconds += record.execute_seconds
            self.latency_histogram.observe(record.execute_seconds)
            if runtime is not None:
                self.runtime.merge(runtime)
            self.recent.append(record)

    def set_gauge(
        self,
        name: str,
        value: float,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Publish one labelled gauge sample (overwrites the previous
        value for the same label set)."""
        label_key = tuple(sorted((labels or {}).items()))
        with self._lock:
            help_known, samples = self.gauges.get(name, ("", {}))
            samples = dict(samples)
            samples[label_key] = value
            self.gauges[name] = (help_text or help_known, samples)

    def replace_gauge(
        self,
        name: str,
        help_text: str,
        samples: Dict[tuple, float],
    ) -> None:
        """Replace *every* sample of a labelled gauge at once.

        Scrape-time refreshers that publish per-query-class gauges use
        this instead of repeated :meth:`set_gauge` calls: a class that
        fell out of the summary disappears instead of exposing its
        stale last value forever, and the publisher can enforce a label
        cardinality cap by simply not including the tail classes.
        ``samples`` maps sorted label tuples (as built by
        :meth:`set_gauge`) to values; an empty dict drops the gauge."""
        with self._lock:
            if samples:
                self.gauges[name] = (help_text, dict(samples))
            else:
                self.gauges.pop(name, None)

    def observe_round(
        self,
        seconds: float,
        barrier_fraction: Optional[float] = None,
        skew: Optional[float] = None,
        shards: int = 1,
    ) -> None:
        """Record one semi-naive fixpoint round: its latency into the
        round histogram, and — for distributed rounds — the fraction of
        the round the coordinator spent blocked on the barrier and the
        observed max/mean shard skew as gauges."""
        with self._lock:
            self.round_histogram.observe(seconds)
        # set_gauge takes the same (non-reentrant) lock — call it after
        # releasing ours.
        if barrier_fraction is not None:
            self.set_gauge(
                "fixpoint_barrier_wait_fraction",
                max(0.0, min(1.0, barrier_fraction)),
                "Fraction of the last distributed round the coordinator "
                "spent blocked on the shard barrier.",
                labels={"shards": str(shards)},
            )
        if skew is not None:
            self.set_gauge(
                "fixpoint_shard_skew",
                max(1.0, skew),
                "Observed max/mean shard load of the last distributed "
                "round.",
                labels={"shards": str(shards)},
            )

    def record_slow(self, record: QueryRecord, reasons: List[str]) -> None:
        """Admit one query into the slow-query log."""
        with self._lock:
            self.slow_queries += 1
            entry = record.to_dict()
            entry["reasons"] = list(reasons)
            self.slow.append(entry)

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable summary for the ``stats`` request."""
        with self._lock:
            execute_times = [r.execute_seconds for r in self.recent]
            ratios = [
                r.measured_cost / r.estimated_cost
                for r in self.recent
                if r.estimated_cost > 0 and r.measured_cost > 0
            ]
            return {
                "requests": self.requests,
                "executed": self.executed,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "slow_queries": self.slow_queries,
                "counters": dict(self.counters),
                "optimize_seconds": round(self.optimize_seconds, 6),
                "execute_seconds": round(self.execute_seconds, 6),
                "execute_p50_ms": round(
                    _percentile(execute_times, 0.50) * 1000, 3
                ),
                "execute_p95_ms": round(
                    _percentile(execute_times, 0.95) * 1000, 3
                ),
                "measured_over_estimated": (
                    round(sum(ratios) / len(ratios), 4) if ratios else None
                ),
                "fix_iterations": self.runtime.fix_iterations,
                "exchange_rounds": self.runtime.exchange_rounds,
                "exchange_tuples": self.runtime.exchange_tuples,
                "exchange_bytes": self.runtime.exchange_bytes,
                "page_reads": self.runtime.buffer.physical_reads,
                "predicate_evals": self.runtime.predicate_evals,
                "latency_histogram": self.latency_histogram.snapshot(),
                "round_latency_histogram": self.round_histogram.snapshot(),
                "recent": [r.to_dict() for r in list(self.recent)[-10:]],
                "slow": list(self.slow),
            }

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4), for
        the ``metrics`` protocol request and the HTTP ``/metrics``
        endpoint of ``repro serve --metrics-port``."""
        with self._lock:
            execute_times = [r.execute_seconds for r in self.recent]
            counters = dict(self.counters)
            lines: List[str] = []

            def counter(name: str, help_text: str, value) -> None:
                lines.append(f"# HELP repro_{name} {help_text}")
                lines.append(f"# TYPE repro_{name} counter")
                lines.append(f"repro_{name} {_number(value)}")

            counter("requests_total", "Query requests received.", self.requests)
            counter("queries_executed_total", "Queries executed to completion.", self.executed)
            counter("errors_total", "Requests failed with an error.", self.errors)
            counter("timeouts_total", "Queries cancelled by timeout.", self.timeouts)
            counter("cancelled_total", "Queries cancelled by the client.", self.cancelled)
            counter("rejected_total", "Queries rejected by admission control.", self.rejected)
            counter("slow_queries_total", "Queries admitted to the slow-query log.", self.slow_queries)
            counter("optimize_seconds_total", "Time spent optimizing.", self.optimize_seconds)
            counter("execute_seconds_total", "Time spent executing.", self.execute_seconds)
            counter("page_reads_total", "Physical page reads.", self.runtime.buffer.physical_reads)
            counter("predicate_evals_total", "Predicate evaluations.", self.runtime.predicate_evals)
            counter("fix_iterations_total", "Semi-naive fixpoint iterations.", self.runtime.fix_iterations)
            counter("exchange_rounds_total", "Distributed fixpoint scatter-gather rounds.", self.runtime.exchange_rounds)
            counter("exchange_tuples_total", "Tuples moved through the delta exchange (both legs).", self.runtime.exchange_tuples)
            counter("exchange_bytes_total", "Bytes moved through the delta exchange (both legs).", self.runtime.exchange_bytes)

            if self.runtime.tuples_by_shard or self.runtime.reads_by_shard:
                lines.append("# HELP repro_shard_tuples_total Tuples produced per shard across distributed fixpoints.")
                lines.append("# TYPE repro_shard_tuples_total counter")
                for shard, value in sorted(self.runtime.tuples_by_shard.items()):
                    lines.append(
                        f'repro_shard_tuples_total{{shard="{shard}"}} '
                        f"{_number(value)}"
                    )
                lines.append("# HELP repro_shard_reads_total Logical page reads per shard across distributed fixpoints.")
                lines.append("# TYPE repro_shard_reads_total counter")
                for shard, value in sorted(self.runtime.reads_by_shard.items()):
                    lines.append(
                        f'repro_shard_reads_total{{shard="{shard}"}} '
                        f"{_number(value)}"
                    )

            lines.append("# HELP repro_cache_lookups_total Plan cache lookups by outcome.")
            lines.append("# TYPE repro_cache_lookups_total counter")
            for name, value in sorted(counters.items()):
                if name.startswith("cache_"):
                    status = name[len("cache_"):]
                    lines.append(
                        f'repro_cache_lookups_total{{status="{status}"}} '
                        f"{_number(value)}"
                    )

            # Feedback-loop counters (zero until the loop acts, but
            # always exposed so dashboards can alert on them).
            counter(
                "recalibrations_total",
                "Online cost-model recalibrations performed.",
                counters.get("recalibrations", 0),
            )
            counter(
                "plan_regressions_total",
                "Plan changes flagged as latency regressions.",
                counters.get("plan_regressions", 0),
            )
            counter(
                "plans_pinned_total",
                "Plans pinned against drift re-optimization.",
                counters.get("plans_pinned", 0),
            )

            # Overhead-governor counters: zero until an observability
            # budget is configured, but always exposed so dashboards
            # can alert the moment a deployment turns the governor on.
            counter(
                "anomalies_total",
                "Anomalies raised by the per-class EWMA+MAD detector.",
                counters.get("anomalies", 0),
            )
            counter(
                "flight_bundles_total",
                "Flight-recorder diagnostic bundles recorded.",
                counters.get("flight_bundles", 0),
            )
            counter(
                "obs_committed_total",
                "Buffered trace/profile runs committed by tail sampling.",
                counters.get("obs_committed", 0),
            )
            counter(
                "obs_dropped_total",
                "Buffered trace/profile runs dropped at completion.",
                counters.get("obs_dropped", 0),
            )

            for name, (help_text, samples) in sorted(self.gauges.items()):
                lines.append(f"# HELP repro_{name} {help_text}")
                lines.append(f"# TYPE repro_{name} gauge")
                for label_key, value in sorted(samples.items()):
                    if label_key:
                        rendered = ",".join(
                            f'{key}="{_escape_label(str(val))}"'
                            for key, val in label_key
                        )
                        lines.append(
                            f"repro_{name}{{{rendered}}} {_number(value)}"
                        )
                    else:
                        lines.append(f"repro_{name} {_number(value)}")

            lines.extend(
                self.latency_histogram.exposition(
                    "repro_execute_latency_hist_seconds",
                    "Execute latency histogram (cumulative since start).",
                )
            )

            lines.extend(
                self.round_histogram.exposition(
                    "repro_fixpoint_round_seconds",
                    "Semi-naive fixpoint round latency histogram "
                    "(cumulative since start).",
                )
            )

            lines.append("# HELP repro_execute_latency_seconds Execute latency over the recent window.")
            lines.append("# TYPE repro_execute_latency_seconds summary")
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f'repro_execute_latency_seconds{{quantile="{q}"}} '
                    f"{_number(_percentile(execute_times, q))}"
                )
            lines.append(
                "repro_execute_latency_seconds_sum "
                f"{_number(sum(execute_times))}"
            )
            lines.append(
                f"repro_execute_latency_seconds_count {len(execute_times)}"
            )
            return "\n".join(lines) + "\n"


def _number(value) -> str:
    """Prometheus sample values: integers stay bare, floats use repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))
