"""Service-level metrics registry.

Aggregates per-query :class:`~repro.engine.metrics.RuntimeMetrics` and
the serving-layer counters an operator dashboard needs: cache hit ratio,
optimize vs. execute latency, and estimated vs. measured cost (the
Figure 5 validation, now tracked continuously in production instead of
once per benchmark).  A bounded ring of recent per-query records
supports the ``stats`` protocol request without unbounded growth; a
second bounded ring holds the slow-query log (queries over the
configured latency threshold, or whose measured cost diverged from the
estimate by more than the misestimate ratio).  :meth:`to_prometheus`
renders everything in the Prometheus text exposition format.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.engine.metrics import RuntimeMetrics

__all__ = ["QueryRecord", "ServiceMetrics"]


@dataclass
class QueryRecord:
    """One served query, as remembered by the metrics ring."""

    canonical: str
    cache_status: str
    estimated_cost: float
    measured_cost: float
    optimize_seconds: float
    execute_seconds: float
    rows: int
    request_id: str = ""

    def to_dict(self) -> dict:
        return {
            "query": self.canonical,
            "cache": self.cache_status,
            "estimated_cost": round(self.estimated_cost, 2),
            "measured_cost": round(self.measured_cost, 2),
            "optimize_ms": round(self.optimize_seconds * 1000, 3),
            "execute_ms": round(self.execute_seconds * 1000, 3),
            "rows": self.rows,
            "request_id": self.request_id,
        }


def _percentile(values: List[float], fraction: float) -> float:
    """Linear interpolation between closest ranks (the ``inclusive``
    method of :func:`statistics.quantiles`): the p-quantile sits at
    position ``p * (n - 1)`` of the sorted sample, interpolated
    between its floor and ceiling neighbours."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


class ServiceMetrics:
    """Thread-safe aggregation of everything the service observes."""

    def __init__(self, window: int = 256, slow_window: int = 64) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.executed = 0
        self.errors = 0
        self.timeouts = 0
        self.cancelled = 0
        self.rejected = 0
        self.slow_queries = 0
        self.counters: Dict[str, int] = {}
        self.optimize_seconds = 0.0
        self.execute_seconds = 0.0
        self.runtime = RuntimeMetrics()
        self.recent: Deque[QueryRecord] = deque(maxlen=window)
        #: The slow-query log: record dicts plus why they qualified.
        self.slow: Deque[dict] = deque(maxlen=slow_window)

    # -- recording ----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_cancel(self) -> None:
        with self._lock:
            self.cancelled += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_execution(
        self,
        record: QueryRecord,
        runtime: Optional[RuntimeMetrics] = None,
    ) -> None:
        with self._lock:
            self.executed += 1
            self.optimize_seconds += record.optimize_seconds
            self.execute_seconds += record.execute_seconds
            if runtime is not None:
                self.runtime.merge(runtime)
            self.recent.append(record)

    def record_slow(self, record: QueryRecord, reasons: List[str]) -> None:
        """Admit one query into the slow-query log."""
        with self._lock:
            self.slow_queries += 1
            entry = record.to_dict()
            entry["reasons"] = list(reasons)
            self.slow.append(entry)

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable summary for the ``stats`` request."""
        with self._lock:
            execute_times = [r.execute_seconds for r in self.recent]
            ratios = [
                r.measured_cost / r.estimated_cost
                for r in self.recent
                if r.estimated_cost > 0 and r.measured_cost > 0
            ]
            return {
                "requests": self.requests,
                "executed": self.executed,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "slow_queries": self.slow_queries,
                "counters": dict(self.counters),
                "optimize_seconds": round(self.optimize_seconds, 6),
                "execute_seconds": round(self.execute_seconds, 6),
                "execute_p50_ms": round(
                    _percentile(execute_times, 0.50) * 1000, 3
                ),
                "execute_p95_ms": round(
                    _percentile(execute_times, 0.95) * 1000, 3
                ),
                "measured_over_estimated": (
                    round(sum(ratios) / len(ratios), 4) if ratios else None
                ),
                "fix_iterations": self.runtime.fix_iterations,
                "page_reads": self.runtime.buffer.physical_reads,
                "predicate_evals": self.runtime.predicate_evals,
                "recent": [r.to_dict() for r in list(self.recent)[-10:]],
                "slow": list(self.slow),
            }

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4), for
        the ``metrics`` protocol request and the HTTP ``/metrics``
        endpoint of ``repro serve --metrics-port``."""
        with self._lock:
            execute_times = [r.execute_seconds for r in self.recent]
            counters = dict(self.counters)
            lines: List[str] = []

            def counter(name: str, help_text: str, value) -> None:
                lines.append(f"# HELP repro_{name} {help_text}")
                lines.append(f"# TYPE repro_{name} counter")
                lines.append(f"repro_{name} {_number(value)}")

            counter("requests_total", "Query requests received.", self.requests)
            counter("queries_executed_total", "Queries executed to completion.", self.executed)
            counter("errors_total", "Requests failed with an error.", self.errors)
            counter("timeouts_total", "Queries cancelled by timeout.", self.timeouts)
            counter("cancelled_total", "Queries cancelled by the client.", self.cancelled)
            counter("rejected_total", "Queries rejected by admission control.", self.rejected)
            counter("slow_queries_total", "Queries admitted to the slow-query log.", self.slow_queries)
            counter("optimize_seconds_total", "Time spent optimizing.", self.optimize_seconds)
            counter("execute_seconds_total", "Time spent executing.", self.execute_seconds)
            counter("page_reads_total", "Physical page reads.", self.runtime.buffer.physical_reads)
            counter("predicate_evals_total", "Predicate evaluations.", self.runtime.predicate_evals)
            counter("fix_iterations_total", "Semi-naive fixpoint iterations.", self.runtime.fix_iterations)

            lines.append("# HELP repro_cache_lookups_total Plan cache lookups by outcome.")
            lines.append("# TYPE repro_cache_lookups_total counter")
            for name, value in sorted(counters.items()):
                if name.startswith("cache_"):
                    status = name[len("cache_"):]
                    lines.append(
                        f'repro_cache_lookups_total{{status="{status}"}} '
                        f"{_number(value)}"
                    )

            lines.append("# HELP repro_execute_latency_seconds Execute latency over the recent window.")
            lines.append("# TYPE repro_execute_latency_seconds summary")
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f'repro_execute_latency_seconds{{quantile="{q}"}} '
                    f"{_number(_percentile(execute_times, q))}"
                )
            lines.append(
                "repro_execute_latency_seconds_sum "
                f"{_number(sum(execute_times))}"
            )
            lines.append(
                f"repro_execute_latency_seconds_count {len(execute_times)}"
            )
            return "\n".join(lines) + "\n"


def _number(value) -> str:
    """Prometheus sample values: integers stay bare, floats use repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))
