"""Service-level metrics registry.

Aggregates per-query :class:`~repro.engine.metrics.RuntimeMetrics` and
the serving-layer counters a operator dashboard needs: cache hit ratio,
optimize vs. execute latency, and estimated vs. measured cost (the
Figure 5 validation, now tracked continuously in production instead of
once per benchmark).  A bounded ring of recent per-query records
supports the ``stats`` protocol request without unbounded growth.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.engine.metrics import RuntimeMetrics

__all__ = ["QueryRecord", "ServiceMetrics"]


@dataclass
class QueryRecord:
    """One served query, as remembered by the metrics ring."""

    canonical: str
    cache_status: str
    estimated_cost: float
    measured_cost: float
    optimize_seconds: float
    execute_seconds: float
    rows: int

    def to_dict(self) -> dict:
        return {
            "query": self.canonical,
            "cache": self.cache_status,
            "estimated_cost": round(self.estimated_cost, 2),
            "measured_cost": round(self.measured_cost, 2),
            "optimize_ms": round(self.optimize_seconds * 1000, 3),
            "execute_ms": round(self.execute_seconds * 1000, 3),
            "rows": self.rows,
        }


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


class ServiceMetrics:
    """Thread-safe aggregation of everything the service observes."""

    def __init__(self, window: int = 256) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.executed = 0
        self.errors = 0
        self.timeouts = 0
        self.cancelled = 0
        self.rejected = 0
        self.counters: Dict[str, int] = {}
        self.optimize_seconds = 0.0
        self.execute_seconds = 0.0
        self.runtime = RuntimeMetrics()
        self.recent: Deque[QueryRecord] = deque(maxlen=window)

    # -- recording ----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_cancel(self) -> None:
        with self._lock:
            self.cancelled += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_execution(
        self,
        record: QueryRecord,
        runtime: Optional[RuntimeMetrics] = None,
    ) -> None:
        with self._lock:
            self.executed += 1
            self.optimize_seconds += record.optimize_seconds
            self.execute_seconds += record.execute_seconds
            if runtime is not None:
                self.runtime.merge(runtime)
            self.recent.append(record)

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable summary for the ``stats`` request."""
        with self._lock:
            execute_times = [r.execute_seconds for r in self.recent]
            ratios = [
                r.measured_cost / r.estimated_cost
                for r in self.recent
                if r.estimated_cost > 0 and r.measured_cost > 0
            ]
            return {
                "requests": self.requests,
                "executed": self.executed,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "counters": dict(self.counters),
                "optimize_seconds": round(self.optimize_seconds, 6),
                "execute_seconds": round(self.execute_seconds, 6),
                "execute_p50_ms": round(
                    _percentile(execute_times, 0.50) * 1000, 3
                ),
                "execute_p95_ms": round(
                    _percentile(execute_times, 0.95) * 1000, 3
                ),
                "measured_over_estimated": (
                    round(sum(ratios) / len(ratios), 4) if ratios else None
                ),
                "fix_iterations": self.runtime.fix_iterations,
                "page_reads": self.runtime.buffer.physical_reads,
                "predicate_evals": self.runtime.predicate_evals,
                "recent": [r.to_dict() for r in list(self.recent)[-10:]],
            }
