"""Admission control for the query service.

Two gates, both cost-controlled:

* **budget** — a request whose *estimated* cost (from the optimizer or
  the plan cache) exceeds ``cost_budget`` is rejected before touching
  the store.  The estimate comes from the same Figure 5 model the
  optimizer searched with, so the budget is denominated in the paper's
  cost units (page reads + weighted predicate evaluations).
* **slots** — at most ``max_concurrent`` units of execution run at
  once; excess requests queue for ``queue_timeout`` seconds and are
  then rejected, bounding tail latency instead of letting the queue
  grow without limit.  A request running the fixpoint at parallelism
  ``N`` reserves ``N`` slots (capped at ``max_concurrent``) — parallel
  queries consume proportionally more of the concurrency budget, and a
  timeout or cancellation releases every slot the request held.

Per-query *timeouts* are handled downstream by the engine's
cancellation token (:mod:`repro.engine.cancel`); the controller only
picks the effective timeout (request override capped by the policy's
``max_timeout``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.errors import AdmissionError

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclass
class AdmissionPolicy:
    """Knobs for admission control.

    ``cost_budget=None`` disables the budget gate;
    ``default_timeout=None`` means no timeout unless the request asks
    for one; ``max_timeout`` caps request-supplied timeouts.
    """

    cost_budget: Optional[float] = None
    max_concurrent: int = 4
    queue_timeout: float = 5.0
    default_timeout: Optional[float] = None
    max_timeout: Optional[float] = None


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` to incoming requests."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        if self.policy.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self._lock = threading.Lock()
        self._slots_free = self.policy.max_concurrent
        self._slots_changed = threading.Condition(self._lock)
        self.admitted = 0
        self.rejected_budget = 0
        self.rejected_queue = 0

    def admit(self, estimated_cost: float) -> None:
        """Apply the budget gate; raises :class:`AdmissionError` with
        ``reason="over_budget"`` when the estimate exceeds it."""
        budget = self.policy.cost_budget
        if budget is not None and estimated_cost > budget:
            with self._lock:
                self.rejected_budget += 1
            raise AdmissionError(
                f"estimated cost {estimated_cost:.1f} exceeds the admission "
                f"budget {budget:.1f}",
                reason="over_budget",
            )
        with self._lock:
            self.admitted += 1

    def slot_weight(self, parallelism: int = 1) -> int:
        """Execution slots a request at ``parallelism`` reserves: one
        per worker, capped at ``max_concurrent`` (a wider ask could
        never be granted)."""
        return max(1, min(parallelism, self.policy.max_concurrent))

    @contextmanager
    def slot(self, weight: int = 1):
        """Hold ``weight`` execution slots, atomically; raises
        :class:`AdmissionError` with ``reason="queue_full"`` if they do
        not all free up within the queue timeout.  All ``weight``
        slots are released together on exit — including on timeout or
        cancellation of the guarded execution."""
        weight = self.slot_weight(weight)
        deadline = time.monotonic() + self.policy.queue_timeout
        with self._slots_changed:
            while self._slots_free < weight:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._slots_changed.wait(remaining):
                    self.rejected_queue += 1
                    raise AdmissionError(
                        f"{weight} execution slot(s) did not free up within "
                        f"{self.policy.queue_timeout:.1f}s "
                        f"({self.policy.max_concurrent} concurrent max)",
                        reason="queue_full",
                    )
            self._slots_free -= weight
        try:
            yield weight
        finally:
            with self._slots_changed:
                self._slots_free += weight
                self._slots_changed.notify_all()

    def effective_timeout(self, requested: Optional[float]) -> Optional[float]:
        """The timeout to enforce for a request: the request's own ask,
        else the policy default; capped by ``max_timeout``."""
        timeout = requested if requested is not None else self.policy.default_timeout
        cap = self.policy.max_timeout
        if cap is not None:
            timeout = cap if timeout is None else min(timeout, cap)
        return timeout

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "admitted": self.admitted,
                "rejected_budget": self.rejected_budget,
                "rejected_queue": self.rejected_queue,
                "cost_budget": self.policy.cost_budget,
                "max_concurrent": self.policy.max_concurrent,
                "slots_in_use": self.policy.max_concurrent - self._slots_free,
            }
