"""Query service: concurrent serving on top of the optimizer/engine.

Amortizes the paper's cost-controlled search across repeated queries:
a stats-aware LRU plan cache (:mod:`~repro.service.plan_cache`),
admission control with cost budgets and per-query timeouts
(:mod:`~repro.service.admission`), a line-JSON TCP protocol
(:mod:`~repro.service.protocol`, :mod:`~repro.service.server`,
:mod:`~repro.service.client`) and a service-level metrics registry
(:mod:`~repro.service.metrics`).  See ``docs/service.md``.
"""

from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.metrics import QueryRecord, ServiceMetrics
from repro.service.plan_cache import (
    CachedPlan,
    LookupResult,
    PlanCache,
    schema_fingerprint,
    stats_fingerprint,
)
from repro.service.server import (
    MetricsServer,
    QueryServer,
    QueryService,
    ServiceConfig,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "ServiceClient",
    "ServiceClientError",
    "QueryRecord",
    "ServiceMetrics",
    "CachedPlan",
    "LookupResult",
    "PlanCache",
    "schema_fingerprint",
    "stats_fingerprint",
    "MetricsServer",
    "QueryServer",
    "QueryService",
    "ServiceConfig",
]
