"""The query service: an in-process core plus a socket front-end.

:class:`QueryService` wraps the existing :class:`~repro.core.Optimizer`
/ :class:`~repro.engine.Engine` stack into a long-running server loop:
canonicalize → plan-cache probe (with cost-drift invalidation) →
optimize on miss → admission control → execute under a cancellation
token → record metrics.  It is fully usable in-process (tests,
benchmarks, embedding); :class:`QueryServer` exposes it over TCP with
the line-JSON protocol of :mod:`repro.service.protocol`, one thread per
request via a ``ThreadPoolExecutor``.

Concurrency model: the simulated object store (pages, buffer pool,
temp registration) is a single shared mutable structure, so plan
execution and optimization serialize on one store lock — like a
single-writer storage engine behind a concurrent front door.  Parsing,
canonicalization, protocol handling and queueing all overlap; the
admission controller bounds how many requests may wait on the store at
once.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.baselines import cost_controlled_optimizer
from repro.core.optimizer import Optimizer, OptimizerConfig
from repro.core.strategies import STRATEGY_NAMES
from repro.cost.model import DetailedCostModel
from repro.cost.params import CostParameters
from repro.cost.recost import recost_plan
from repro.engine.batch import BATCH_LAYOUTS, default_batch_size
from repro.engine.cancel import CancellationToken
from repro.engine.context import validate_choice
from repro.engine.evaluator import Engine
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.lang.compile import compile_text
from repro.obs.anomaly import AnomalyConfig, AnomalyDetector
from repro.obs.explain import build_explain, render_explain
from repro.obs.feedback import (
    FeedbackConfig,
    FeedbackManager,
    build_observation,
)
from repro.obs.governor import GovernorConfig, ObservabilityGovernor
from repro.obs.history import plan_fingerprint, q_error, query_class
from repro.obs.log import get_logger
from repro.obs.profile import PlanProfiler
from repro.obs.progress import ProgressTracker
from repro.obs.recorder import FlightRecorder, build_bundle
from repro.obs.sampler import FULL_DETAIL, SamplingDecision
from repro.obs.trace import Tracer
from repro.physical.storage import Oid, StoredRecord
from repro.service import protocol
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.metrics import QueryRecord, ServiceMetrics
from repro.service.plan_cache import RECALIBRATION, CacheKey, CachedPlan, PlanCache
from repro.service.protocol import placeholder_names, substitute_params

__all__ = ["ServiceConfig", "QueryService", "QueryServer", "MetricsServer"]

#: Structured service log (JSON or key=value depending on
#: ``repro.obs.log.configure_logging``); records carry request ids and
#: query classes as fields, not formatted into the message.
_LOG = get_logger("service")


@dataclass
class ServiceConfig:
    """All serving knobs in one place."""

    cache_capacity: int = 64
    #: Tolerated relative drift of a cached plan's estimate under fresh
    #: statistics before the plan is re-optimized.
    drift_ratio: float = 0.5
    cost_budget: Optional[float] = None
    max_concurrent: int = 4
    queue_timeout: float = 5.0
    default_timeout: Optional[float] = None
    max_timeout: Optional[float] = None
    max_fix_iterations: int = 256
    #: Default fixpoint parallelism for requests that do not override
    #: it; the per-request ``parallelism`` field wins, and either way
    #: the grant is capped by ``max_concurrent`` (a parallel query
    #: reserves one admission slot per worker).
    parallelism: int = 1
    #: Default engine batch size for requests that do not override it
    #: (the per-request ``batch_size`` field wins); ``None`` defers to
    #: the engine default (``REPRO_BATCH_SIZE`` or 256).
    batch_size: Optional[int] = None
    #: Default engine batch layout (``"row"`` or ``"columnar"``) for
    #: requests that do not override it (the per-request
    #: ``batch_layout`` field wins); ``None`` defers to the engine
    #: default (``REPRO_BATCH_LAYOUT`` or columnar).  ``"row"`` pins
    #: the row-list compatibility semantics bit-for-bit.
    batch_layout: Optional[str] = None
    #: Default shard fan-out for requests that do not override it (the
    #: per-request ``shards`` field wins); at 1 no shard cluster is
    #: built and execution has exact single-process semantics.  Like
    #: parallelism, a shards-N request reserves N admission slots — a
    #: distributed query occupies N workers' worth of machine.
    shards: int = 1
    metrics_window: int = 256
    max_rows: Optional[int] = None
    #: A query slower than this (seconds) enters the slow-query log;
    #: ``None`` disables latency-based logging.
    slow_query_seconds: Optional[float] = 1.0
    #: A query whose measured cost exceeds its estimate by more than
    #: this factor (either direction) enters the slow-query log —
    #: cost-model misestimates are an observability signal even when
    #: the query itself was fast.  ``None`` disables the check.
    misestimate_ratio: Optional[float] = 10.0
    #: The feedback loop (telemetry store + online recalibration +
    #: plan-regression detection).  Recording is cheap — per-plan
    #: estimates are computed once per plan, per-query appends reuse
    #: counters the engine already keeps — but it can be switched off
    #: entirely for a pure-throughput deployment.
    feedback_enabled: bool = True
    #: Per-plan telemetry ring size.
    history_window: int = 128
    #: Bound on the number of tracked plan fingerprints.
    history_max_plans: int = 256
    #: JSONL file telemetry persists to (and is reloaded from on
    #: startup); ``None`` keeps history in memory only.
    history_path: Optional[str] = None
    #: A re-optimized plan whose median measured latency is worse than
    #: the old plan's by more than this factor is flagged.
    regression_ratio: float = 1.5
    #: Executions of the new plan required before the verdict.
    regression_min_runs: int = 3
    #: Observations required before ``recalibrate`` will fit.
    recalibrate_min_samples: int = 8
    #: Profile every Nth query for per-operator actual costs (0 records
    #: per-operator cardinalities only).
    profile_sample_every: int = 0
    #: Automatically pin the prior plan when a regression is flagged.
    auto_pin: bool = False
    #: Observability budget: the fraction of query wall time the
    #: overhead governor may spend on tracing and profiling.  ``None``
    #: (the default) disables the governor — the legacy
    #: ``profile_sample_every`` path decides profiling instead, and
    #: responses carry no ``obs`` echo (pre-governor payload shape).
    obs_budget: Optional[float] = None
    #: Span cap for the per-request buffered tracer.  Tail sampling
    #: buffers spans in memory until the query completes, so the
    #: buffer must be bounded or a runaway fixpoint would trade the
    #: overhead budget for memory instead.
    trace_max_spans: int = 4096
    #: Robust z-score above which a per-class metric is anomalous.
    anomaly_threshold: float = 4.0
    #: Baseline samples required before a class can raise anomalies.
    anomaly_min_samples: int = 8
    #: Directory flight-recorder bundles are written to; ``None``
    #: keeps the most recent bundles in memory for the ``diagnose``
    #: op only.
    bundle_dir: Optional[str] = None
    #: Total and per-query-class caps on recorded bundles (an anomaly
    #: storm must not fill the disk or drown out other classes).
    bundle_limit: int = 64
    bundle_per_class: int = 4
    #: Size cap in bytes for the telemetry JSONL sink; on overflow the
    #: file is compacted oldest-first.  ``None`` leaves it unbounded.
    history_max_bytes: Optional[int] = None
    #: The seeded generator recipe the serving database was built from
    #: (``{"db", "seed", "lineages", "generations", ...}``).  Embedded
    #: in flight-recorder bundles so ``repro replay`` can rebuild a
    #: bit-identical store; ``None`` produces bundles that replay only
    #: against a caller-supplied database.
    database_config: Optional[dict] = None
    #: Default transformPT search strategy
    #: (:data:`repro.core.strategies.STRATEGY_NAMES`; the per-request
    #: ``strategy`` field wins).  ``None`` keeps the paper's II
    #: reoptimization.
    strategy: Optional[str] = None

    def __post_init__(self) -> None:
        validate_choice("strategy", self.strategy, STRATEGY_NAMES)
        validate_choice("batch_layout", self.batch_layout, BATCH_LAYOUTS)


@dataclass
class Session:
    """One client session: a namespace of prepared statements."""

    id: str
    statements: Dict[str, str] = field(default_factory=dict)
    _counter: "itertools.count[int]" = field(
        default_factory=lambda: itertools.count(1)
    )

    def prepare(self, text: str) -> str:
        statement_id = f"s{next(self._counter)}"
        self.statements[statement_id] = text
        return statement_id


class QueryService:
    """The serving core: cache, admission, metrics, sessions."""

    def __init__(self, database, config: Optional[ServiceConfig] = None) -> None:
        self.database = database
        self.physical = database.physical
        self.config = config or ServiceConfig()
        self.cache = PlanCache(
            capacity=self.config.cache_capacity,
            drift_ratio=self.config.drift_ratio,
        )
        self.admission = AdmissionController(
            AdmissionPolicy(
                cost_budget=self.config.cost_budget,
                max_concurrent=self.config.max_concurrent,
                queue_timeout=self.config.queue_timeout,
                default_timeout=self.config.default_timeout,
                max_timeout=self.config.max_timeout,
            )
        )
        self.metrics = ServiceMetrics(window=self.config.metrics_window)
        self.feedback: Optional[FeedbackManager] = None
        if self.config.feedback_enabled:
            self.feedback = FeedbackManager(
                FeedbackConfig(
                    history_window=self.config.history_window,
                    max_plans=self.config.history_max_plans,
                    persist_path=self.config.history_path,
                    regression_ratio=self.config.regression_ratio,
                    regression_min_runs=self.config.regression_min_runs,
                    recalibrate_min_samples=self.config.recalibrate_min_samples,
                    profile_sample_every=self.config.profile_sample_every,
                    auto_pin=self.config.auto_pin,
                    history_max_bytes=self.config.history_max_bytes,
                )
            )
        #: The overhead governor and anomaly detector: built only when
        #: an observability budget is configured; ``None`` keeps the
        #: pre-governor behavior byte-for-byte.
        self.governor: Optional[ObservabilityGovernor] = None
        self.anomalies: Optional[AnomalyDetector] = None
        if self.config.obs_budget:
            self.governor = ObservabilityGovernor(
                GovernorConfig(budget=self.config.obs_budget)
            )
            self.anomalies = AnomalyDetector(
                AnomalyConfig(
                    threshold=self.config.anomaly_threshold,
                    min_samples=self.config.anomaly_min_samples,
                )
            )
        #: Flight recorder: always constructed (memory-only without a
        #: bundle directory) so the ``diagnose`` op works everywhere.
        self.recorder = FlightRecorder(
            directory=self.config.bundle_dir,
            max_bundles=self.config.bundle_limit,
            per_class=self.config.bundle_per_class,
        )
        #: Recalibrated unit costs, hot-swapped by ``recalibrate(apply)``;
        #: ``None`` means the defaults the optimizer was built with.
        self._cost_params: Optional[CostParameters] = None
        #: Entries evicted by a recalibration recost pass, awaiting
        #: their replacement plan (consumed on the next cache miss so
        #: the regression detector can compare old vs. new).
        self._replanned: Dict[CacheKey, CachedPlan] = {}
        self._sessions: Dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        #: Serializes every touch of the shared store/schema/statistics.
        self._store_lock = threading.RLock()
        #: Shard clusters by width, built lazily on the first request
        #: that asks for that fan-out (replicas are zero-copy, so a
        #: cluster is cheap; per-request state lives in shard sessions,
        #: so one cluster serves concurrent queries).
        self._clusters: Dict[int, object] = {}
        #: Request ids: a random per-service prefix plus a counter is
        #: as unique as a uuid per request but far cheaper to mint.
        self._request_prefix = uuid.uuid4().hex[:8]
        self._request_counter = itertools.count(1)
        #: Live fixpoint introspection: every served query registers a
        #: progress handle here; the ``progress`` op (and ``repro top``)
        #: read its snapshot, and each round feeds the round-latency
        #: histogram and skew/barrier gauges.
        self.progress = ProgressTracker(on_round=self._observe_round)
        self.started_at = time.time()

    def _observe_round(self, record: dict) -> None:
        """Progress-tracker callback: fold one fixpoint round into the
        service metrics (histogram + gauges)."""
        seconds = float(record.get("ms", 0.0)) / 1000.0
        barrier_ms = record.get("barrier_wait_ms")
        barrier_fraction = None
        if barrier_ms is not None and seconds > 0:
            barrier_fraction = (float(barrier_ms) / 1000.0) / seconds
        self.metrics.observe_round(
            seconds,
            barrier_fraction=barrier_fraction,
            skew=record.get("skew"),
            shards=int(record.get("shards", 1)),
        )

    def _next_request_id(self) -> str:
        return f"{self._request_prefix}{next(self._request_counter):08x}"

    # -- sessions -----------------------------------------------------------

    def open_session(self) -> str:
        session = Session(uuid.uuid4().hex[:12])
        with self._sessions_lock:
            self._sessions[session.id] = session
        return session.id

    def close_session(self, session_id: str) -> bool:
        with self._sessions_lock:
            return self._sessions.pop(session_id, None) is not None

    def _session(self, session_id: Optional[str]) -> Session:
        if not session_id:
            raise ProtocolError("this operation requires a session (hello first)")
        with self._sessions_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ProtocolError(f"unknown session {session_id!r}")
        return session

    # -- prepared statements ------------------------------------------------

    def prepare(self, session_id: Optional[str], text: str) -> dict:
        session = self._session(session_id)
        statement_id = session.prepare(text)
        return {
            "statement": statement_id,
            "parameters": placeholder_names(text),
        }

    # -- the serving path ---------------------------------------------------

    def run_query(
        self,
        text: str,
        params: Optional[dict] = None,
        timeout: Optional[float] = None,
        parallelism: Optional[int] = None,
        batch_size: Optional[int] = None,
        shards: Optional[int] = None,
        strategy: Optional[str] = None,
        batch_layout: Optional[str] = None,
    ) -> dict:
        """Serve one query text end to end; raises ReproError subclasses
        on failure (the protocol layer maps them to error codes).
        ``parallelism`` overrides the service default for this request
        (the grant is capped by the admission controller's slot count);
        ``batch_size`` overrides the engine batch size; ``batch_layout``
        overrides the operator exchange layout (``"row"`` pins the
        row-list compatibility semantics); ``shards`` overrides the
        shard fan-out (capped by the same slot count — admission weighs
        a request by max(parallelism, shards)); ``strategy`` overrides
        the transformPT search strategy used on a plan-cache miss."""
        self.metrics.record_request()
        try:
            return self._run_query(
                text, params, timeout, parallelism, batch_size, shards,
                strategy, batch_layout,
            )
        except ReproError as error:
            self._count_failure(error)
            raise

    def _count_failure(self, error: ReproError) -> None:
        from repro.errors import (
            AdmissionError,
            ExecutionCancelled,
            ExecutionTimeout,
        )

        if isinstance(error, ExecutionTimeout):
            self.metrics.record_timeout()
        elif isinstance(error, ExecutionCancelled):
            self.metrics.record_cancel()
        elif isinstance(error, AdmissionError):
            self.metrics.record_rejection()
        else:
            self.metrics.record_error()

    def _default_params(self) -> CostParameters:
        """Built-in unit costs, at the service's default parallelism —
        the parallel-Fix cost variant must see the worker count the
        engine will actually use, or transformPT's push comparison
        would be priced for the wrong machine."""
        params = CostParameters()
        params.parallelism = max(1, self.config.parallelism)
        params.batch_size = self.config.batch_size or default_batch_size()
        params.shards = max(1, self.config.shards)
        return params

    def _current_model(self) -> Optional[DetailedCostModel]:
        """The recalibrated cost model, or ``None`` for the defaults
        (callees build a default model lazily when they need one)."""
        if self._cost_params is None:
            if self.config.parallelism <= 1 and self.config.shards <= 1:
                return None
            return DetailedCostModel(self.physical, self._default_params())
        return DetailedCostModel(self.physical, self._cost_params)

    def _optimizer(self, strategy: Optional[str] = None):
        """A fresh optimizer honouring the hot-swapped parameters.

        ``strategy`` (a :data:`STRATEGY_NAMES` name) overrides the
        configured default; ``"ii"``/``None`` keep the paper's
        cost-controlled II optimizer."""
        name = strategy or self.config.strategy
        if name is not None and name != "ii":
            return Optimizer(
                self.physical,
                self._current_model(),
                OptimizerConfig(strategy=name),
            )
        return cost_controlled_optimizer(self.physical, self._current_model())

    def _model_for(self, width: int) -> Optional[DetailedCostModel]:
        """A cost model priced for ``width`` shards (per-request
        EXPLAIN/trace fan-out), falling back to the serving default."""
        if width <= 1:
            return self._current_model()
        from dataclasses import replace

        params = replace(
            self._cost_params or self._default_params(), shards=width
        )
        return DetailedCostModel(self.physical, params)

    def _cluster_for(self, width: int):
        """The shared shard cluster for ``width`` shards, built lazily
        on first use.  Callers hold ``_store_lock`` (cluster
        construction snapshots the store's extent tables)."""
        if width <= 1:
            return None
        cluster = self._clusters.get(width)
        if cluster is None:
            # Imported here, not at module top: repro.dist uses the
            # service protocol's framing, so a top-level import would
            # be circular.
            from repro.dist import ShardCluster

            cluster = ShardCluster(self.physical, width)
            self._clusters[width] = cluster
        return cluster

    def _run_query(
        self,
        text: str,
        params: Optional[dict],
        timeout: Optional[float],
        parallelism: Optional[int] = None,
        batch_size: Optional[int] = None,
        shards: Optional[int] = None,
        strategy: Optional[str] = None,
        batch_layout: Optional[str] = None,
    ) -> dict:
        substituted = substitute_params(text, params)
        validate_choice("strategy", strategy, STRATEGY_NAMES)
        validate_choice("batch_layout", batch_layout, BATCH_LAYOUTS)
        feedback = self.feedback
        fingerprint: Optional[str] = None
        optimize_started = time.perf_counter()
        with self._store_lock:
            key = self.cache.key_for(substituted, self.physical)
            if strategy is not None and strategy != (
                self.config.strategy or "ii"
            ):
                # A strategy override must not collide with plans
                # cached under the default (or another) strategy:
                # suffix the canonical text, like a different query.
                key = (f"{key[0]}\n-- strategy={strategy}", key[1])
            lookup = self.cache.lookup(key, self.physical, self._current_model())
            if lookup.entry is not None:
                plan, estimated = lookup.entry.plan, lookup.entry.cost
                plans_costed = 0
                fingerprint = lookup.entry.fingerprint
                if feedback is not None and fingerprint is None:
                    fingerprint = feedback.register_plan(
                        key[0], plan, estimated
                    )
                    lookup.entry.fingerprint = fingerprint
            else:
                graph = compile_text(substituted, self.database.catalog)
                optimizer = self._optimizer(strategy)
                result = optimizer.optimize(graph)
                plan, estimated = result.plan, result.cost
                plans_costed = result.plans_costed
                entry = self.cache.store(key, plan, estimated, self.physical)
                if feedback is not None:
                    fingerprint = feedback.register_plan(
                        key[0], plan, estimated, optimizer.cost_model
                    )
                    entry.fingerprint = fingerprint
                    # A drift eviction (this lookup) or a recalibration
                    # recost pass (earlier) replaced a cached plan: put
                    # the replacement on regression watch.
                    old = lookup.evicted or self._replanned.pop(key, None)
                    if old is not None:
                        feedback.plan_changed(
                            key[0],
                            old.plan,
                            old.cost,
                            plan,
                            estimated,
                            lookup.reason or RECALIBRATION,
                        )
        optimize_elapsed = time.perf_counter() - optimize_started
        self.metrics.count(f"cache_{lookup.status}")

        self.admission.admit(estimated)
        effective_timeout = self.admission.effective_timeout(timeout)
        token = CancellationToken(effective_timeout)
        # Minted before execution so the running query is addressable:
        # shard-worker thread names, exchange frames, dist log lines and
        # the live progress view all carry this id while the query runs.
        request_id = self._next_request_id()
        query_cls = query_class(key[0])
        decision = FULL_DETAIL
        if self.governor is not None:
            decision = self.governor.decide(query_cls)
        profiler: Optional[PlanProfiler] = None
        tracer: Optional[Tracer] = None
        if self.governor is not None:
            if decision.sampled:
                # Buffered observability: the trace and profile
                # accumulate in memory and are committed or dropped at
                # completion (tail sampling) — the anomaly verdict is
                # only known once the query has run.
                profiler = PlanProfiler()
                tracer = Tracer(
                    trace_id=request_id,
                    max_spans=self.config.trace_max_spans,
                )
        elif feedback is not None and feedback.should_profile():
            profiler = PlanProfiler()
        requested = (
            parallelism if parallelism is not None else self.config.parallelism
        )
        requested_shards = (
            shards if shards is not None else self.config.shards
        )
        # A parallelism-N (or shards-N) request reserves N slots —
        # whichever dimension is wider — capped by the slot pool, and
        # the engine runs with exactly the granted widths.
        weight = max(requested, requested_shards)
        with self.admission.slot(weight=weight) as granted:
            granted_parallelism = min(requested, granted)
            granted_shards = min(requested_shards, granted)
            execute_started = time.perf_counter()
            with self._store_lock:
                engine = Engine(
                    self.physical,
                    max_fix_iterations=self.config.max_fix_iterations,
                    parallelism=granted_parallelism,
                    batch_size=(
                        batch_size
                        if batch_size is not None
                        else self.config.batch_size
                    ),
                    batch_layout=(
                        batch_layout
                        if batch_layout is not None
                        else self.config.batch_layout
                    ),
                    shards=granted_shards,
                    cluster=self._cluster_for(granted_shards),
                )
                engine.request_id = request_id
                if tracer is not None:
                    engine.tracer = tracer
                handle = self.progress.begin(
                    request_id, query=key[0], shards=granted_shards
                )
                engine.progress = handle
                try:
                    execution = engine.execute(
                        plan, cancel=token, profiler=profiler
                    )
                finally:
                    self.progress.finish(handle)
            execute_elapsed = time.perf_counter() - execute_started

        measured = execution.metrics.measured_cost()
        record = QueryRecord(
            canonical=key[0],
            cache_status=lookup.status,
            estimated_cost=estimated,
            measured_cost=measured,
            optimize_seconds=optimize_elapsed,
            execute_seconds=execute_elapsed,
            rows=len(execution.rows),
            request_id=request_id,
            batch_size=engine.batch_size,
            batch_layout=engine.batch_layout,
            shards=granted_shards,
            exchange_tuples=execution.metrics.exchange_tuples,
            exchange_bytes=execution.metrics.exchange_bytes,
            reads_by_shard=dict(execution.metrics.reads_by_shard),
        )
        self.metrics.record_execution(record, execution.metrics)
        slow_reasons = self._slow_reasons(record)
        obs_echo = self._settle_observability(
            decision,
            query_cls,
            record,
            execution,
            profiler,
            tracer,
            slow_reasons,
            plan=plan,
            fingerprint=fingerprint,
            query_text=substituted,
            knobs={
                "parallelism": granted_parallelism,
                "batch_size": engine.batch_size,
                "batch_layout": engine.batch_layout,
                "shards": granted_shards,
                "max_fix_iterations": self.config.max_fix_iterations,
            },
        )
        if slow_reasons:
            self.metrics.record_slow(record, slow_reasons)
        if feedback is not None and fingerprint is not None:
            self._feed_back(
                key,
                fingerprint,
                record,
                execution,
                profiler,
                weight=decision.weight,
                committed=decision.sampled,
            )

        rows = execution.rows
        truncated = False
        if self.config.max_rows is not None and len(rows) > self.config.max_rows:
            rows = rows[: self.config.max_rows]
            truncated = True
        response = {
            "request_id": record.request_id,
            "rows": [_jsonable_row(row) for row in rows],
            "row_count": len(execution.rows),
            "truncated": truncated,
            "cache": lookup.status,
            "estimated_cost": round(estimated, 2),
            "measured_cost": round(measured, 2),
            "plans_costed": plans_costed,
            "optimize_ms": round(optimize_elapsed * 1000, 3),
            "execute_ms": round(execute_elapsed * 1000, 3),
            "fix_iterations": execution.metrics.fix_iterations,
            "parallelism": granted_parallelism,
            "batch_size": engine.batch_size,
            "batch_layout": engine.batch_layout,
            "shards": granted_shards,
        }
        if obs_echo is not None:
            response["obs"] = obs_echo
        return response

    def _check_slow(self, record: QueryRecord) -> None:
        """Route latency outliers and cost misestimates to the slow log."""
        reasons = self._slow_reasons(record)
        if reasons:
            self.metrics.record_slow(record, reasons)

    def _slow_reasons(self, record: QueryRecord) -> List[str]:
        """Why (if at all) this query belongs in the slow-query log.

        Returned as a mutable list so the observability settlement can
        append anomaly verdicts before the single ``record_slow`` call."""
        reasons: List[str] = []
        threshold = self.config.slow_query_seconds
        if threshold is not None and record.execute_seconds > threshold:
            reasons.append(
                f"execute took {record.execute_seconds * 1000:.1f}ms "
                f"(threshold {threshold * 1000:.0f}ms)"
            )
        ratio_cap = self.config.misestimate_ratio
        if (
            ratio_cap is not None
            and record.estimated_cost > 0
            and record.measured_cost > 0
        ):
            ratio = record.measured_cost / record.estimated_cost
            if ratio > ratio_cap or ratio < 1.0 / ratio_cap:
                reasons.append(
                    f"measured/estimated cost ratio {ratio:.2f} "
                    f"outside [1/{ratio_cap:g}, {ratio_cap:g}]"
                )
        return reasons

    def _settle_observability(
        self,
        decision: SamplingDecision,
        query_cls: str,
        record: QueryRecord,
        execution,
        profiler: Optional[PlanProfiler],
        tracer: Optional[Tracer],
        slow_reasons: List[str],
        *,
        plan,
        fingerprint: Optional[str],
        query_text: str,
        knobs: dict,
    ) -> Optional[dict]:
        """Close the observability loop for one completed query.

        Scores the run against its class baselines, commits or drops
        the buffered trace/profile (tail sampling: keep full detail
        only for anomalous, slow, or head-sampled runs), charges the
        governor for the detail actually spent, and — on anomaly —
        snapshots a flight-recorder bundle.  Returns the ``obs`` echo
        for the response, or ``None`` when the governor is off (legacy
        payload shape)."""
        if self.governor is None:
            return None
        metrics = execution.metrics
        misestimate = None
        if record.estimated_cost > 0 and record.measured_cost > 0:
            misestimate = q_error(record.estimated_cost, record.measured_cost)
        skew = metrics.observed_skew() if metrics.shards_used > 1 else None
        barrier = None
        if metrics.shards_used > 1 and record.execute_seconds > 0:
            barrier = min(
                1.0, metrics.barrier_wait_seconds / record.execute_seconds
            )
        anomalies = self.anomalies.observe(
            query_cls,
            record.execute_seconds,
            misestimate=misestimate,
            skew=skew,
            barrier_wait=barrier,
        )
        # Tail-sampling verdict: anomaly beats slow beats the head
        # sample the run was admitted under.
        commit_reason: Optional[str] = None
        if decision.sampled:
            if anomalies:
                commit_reason = "anomaly"
            elif slow_reasons:
                commit_reason = "slow"
            else:
                commit_reason = decision.reason
        bundle_path: Optional[str] = None
        if anomalies:
            self.governor.note_anomaly(query_cls)
            self.metrics.count("anomalies", len(anomalies))
            slow_reasons.extend(anomaly.describe() for anomaly in anomalies)
            if self.feedback is not None:
                self.feedback.store.record_event(
                    "anomaly",
                    request_id=record.request_id,
                    query_class=query_cls,
                    anomalies=[anomaly.to_dict() for anomaly in anomalies],
                )
            _LOG.warning(
                "anomaly detected",
                extra={
                    "request_id": record.request_id,
                    "query_class": query_cls,
                    "metrics": [anomaly.metric for anomaly in anomalies],
                },
            )
            if decision.sampled and self.recorder.admit(query_cls):
                bundle = build_bundle(
                    reason="anomaly",
                    query_text=query_text,
                    canonical=record.canonical,
                    query_cls=query_cls,
                    plan=plan,
                    fingerprint=fingerprint or plan_fingerprint(plan),
                    estimated_cost=record.estimated_cost,
                    rows=execution.rows,
                    measured_cost=record.measured_cost,
                    execute_seconds=record.execute_seconds,
                    fix_iterations=metrics.fix_iterations,
                    knobs=knobs,
                    physical=self.physical,
                    database=self.config.database_config,
                    cost_parameters=self._cost_params,
                    request_id=record.request_id,
                    anomalies=[anomaly.to_dict() for anomaly in anomalies],
                    sampling=decision.to_dict(),
                    trace=tracer.to_dict() if tracer is not None else None,
                    profile=profiler.to_dict() if profiler is not None else None,
                    telemetry=(
                        self.feedback.store.snapshot(record.canonical, 1)
                        if self.feedback is not None
                        else None
                    ),
                    baselines=self.anomalies.snapshot().get("classes", {}).get(
                        query_cls
                    ),
                )
                recorded_before = self.recorder.written
                bundle_path = self.recorder.record(bundle)
                if self.recorder.written > recorded_before:
                    self.metrics.count("flight_bundles")
        # Charge what this run's detail actually cost, then settle the
        # commit-or-drop so the spent fraction steers later decisions.
        probes = metrics.obs_probes if profiler is not None else 0
        spans = tracer.span_count() if tracer is not None else 0
        self.governor.charge(
            query_cls, record.execute_seconds, probes=probes, spans=spans
        )
        committed = commit_reason is not None
        self.governor.settle(committed)
        self.metrics.count("obs_committed" if committed else "obs_dropped")
        echo = decision.to_dict()
        echo["committed"] = committed
        if commit_reason is not None:
            echo["commit_reason"] = commit_reason
        if anomalies:
            echo["anomalies"] = [anomaly.to_dict() for anomaly in anomalies]
        if bundle_path is not None:
            echo["bundle"] = bundle_path
        return echo

    def _feed_back(
        self,
        key: CacheKey,
        fingerprint: str,
        record: QueryRecord,
        execution,
        profiler: Optional[PlanProfiler],
        weight: float = 1.0,
        committed: bool = True,
    ) -> None:
        """Record one execution into the telemetry store and act on a
        regression verdict (slow-log entry, counters, optional
        auto-pin).  ``weight``/``committed`` carry the governor's
        sampling design into the observation so recalibration can
        weight head-sampled runs back to an unbiased estimate and skip
        unobserved ones."""
        observation = build_observation(
            record.request_id,
            record.estimated_cost,
            record.measured_cost,
            record.execute_seconds,
            record.rows,
            execution.metrics,
            profiler,
            weight=weight,
            committed=committed,
        )
        regression = self.feedback.observe(key[0], fingerprint, observation)
        if regression is None:
            return
        self.metrics.count("plan_regressions")
        self.metrics.record_slow(
            record,
            [
                "plan_regression: new plan "
                f"{regression['new_fingerprint']} is "
                f"{regression['latency_ratio']}x slower than prior plan "
                f"{regression['old_fingerprint']} "
                f"(median {regression['new_median_ms']}ms vs "
                f"{regression['old_median_ms']}ms)"
            ],
        )
        if self.config.auto_pin:
            try:
                self._pin_locked(key, revert=True)
            except ReproError:
                pass  # the old plan no longer costs/fits; keep the new one

    def execute_statement(
        self,
        session_id: Optional[str],
        statement_id: str,
        params: Optional[dict] = None,
        timeout: Optional[float] = None,
        parallelism: Optional[int] = None,
        batch_size: Optional[int] = None,
        shards: Optional[int] = None,
        strategy: Optional[str] = None,
        batch_layout: Optional[str] = None,
    ) -> dict:
        session = self._session(session_id)
        template = session.statements.get(statement_id)
        if template is None:
            raise ProtocolError(f"unknown statement {statement_id!r}")
        return self.run_query(
            template, params, timeout, parallelism, batch_size, shards,
            strategy, batch_layout,
        )

    # -- maintenance / observability ---------------------------------------

    def refresh_statistics(self) -> dict:
        """Re-ANALYZE the store (after data mutations); cached plans are
        then subject to drift checks on their next lookup."""
        with self._store_lock:
            self.physical.refresh_statistics()
        return {"refreshed": True}

    def _require_feedback(self) -> FeedbackManager:
        if self.feedback is None:
            raise ServiceError(
                "the feedback loop is disabled (feedback_enabled=False)"
            )
        return self.feedback

    def recalibrate(self, apply: bool = False) -> dict:
        """Fit fresh cost-model unit weights from the accumulated
        telemetry; with ``apply``, hot-swap them into the serving path
        and re-cost the plan cache under the new model (entries whose
        estimate drifts beyond the ratio are re-optimized on their next
        request, under regression watch)."""
        feedback = self._require_feedback()
        base = self._cost_params or self._default_params()
        _weights, params, report = feedback.recalibrate(base)
        self.metrics.count("recalibrations")
        payload = {"applied": False, **report}
        if apply:
            with self._store_lock:
                self._cost_params = params
                evicted = self.cache.recost_all(
                    self.physical, DetailedCostModel(self.physical, params)
                )
                for key, entry, _fresh in evicted:
                    self._replanned[key] = entry
            payload["applied"] = True
            payload["plans_invalidated"] = len(evicted)
        return payload

    def reset_calibration(self) -> dict:
        """Drop hot-swapped parameters, back to the built-in defaults."""
        with self._store_lock:
            was_applied = self._cost_params is not None
            self._cost_params = None
        return {"reset": was_applied}

    def pin_query(
        self,
        text: str,
        params: Optional[dict] = None,
        revert: bool = False,
    ) -> dict:
        """Pin a query's cached plan against drift re-optimization;
        with ``revert``, reinstall the *prior* plan of its last flagged
        regression and pin that."""
        substituted = substitute_params(text, params)
        with self._store_lock:
            key = self.cache.key_for(substituted, self.physical)
            return self._pin_locked(key, revert=revert)

    def _pin_locked(self, key: CacheKey, revert: bool) -> dict:
        # Re-entrant: callers may already hold the (R)lock.
        with self._store_lock:
            return self._pin_impl(key, revert)

    def _pin_impl(self, key: CacheKey, revert: bool) -> dict:
        feedback = self.feedback
        if revert:
            if feedback is None:
                raise ServiceError("pin revert requires the feedback loop")
            change = feedback.regression_for(key[0])
            if change is None:
                raise ServiceError(
                    "no flagged plan regression to revert for this query"
                )
            cost = change.old_cost
            try:
                cost = recost_plan(
                    change.old_plan, self.physical, self._current_model()
                )
            except ReproError:
                pass  # keep the plan-time estimate
            entry = self.cache.store(
                key, change.old_plan, cost, self.physical, pinned=True
            )
            entry.fingerprint = change.old_fingerprint
            self.metrics.count("plans_pinned")
            feedback.record_pin(key[0], change.old_fingerprint, True)
            return {
                "pinned": True,
                "reverted": True,
                "fingerprint": change.old_fingerprint,
                "estimated_cost": round(cost, 2),
            }
        if not self.cache.pin(key, True):
            raise ServiceError("no cached plan for this query to pin")
        entry = self.cache.entry(key)
        fingerprint = entry.fingerprint if entry is not None else None
        self.metrics.count("plans_pinned")
        if feedback is not None:
            feedback.record_pin(key[0], fingerprint or "", True)
        return {"pinned": True, "reverted": False, "fingerprint": fingerprint}

    def unpin_query(self, text: str, params: Optional[dict] = None) -> dict:
        substituted = substitute_params(text, params)
        with self._store_lock:
            key = self.cache.key_for(substituted, self.physical)
            found = self.cache.pin(key, False)
        if self.feedback is not None and found:
            entry = self.cache.entry(key)
            self.feedback.record_pin(
                key[0], (entry.fingerprint if entry else None) or "", False
            )
        return {"pinned": False, "found": found}

    def history(self, query: Optional[str] = None, limit: int = 20) -> dict:
        """The ``history`` protocol payload: per-query plan histories
        (estimated vs. measured, per operator) plus control-loop state."""
        feedback = self._require_feedback()
        self._refresh_feedback_gauges()
        return {
            "history": feedback.store.snapshot(query, limit),
            "feedback": feedback.snapshot(),
        }

    #: Per-query-class gauge samples published on scrape are capped at
    #: this many classes (most-run first): Prometheus label cardinality
    #: must stay bounded no matter how many distinct query shapes a
    #: client sends.
    GAUGE_CLASS_CAP = 32

    def _refresh_feedback_gauges(self) -> None:
        """Publish per-query-class misestimate gauges from telemetry
        (done on scrape, not per request — the summary walks history).
        The full sample set is replaced each time, so classes that fell
        out of the telemetry window disappear instead of exposing a
        stale value forever."""
        if self.feedback is None:
            return
        entries = sorted(
            self.feedback.misestimate_by_query().items(),
            key=lambda item: item[1].get("runs", 0),
            reverse=True,
        )[: self.GAUGE_CLASS_CAP]
        cost_samples: Dict[tuple, float] = {}
        operator_samples: Dict[tuple, float] = {}
        for query_cls, entry in entries:
            label_key = (("query_class", query_cls),)
            if entry["cost_misestimate"] is not None:
                cost_samples[label_key] = entry["cost_misestimate"]
            if entry["operator_misestimate"] is not None:
                operator_samples[label_key] = entry["operator_misestimate"]
        self.metrics.replace_gauge(
            "misestimate_ratio",
            "Mean estimated-vs-measured cost q-error per query class.",
            cost_samples,
        )
        self.metrics.replace_gauge(
            "operator_misestimate_ratio",
            "Mean per-operator misestimate q-error per query class.",
            operator_samples,
        )

    def _refresh_obs_gauges(self) -> None:
        """Publish the governor's budget/spend as gauges on scrape."""
        if self.governor is None:
            return
        self.metrics.set_gauge(
            "obs_budget_fraction",
            self.governor.config.budget,
            "Configured observability budget (fraction of wall time).",
        )
        self.metrics.set_gauge(
            "obs_spent_fraction",
            self.governor.spent_fraction(),
            "EWMA fraction of wall time currently spent on "
            "observability detail.",
        )

    def stats(self) -> dict:
        payload = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "service": self.metrics.snapshot(),
            "cache": self.cache.snapshot(),
            "admission": self.admission.snapshot(),
        }
        if self.feedback is not None:
            payload["feedback"] = self.feedback.snapshot()
        if self.governor is not None:
            payload["governor"] = self.governor.snapshot()
        return payload

    def governor_stats(self) -> dict:
        """The ``governor`` protocol payload: the overhead governor's
        budget/spend/per-class sampling state, the anomaly detector's
        baselines, and the flight recorder's bundle ledger."""
        payload: dict = {
            "enabled": self.governor is not None,
            "recorder": self.recorder.snapshot(),
        }
        if self.governor is not None:
            payload["governor"] = self.governor.snapshot()
        if self.anomalies is not None:
            payload["anomalies"] = self.anomalies.snapshot()
        return payload

    def diagnose_query(
        self,
        text: str,
        params: Optional[dict] = None,
        timeout: Optional[float] = None,
        shards: Optional[int] = None,
    ) -> dict:
        """On-demand flight recording: run the query once at full
        observability detail — bypassing the governor's sampling — and
        record a ``diagnose`` bundle, exactly as an anomaly would."""
        substituted = substitute_params(text, params)
        request_id = self._next_request_id()
        width = max(1, shards or self.config.shards)
        tracer = Tracer(
            trace_id=request_id, max_spans=self.config.trace_max_spans
        )
        profiler = PlanProfiler()
        with self._store_lock:
            key = self.cache.key_for(substituted, self.physical)
            graph = compile_text(substituted, self.database.catalog)
            optimizer = cost_controlled_optimizer(
                self.physical, self._model_for(width)
            )
            with tracer.span("optimize"):
                result = optimizer.optimize(graph)
            token = CancellationToken(
                self.admission.effective_timeout(timeout)
            )
            engine = Engine(
                self.physical,
                max_fix_iterations=self.config.max_fix_iterations,
                shards=width,
                cluster=self._cluster_for(width),
            )
            engine.request_id = request_id
            engine.tracer = tracer
            started = time.perf_counter()
            with tracer.span("execute"):
                execution = engine.execute(
                    result.plan, cancel=token, profiler=profiler
                )
            elapsed = time.perf_counter() - started
        measured = execution.metrics.measured_cost()
        query_cls = query_class(key[0])
        bundle = build_bundle(
            reason="diagnose",
            query_text=substituted,
            canonical=key[0],
            query_cls=query_cls,
            plan=result.plan,
            fingerprint=plan_fingerprint(result.plan),
            estimated_cost=result.cost,
            rows=execution.rows,
            measured_cost=measured,
            execute_seconds=elapsed,
            fix_iterations=execution.metrics.fix_iterations,
            knobs={
                "parallelism": 1,
                "batch_size": engine.batch_size,
                "batch_layout": engine.batch_layout,
                "shards": width,
                "max_fix_iterations": self.config.max_fix_iterations,
            },
            physical=self.physical,
            database=self.config.database_config,
            cost_parameters=self._cost_params,
            request_id=request_id,
            sampling={
                "mode": "full",
                "sampled": True,
                "weight": 1.0,
                "reason": "diagnose",
            },
            trace=tracer.to_dict(),
            profile=profiler.to_dict(),
            telemetry=(
                self.feedback.store.snapshot(key[0], 1)
                if self.feedback is not None
                else None
            ),
            baselines=(
                self.anomalies.snapshot().get("classes", {}).get(query_cls)
                if self.anomalies is not None
                else None
            ),
        )
        recorded_before = self.recorder.written
        path = self.recorder.record(bundle)
        if self.recorder.written > recorded_before:
            self.metrics.count("flight_bundles")
        _LOG.info(
            "diagnose bundle recorded",
            extra={
                "request_id": request_id,
                "query_class": query_cls,
                "bundle": path,
            },
        )
        return {
            "request_id": request_id,
            "bundle": path,
            "query_class": query_cls,
            "row_count": len(execution.rows),
            "estimated_cost": round(result.cost, 2),
            "measured_cost": round(measured, 2),
            "execute_ms": round(elapsed * 1000, 3),
            "plan_fingerprint": bundle["plan"]["fingerprint"],
            "answer_fingerprint": bundle["execution"]["answer_fingerprint"],
            "recorder": self.recorder.snapshot(),
        }

    def close(self) -> None:
        """Release resources (flush and close the telemetry sink)."""
        if self.feedback is not None:
            self.feedback.close()

    def explain_query(
        self,
        text: str,
        params: Optional[dict] = None,
        analyze: bool = False,
        timeout: Optional[float] = None,
        shards: Optional[int] = None,
    ) -> dict:
        """``EXPLAIN [ANALYZE]``: optimize (always from scratch — the
        point is to audit the optimizer, not the cache) and, when
        ``analyze`` is set, execute under a profiler so every operator
        carries actual rows/cost/time next to the estimates.  With
        ``shards`` > 1 the plan is both costed *and* executed at that
        fan-out, so sharded Fix nodes carry distributed est-vs-act
        terms (network/disk/skew)."""
        substituted = substitute_params(text, params)
        request_id = self._next_request_id()
        width = max(1, shards or 1)
        with self._store_lock:
            graph = compile_text(substituted, self.database.catalog)
            optimizer = cost_controlled_optimizer(
                self.physical, self._model_for(width)
            )
            result = optimizer.optimize(graph)
            profiler: Optional[PlanProfiler] = None
            rows = None
            if analyze:
                token = CancellationToken(
                    self.admission.effective_timeout(timeout)
                )
                profiler = PlanProfiler()
                engine = Engine(
                    self.physical,
                    max_fix_iterations=self.config.max_fix_iterations,
                    shards=width,
                    cluster=self._cluster_for(width),
                )
                engine.request_id = request_id
                execution = engine.execute(
                    result.plan, cancel=token, profiler=profiler
                )
                rows = len(execution.rows)
            tree = build_explain(result.plan, optimizer.cost_model, profiler)
        payload = {
            "request_id": request_id,
            "shards": width,
            "analyzed": analyze,
            "estimated_cost": round(result.cost, 2),
            "plans_costed": result.plans_costed,
            "plan": render_explain(tree),
            "tree": tree.to_dict(),
            "candidates": [
                {"description": description, "cost": round(cost, 2)}
                for description, cost in result.candidates
            ],
        }
        if rows is not None:
            payload["row_count"] = rows
        return payload

    def trace_query(
        self,
        text: str,
        params: Optional[dict] = None,
        execute: bool = True,
        timeout: Optional[float] = None,
        shards: Optional[int] = None,
    ) -> dict:
        """Full-pipeline trace: optimizer spans/events plus (when
        ``execute`` is set) the per-operator runtime profile.  With
        ``shards`` > 1 the query executes distributed and the tracer is
        handed to the engine, so the exported Chrome trace carries one
        lane per shard next to the coordinator lane."""
        substituted = substitute_params(text, params)
        request_id = self._next_request_id()
        width = max(1, shards or 1)
        tracer = Tracer(trace_id=request_id if width > 1 else None)
        with self._store_lock:
            graph = compile_text(substituted, self.database.catalog)
            optimizer = cost_controlled_optimizer(
                self.physical, self._model_for(width)
            )
            with tracer.span("optimize"):
                result = optimizer.optimize(graph, tracer=tracer)
            profiler: Optional[PlanProfiler] = None
            if execute:
                token = CancellationToken(
                    self.admission.effective_timeout(timeout)
                )
                profiler = PlanProfiler()
                engine = Engine(
                    self.physical,
                    max_fix_iterations=self.config.max_fix_iterations,
                    shards=width,
                    cluster=self._cluster_for(width),
                )
                engine.request_id = request_id
                engine.tracer = tracer
                with tracer.span("execute"):
                    engine.execute(
                        result.plan, cancel=token, profiler=profiler
                    )
        payload = {
            "request_id": request_id,
            "shards": width,
            "estimated_cost": round(result.cost, 2),
            "trace": tracer.to_dict(),
            "chrome_trace": tracer.to_chrome_trace(),
        }
        if profiler is not None:
            payload["profile"] = profiler.to_dict()
        return payload

    def metrics_text(self) -> str:
        """The Prometheus exposition of the service counters."""
        self._refresh_feedback_gauges()
        self._refresh_obs_gauges()
        return self.metrics.to_prometheus()

    # -- protocol dispatch --------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Serve one protocol request dict → response dict (never
        raises; errors become ``ok: false`` responses).  A client
        ``id`` field is echoed back verbatim on every response —
        success or error — so pipelined clients can correlate."""
        client_id = request.get("id") if isinstance(request, dict) else None
        try:
            op = request.get("op")
            if not isinstance(op, str):
                raise ProtocolError("request must carry a string 'op'")
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            payload = handler(request)
            response = {"ok": True}
            response.update(payload)
        except ReproError as error:
            response = protocol.error_response(
                protocol.error_code_for(error), str(error)
            )
        except Exception as error:  # pragma: no cover - defensive
            self.metrics.record_error()
            response = protocol.error_response(protocol.INTERNAL, str(error))
        if client_id is not None:
            response["id"] = client_id
        return response

    def _op_ping(self, request: dict) -> dict:
        return {"pong": True}

    def _op_hello(self, request: dict) -> dict:
        return {"session": self.open_session()}

    def _op_close(self, request: dict) -> dict:
        return {"closed": self.close_session(request.get("session") or "")}

    def _op_query(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise ProtocolError("query requires a string 'text'")
        return self.run_query(
            text,
            request.get("params"),
            _timeout_field(request),
            _parallelism_field(request),
            _batch_size_field(request),
            _shards_field(request),
            _strategy_field(request),
            _batch_layout_field(request),
        )

    def _op_prepare(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise ProtocolError("prepare requires a string 'text'")
        return self.prepare(request.get("session"), text)

    def _op_execute(self, request: dict) -> dict:
        statement = request.get("statement")
        if not isinstance(statement, str):
            raise ProtocolError("execute requires a string 'statement'")
        return self.execute_statement(
            request.get("session"),
            statement,
            request.get("params"),
            _timeout_field(request),
            _parallelism_field(request),
            _batch_size_field(request),
            _shards_field(request),
            _strategy_field(request),
            _batch_layout_field(request),
        )

    def _op_stats(self, request: dict) -> dict:
        return self.stats()

    def _op_refresh_stats(self, request: dict) -> dict:
        return self.refresh_statistics()

    def _op_explain(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise ProtocolError("explain requires a string 'text'")
        return self.explain_query(
            text,
            request.get("params"),
            analyze=bool(request.get("analyze")),
            timeout=_timeout_field(request),
            shards=_shards_field(request),
        )

    def _op_trace(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise ProtocolError("trace requires a string 'text'")
        return self.trace_query(
            text,
            request.get("params"),
            execute=request.get("execute", True) is not False,
            timeout=_timeout_field(request),
            shards=_shards_field(request),
        )

    def _op_progress(self, request: dict) -> dict:
        """Live introspection for ``repro top``: per-query fixpoint
        rounds plus the admission slot picture."""
        payload = self.progress.snapshot()
        payload["admission"] = self.admission.snapshot()
        payload["uptime_seconds"] = round(time.time() - self.started_at, 3)
        return {"progress": payload}

    def _op_metrics(self, request: dict) -> dict:
        return {"metrics": self.metrics_text()}

    def _op_history(self, request: dict) -> dict:
        query = request.get("query")
        if query is not None and not isinstance(query, str):
            raise ProtocolError("history 'query' must be a string")
        limit = request.get("limit", 20)
        if not isinstance(limit, int) or limit <= 0:
            raise ProtocolError("history 'limit' must be a positive integer")
        return self.history(query, limit)

    def _op_recalibrate(self, request: dict) -> dict:
        return self.recalibrate(apply=bool(request.get("apply")))

    def _op_pin(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise ProtocolError("pin requires a string 'text'")
        return self.pin_query(
            text, request.get("params"), revert=bool(request.get("revert"))
        )

    def _op_unpin(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise ProtocolError("unpin requires a string 'text'")
        return self.unpin_query(text, request.get("params"))

    def _op_governor(self, request: dict) -> dict:
        return self.governor_stats()

    def _op_diagnose(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise ProtocolError("diagnose requires a string 'text'")
        return self.diagnose_query(
            text,
            request.get("params"),
            timeout=_timeout_field(request),
            shards=_shards_field(request),
        )


def _parallelism_field(request: dict) -> Optional[int]:
    parallelism = request.get("parallelism")
    if parallelism is None:
        return None
    if isinstance(parallelism, bool) or not isinstance(parallelism, int) \
            or parallelism < 1:
        raise ProtocolError("parallelism must be a positive integer")
    return parallelism


def _batch_size_field(request: dict) -> Optional[int]:
    batch_size = request.get("batch_size")
    if batch_size is None:
        return None
    if isinstance(batch_size, bool) or not isinstance(batch_size, int) \
            or batch_size < 1:
        raise ProtocolError("batch_size must be a positive integer")
    return batch_size


def _shards_field(request: dict) -> Optional[int]:
    shards = request.get("shards")
    if shards is None:
        return None
    if isinstance(shards, bool) or not isinstance(shards, int) \
            or shards < 1:
        raise ProtocolError("shards must be a positive integer")
    return shards


def _batch_layout_field(request: dict) -> Optional[str]:
    batch_layout = request.get("batch_layout")
    if batch_layout is None:
        return None
    try:
        validate_choice("batch_layout", batch_layout, BATCH_LAYOUTS)
    except ValueError as error:
        raise ProtocolError(str(error)) from None
    return batch_layout


def _strategy_field(request: dict) -> Optional[str]:
    strategy = request.get("strategy")
    if strategy is None:
        return None
    try:
        validate_choice("strategy", strategy, STRATEGY_NAMES)
    except ValueError as error:
        raise ProtocolError(str(error)) from None
    return strategy


def _timeout_field(request: dict) -> Optional[float]:
    timeout = request.get("timeout")
    if timeout is None:
        return None
    if not isinstance(timeout, (int, float)) or timeout <= 0:
        raise ProtocolError("timeout must be a positive number of seconds")
    return float(timeout)


def _jsonable_row(row: dict) -> dict:
    return {key: _jsonable(value) for key, value in row.items()}


def _jsonable(value):
    if isinstance(value, StoredRecord):
        return {"oid": str(value.oid), **_jsonable_row(value.values)}
    if isinstance(value, Oid):
        return str(value)
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    return value


class QueryServer:
    """TCP front door: line-JSON protocol over a listening socket."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        allow_shutdown: bool = True,
    ) -> None:
        self.service = service
        self.allow_shutdown = allow_shutdown
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._stopping = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start accepting connections in a background thread."""
        if self._accept_thread is not None:
            raise ServiceError("server already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Start and block until :meth:`stop` is called."""
        self.start()
        self._stopping.wait()

    def stop(self) -> None:
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        self._pool.shutdown(wait=True)
        self._listener.close()
        self.service.close()

    # -- connection handling ------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._pool.submit(self._serve_connection, connection)

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            connection.settimeout(300)
            reader = connection.makefile("rb")
            while not self._stopping.is_set():
                line = reader.readline(protocol.MAX_LINE_BYTES + 1)
                if not line:
                    break
                response = self._serve_line(line)
                shutdown = response.pop("_shutdown", False)
                connection.sendall(protocol.encode(response))
                if shutdown:
                    self._stopping.set()
                    break
        except OSError:
            pass  # client went away mid-request
        finally:
            try:
                connection.close()
            except OSError:
                pass

    def _serve_line(self, line: bytes) -> dict:
        try:
            request = protocol.decode(line)
        except ProtocolError as error:
            return protocol.error_response(protocol.PROTOCOL, str(error))
        if request.get("op") == "shutdown":
            if not self.allow_shutdown:
                return protocol.error_response(
                    protocol.PROTOCOL, "shutdown is disabled on this server"
                )
            response = {"ok": True, "stopping": True, "_shutdown": True}
            if request.get("id") is not None:
                response["id"] = request["id"]
            return response
        return self.service.handle(request)


class MetricsServer:
    """A minimal HTTP sidecar exposing ``GET /metrics`` in Prometheus
    text format (``repro serve --metrics-port``), so a standard scraper
    can watch the service without speaking the query protocol."""

    def __init__(
        self, service: QueryService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served here")
                    return
                body = service.metrics_text().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes should not spam the server's stdout

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
