"""Stats-aware LRU plan cache.

The paper's optimization pipeline (rewrite → translate → generatePT →
transformPT) is the expensive part of serving a query; this cache
amortizes it across repeated requests while keeping reuse
*cost-controlled* in the paper's spirit: a cached PT is only trusted
while the statistics it was costed against still hold.

Keying
    ``(canonical query text, structural schema fingerprint)``.  The
    canonical text (:mod:`repro.lang.canonical`) erases whitespace and
    alias variations; the structural fingerprint covers the entity and
    index inventory, so building or dropping an index — which changes
    the plan space itself — can never serve a stale plan.

Invalidation
    Each entry remembers the *statistics fingerprint* and estimated
    cost at plan time.  On lookup, if the statistics changed, the PT is
    re-costed under the fresh statistics (:func:`repro.cost.recost_plan`
    — one bottom-up pass, no re-search).  If the new estimate stays
    within ``drift_ratio`` of the old one the plan is revalidated in
    place; beyond it the entry is evicted and the caller re-optimizes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.cost.recost import recost_plan
from repro.errors import ReproError
from repro.lang.canonical import canonical_text
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import PlanNode

__all__ = [
    "CacheKey",
    "CacheStats",
    "CachedPlan",
    "LookupResult",
    "PlanCache",
    "schema_fingerprint",
    "stats_fingerprint",
]

#: Lookup statuses.
HIT = "hit"
REVALIDATED = "revalidated"
DRIFTED = "drifted"
MISS = "miss"

#: Invalidation reasons (recorded in :class:`CacheStats`).
COST_DRIFT = "cost_drift"
STATS_FINGERPRINT = "stats_fingerprint"
RECALIBRATION = "recalibration"
EXPLICIT = "explicit"

CacheKey = Tuple[str, str]


def _digest(parts) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()[:16]


def schema_fingerprint(physical: PhysicalSchema) -> str:
    """Fingerprint of the plan-relevant *structure*: which durable
    entities exist (temps are per-execution noise) and which selection
    and path indices are built."""
    entities = sorted(
        (info.name, info.kind, info.conceptual_name)
        for info in physical.entities()
        if info.kind != "temp"
    )
    selection = sorted(
        (index.entity, index.attribute)
        for index in physical.selection_indices()
    )
    paths = sorted(
        (index.root_entity, tuple(index.attributes))
        for index in physical.path_indices()
    )
    return _digest([entities, selection, paths])


def stats_fingerprint(physical: PhysicalSchema) -> str:
    """Fingerprint of the statistics the cost model reads: ``|C|``,
    ``||C||`` and per-attribute distinct/non-null counts and fan-outs
    for every durable entity."""
    stats = physical.statistics
    parts = []
    for info in sorted(physical.entities(), key=lambda info: info.name):
        if info.kind == "temp":
            continue
        entity = stats.entity(info.name)
        parts.append(
            (
                info.name,
                entity.pages,
                entity.instances,
                sorted(entity.distinct.items()),
                sorted(entity.non_null.items()),
                sorted(entity.fanout.items()),
            )
        )
    return _digest(parts)


@dataclass
class CachedPlan:
    """One cache entry: a PT plus the evidence it was costed on."""

    plan: PlanNode
    cost: float
    stats_fp: str
    hits: int = 0
    revalidations: int = 0
    #: A pinned plan survives drift checks (its cost is still refreshed
    #: for observability, but the entry is never drift-evicted) — the
    #: regression detector's "revert to the prior plan" lever.
    pinned: bool = False
    #: Structural plan fingerprint (:func:`repro.obs.history.plan_fingerprint`),
    #: filled in by the service so telemetry lookups skip a tree walk.
    fingerprint: Optional[str] = None


@dataclass
class LookupResult:
    """Outcome of one cache probe."""

    status: str  # hit | revalidated | drifted | miss
    entry: Optional[CachedPlan] = None
    #: Fresh estimate computed during a revalidation/drift check.
    recost: Optional[float] = None
    #: Why an entry was invalidated (``cost_drift`` /
    #: ``stats_fingerprint``), when ``status`` is ``drifted``.
    reason: Optional[str] = None
    #: The invalidated entry itself, so the caller (the regression
    #: detector) can compare the old plan against its replacement.
    evicted: Optional[CachedPlan] = None


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    revalidations: int = 0
    invalidations: int = 0
    evictions: int = 0
    #: Invalidations broken down by why the entry was dropped.
    invalidations_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Bounded ring of recent invalidation events: which key, why, and
    #: the cost evidence — the regression detector's audit trail.
    recent_invalidations: Deque[dict] = field(
        default_factory=lambda: deque(maxlen=32)
    )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record_invalidation(
        self,
        key: CacheKey,
        reason: str,
        old_cost: Optional[float] = None,
        new_cost: Optional[float] = None,
    ) -> None:
        self.invalidations += 1
        self.invalidations_by_reason[reason] = (
            self.invalidations_by_reason.get(reason, 0) + 1
        )
        entry: Dict[str, object] = {
            "query": key[0],
            "schema_fp": key[1],
            "reason": reason,
        }
        if old_cost is not None:
            entry["old_cost"] = round(old_cost, 2)
        if new_cost is not None:
            entry["new_cost"] = round(new_cost, 2)
        self.recent_invalidations.append(entry)

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "revalidations": self.revalidations,
            "invalidations": self.invalidations,
            "invalidations_by_reason": dict(self.invalidations_by_reason),
            "recent_invalidations": list(self.recent_invalidations),
            "evictions": self.evictions,
            "hit_ratio": round(self.hit_ratio, 4),
        }


class PlanCache:
    """LRU cache of optimized processing trees with drift invalidation.

    ``capacity`` bounds the number of entries; ``drift_ratio`` is the
    tolerated relative change of the estimated cost under fresh
    statistics (0.5 = a cached plan survives until its estimate moves
    by more than 50% in either direction).
    """

    def __init__(self, capacity: int = 64, drift_ratio: float = 0.5) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if drift_ratio < 0:
            raise ValueError("drift ratio must be >= 0")
        self.capacity = capacity
        self.drift_ratio = drift_ratio
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()

    # -- keys ---------------------------------------------------------------

    def key_for(self, text: str, physical: PhysicalSchema) -> CacheKey:
        """The cache key of a query text against a physical schema."""
        return (canonical_text(text), schema_fingerprint(physical))

    # -- probe / store ------------------------------------------------------

    def lookup(
        self, key: CacheKey, physical: PhysicalSchema, cost_model=None
    ) -> LookupResult:
        """Probe the cache, applying cost-drift invalidation.

        Returns a :class:`LookupResult` whose ``status`` is ``hit``
        (statistics unchanged), ``revalidated`` (statistics changed but
        the re-costed estimate stayed within the drift ratio; the entry
        was updated in place), ``drifted`` (estimate moved too far; the
        entry was evicted — re-optimize) or ``miss``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return LookupResult(MISS)
            current_fp = stats_fingerprint(physical)
            if current_fp == entry.stats_fp:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.stats.hits += 1
                return LookupResult(HIT, entry)
            try:
                fresh_cost = recost_plan(entry.plan, physical, cost_model)
            except ReproError:
                # The statistics moved under the plan in a way the model
                # can no longer cost (an entity or index the plan relies
                # on lost its statistics): the fingerprint itself is the
                # invalidation reason.
                if not entry.pinned:
                    del self._entries[key]
                    self.stats.misses += 1
                    self.stats.record_invalidation(
                        key, STATS_FINGERPRINT, old_cost=entry.cost
                    )
                    return LookupResult(
                        DRIFTED, reason=STATS_FINGERPRINT, evicted=entry
                    )
                fresh_cost = entry.cost
            if entry.pinned or self._within_drift(entry.cost, fresh_cost):
                entry.cost = fresh_cost
                entry.stats_fp = current_fp
                entry.revalidations += 1
                self._entries.move_to_end(key)
                entry.hits += 1
                self.stats.hits += 1
                self.stats.revalidations += 1
                return LookupResult(REVALIDATED, entry, recost=fresh_cost)
            del self._entries[key]
            self.stats.misses += 1
            self.stats.record_invalidation(
                key, COST_DRIFT, old_cost=entry.cost, new_cost=fresh_cost
            )
            return LookupResult(
                DRIFTED, recost=fresh_cost, reason=COST_DRIFT, evicted=entry
            )

    def store(
        self,
        key: CacheKey,
        plan: PlanNode,
        cost: float,
        physical: PhysicalSchema,
        pinned: bool = False,
    ) -> CachedPlan:
        """Insert (or replace) the entry for ``key``, evicting LRU
        entries beyond capacity."""
        entry = CachedPlan(plan, cost, stats_fingerprint(physical), pinned=pinned)
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def _within_drift(self, old: float, new: float) -> bool:
        baseline = max(abs(old), 1e-9)
        return abs(new - old) / baseline <= self.drift_ratio

    # -- pinning ------------------------------------------------------------

    def entry(self, key: CacheKey) -> Optional[CachedPlan]:
        """Peek at an entry without counting a lookup."""
        with self._lock:
            return self._entries.get(key)

    def pin(self, key: CacheKey, pinned: bool = True) -> bool:
        """Mark an entry as pinned (exempt from drift eviction) or
        release it; returns whether the key was present."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry.pinned = pinned
            return True

    def pinned_keys(self):
        with self._lock:
            return [
                key for key, entry in self._entries.items() if entry.pinned
            ]

    # -- maintenance --------------------------------------------------------

    def invalidate_all(self, reason: str = EXPLICIT) -> int:
        """Drop every entry (e.g. after a schema change); returns the
        number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            for key, entry in self._entries.items():
                self.stats.record_invalidation(key, reason, old_cost=entry.cost)
            self._entries.clear()
        return dropped

    def recost_all(
        self, physical: PhysicalSchema, cost_model=None
    ) -> List[Tuple[CacheKey, CachedPlan, Optional[float]]]:
        """Re-cost every entry under a (typically recalibrated) cost
        model, evicting the ones whose estimate drifted beyond the
        ratio.  Returns the evicted ``(key, old_entry, fresh_cost)``
        triples so the caller can watch their replacements for
        regressions.  Pinned entries are refreshed but never evicted.
        """
        evicted: List[Tuple[CacheKey, CachedPlan, Optional[float]]] = []
        with self._lock:
            for key in list(self._entries.keys()):
                entry = self._entries[key]
                try:
                    fresh = recost_plan(entry.plan, physical, cost_model)
                except ReproError:
                    fresh = None
                if fresh is not None and (
                    entry.pinned or self._within_drift(entry.cost, fresh)
                ):
                    entry.cost = fresh
                    entry.revalidations += 1
                    self.stats.revalidations += 1
                    continue
                if entry.pinned:
                    continue
                del self._entries[key]
                self.stats.record_invalidation(
                    key, RECALIBRATION, old_cost=entry.cost, new_cost=fresh
                )
                evicted.append((key, entry, fresh))
        return evicted

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "drift_ratio": self.drift_ratio,
                **self.stats.snapshot(),
            }
