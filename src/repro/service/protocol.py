"""Wire protocol of the query service.

Line-delimited JSON over a byte stream: each request is one JSON object
on one line, answered by exactly one JSON object on one line.  Requests
carry an ``op`` plus op-specific fields; responses carry ``ok: true``
plus payload, or ``ok: false`` plus ``error: {code, message}``.

Operations
    ``hello``                             → ``{session}``
    ``query {text, params?, timeout?, parallelism?, batch_size?,
    batch_layout?, shards?, strategy?}``  → ``{rows, cache, ...}``
                                            (``strategy``: transformPT
                                            search — ``ii``/``sa``/
                                            ``2po``/``enum``/
                                            ``exhaustive``; plans are
                                            cached per strategy;
                                            ``batch_layout``: operator
                                            exchange layout — ``row``/
                                            ``columnar``, echoed on the
                                            response)
    ``prepare {text}``                    → ``{statement, parameters}``
    ``execute {statement, params?, ...}`` → like ``query``
    ``explain {text, analyze?}``          → annotated plan (est vs. actual)
    ``trace {text, execute?}``            → optimizer/engine span trace
    ``stats``                             → metrics + cache + admission
    ``metrics``                           → Prometheus text exposition
    ``refresh_stats``                     → re-ANALYZE the store
    ``history {query?, limit?}``          → per-plan telemetry (est vs. actual)
    ``recalibrate {apply?}``              → refit cost weights from telemetry
    ``pin {text, params?, revert?}``      → pin plan / revert a regression
    ``unpin {text, params?}``             → release a pinned plan
    ``governor``                          → overhead-governor sampling
                                            state, anomaly baselines,
                                            flight-recorder ledger
    ``diagnose {text, params?, shards?}`` → run once at full detail and
                                            record a diagnostic bundle
    ``ping`` / ``close`` / ``shutdown``

When an observability budget is configured (``--obs-budget``), query
responses additionally carry an ``obs`` object echoing the governor's
sampling decision for that request: ``{mode, sampled, weight, reason,
committed, commit_reason?, anomalies?, bundle?}``.

A request may carry a client-chosen ``id``; it is echoed verbatim on
the response (success or error) for correlation.  Executed queries
additionally get a server-assigned ``request_id``, which also tags the
query's record in the metrics ring and the slow-query log.

Prepared statements use ``$name`` placeholders in the query text
(``where x.name = $who``); ``params`` maps names to JSON values, which
are spliced in as typed literals before parsing.  ``$`` is not legal in
the query language itself, so an unbound placeholder can never slip
through to the parser silently.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    AdmissionError,
    ExecutionCancelled,
    ExecutionTimeout,
    FixpointLimitError,
    LanguageError,
    ProtocolError,
    ReproError,
)

__all__ = [
    "MAX_LINE_BYTES",
    "encode",
    "decode",
    "error_response",
    "error_code_for",
    "placeholder_names",
    "substitute_params",
]

#: Upper bound on one protocol line; a peer sending more is broken (or
#: hostile) and gets a protocol error instead of exhausting memory.
MAX_LINE_BYTES = 4 * 1024 * 1024

_PLACEHOLDER = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")

#: error codes, stable across releases — clients switch on these.
PARSE_ERROR = "parse_error"
ADMISSION_REJECTED = "admission_rejected"
TIMEOUT = "timeout"
CANCELLED = "cancelled"
FIXPOINT_LIMIT = "fixpoint_limit"
PROTOCOL = "protocol_error"
EXECUTION = "execution_error"
INTERNAL = "internal_error"


def encode(payload: dict) -> bytes:
    """One response/request as a JSON line."""
    return (json.dumps(payload, separators=(",", ":"), default=str) + "\n").encode(
        "utf-8"
    )


def decode(line: bytes) -> dict:
    """Parse one JSON line; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed JSON request: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    return payload


def error_code_for(error: ReproError) -> str:
    """Map a library exception onto a stable protocol error code."""
    if isinstance(error, ExecutionTimeout):
        return TIMEOUT
    if isinstance(error, ExecutionCancelled):
        return CANCELLED
    if isinstance(error, FixpointLimitError):
        return FIXPOINT_LIMIT
    if isinstance(error, AdmissionError):
        return ADMISSION_REJECTED
    if isinstance(error, ProtocolError):
        return PROTOCOL
    if isinstance(error, LanguageError):
        return PARSE_ERROR
    return EXECUTION


def error_response(code: str, message: str, **extra) -> dict:
    payload = {"ok": False, "error": {"code": code, "message": message}}
    if extra:
        payload["error"].update(extra)
    return payload


# -- parameterized queries ---------------------------------------------------


def placeholder_names(text: str) -> List[str]:
    """The ``$name`` placeholders of a statement, in first-use order."""
    seen: List[str] = []
    for match in _PLACEHOLDER.finditer(text):
        name = match.group(1)
        if name not in seen:
            seen.append(name)
    return seen


def substitute_params(text: str, params: Optional[Dict[str, object]]) -> str:
    """Splice ``params`` into ``$name`` placeholders as typed literals.

    Every placeholder must be bound and every parameter used; a
    mismatch raises :class:`ProtocolError` (silently ignoring either
    side hides client bugs).
    """
    params = params or {}
    if not isinstance(params, dict):
        raise ProtocolError("params must be an object of name -> value")
    wanted = placeholder_names(text)
    missing = [name for name in wanted if name not in params]
    if missing:
        raise ProtocolError(f"unbound parameters: {', '.join(missing)}")
    unused = [name for name in params if name not in wanted]
    if unused:
        raise ProtocolError(f"unknown parameters: {', '.join(unused)}")

    def replace(match: "re.Match[str]") -> str:
        return _render_literal(params[match.group(1)])

    return _PLACEHOLDER.sub(replace, text)


def _render_literal(value: object) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ProtocolError(f"non-finite parameter value {value!r}")
        return repr(value)
    raise ProtocolError(
        f"unsupported parameter type {type(value).__name__} "
        "(use string, number, boolean or null)"
    )
