"""Blocking client for the query service's line-JSON protocol.

Thin by design — stdlib socket, one request in flight per connection —
so it doubles as executable documentation of the wire protocol::

    with ServiceClient("127.0.0.1", 7654) as client:
        client.hello()
        stmt = client.prepare(
            "select [name: c.name] from c in Composer where c.name = $who;"
        )
        rows = client.execute(stmt, {"who": "Bach"})["rows"]

Error responses raise :class:`ServiceClientError`, which carries the
protocol error ``code`` so callers can distinguish an admission
rejection from a timeout from a parse error.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional

from repro.errors import ProtocolError, ServiceError
from repro.service import protocol

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(ServiceError):
    """An ``ok: false`` response from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServiceClient:
    """One connection to a :class:`~repro.service.server.QueryServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7654, timeout: float = 60.0
    ) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self.session: Optional[str] = None

    # -- plumbing -----------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One raw round-trip; raises :class:`ServiceClientError` on an
        error response."""
        if self.session is not None and "session" not in payload:
            payload = {**payload, "session": self.session}
        self._socket.sendall(protocol.encode(payload))
        line = self._reader.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise ProtocolError("server closed the connection")
        response = protocol.decode(line)
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise ServiceClientError(
                error.get("code", "unknown"), error.get("message", "")
            )
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- operations ---------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def hello(self) -> str:
        """Open a session; subsequent requests carry it implicitly."""
        self.session = self.request({"op": "hello"})["session"]
        return self.session

    def query(
        self,
        text: str,
        params: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        parallelism: Optional[int] = None,
        batch_size: Optional[int] = None,
        shards: Optional[int] = None,
        batch_layout: Optional[str] = None,
    ) -> dict:
        payload: dict = {"op": "query", "text": text}
        if params is not None:
            payload["params"] = params
        if timeout is not None:
            payload["timeout"] = timeout
        if parallelism is not None:
            payload["parallelism"] = parallelism
        if batch_size is not None:
            payload["batch_size"] = batch_size
        if shards is not None:
            payload["shards"] = shards
        if batch_layout is not None:
            payload["batch_layout"] = batch_layout
        return self.request(payload)

    def prepare(self, text: str) -> str:
        """Register a parameterized statement; returns its id."""
        return self.request({"op": "prepare", "text": text})["statement"]

    def execute(
        self,
        statement: str,
        params: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        parallelism: Optional[int] = None,
        batch_size: Optional[int] = None,
        shards: Optional[int] = None,
        batch_layout: Optional[str] = None,
    ) -> dict:
        payload: dict = {"op": "execute", "statement": statement}
        if params is not None:
            payload["params"] = params
        if timeout is not None:
            payload["timeout"] = timeout
        if parallelism is not None:
            payload["parallelism"] = parallelism
        if batch_size is not None:
            payload["batch_size"] = batch_size
        if shards is not None:
            payload["shards"] = shards
        if batch_layout is not None:
            payload["batch_layout"] = batch_layout
        return self.request(payload)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def refresh_stats(self) -> dict:
        return self.request({"op": "refresh_stats"})

    def history(
        self, query: Optional[str] = None, limit: Optional[int] = None
    ) -> dict:
        """Per-query plan histories (estimated vs. measured) plus the
        feedback-loop state; ``query`` substring-filters."""
        payload: dict = {"op": "history"}
        if query is not None:
            payload["query"] = query
        if limit is not None:
            payload["limit"] = limit
        return self.request(payload)

    def progress(self) -> dict:
        """Live fixpoint progress of in-flight (and just-finished)
        queries — the payload ``repro top`` renders."""
        return self.request({"op": "progress"})["progress"]

    def recalibrate(self, apply: bool = False) -> dict:
        """Fit cost-model weights from accumulated telemetry; with
        ``apply``, hot-swap them into the serving path."""
        return self.request({"op": "recalibrate", "apply": apply})

    def pin(
        self,
        text: str,
        params: Optional[Dict[str, object]] = None,
        revert: bool = False,
    ) -> dict:
        """Pin a query's cached plan; ``revert`` reinstalls the prior
        plan of its last flagged regression."""
        payload: dict = {"op": "pin", "text": text, "revert": revert}
        if params is not None:
            payload["params"] = params
        return self.request(payload)

    def unpin(
        self, text: str, params: Optional[Dict[str, object]] = None
    ) -> dict:
        payload: dict = {"op": "unpin", "text": text}
        if params is not None:
            payload["params"] = params
        return self.request(payload)

    def governor(self) -> dict:
        """Overhead-governor sampling state, anomaly-detector
        baselines, and the flight recorder's bundle ledger."""
        return self.request({"op": "governor"})

    def diagnose(
        self,
        text: str,
        params: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        shards: Optional[int] = None,
    ) -> dict:
        """Run one query at full observability detail (bypassing the
        governor's sampling) and record a diagnostic bundle."""
        payload: dict = {"op": "diagnose", "text": text}
        if params is not None:
            payload["params"] = params
        if timeout is not None:
            payload["timeout"] = timeout
        if shards is not None:
            payload["shards"] = shards
        return self.request(payload)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
