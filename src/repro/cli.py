"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run QUERY_FILE``     — optimize and execute a query against a
  generated database, printing the chosen plan and the answers;
* ``explain QUERY_FILE`` — optimize only: plan tree, candidate costs,
  per-node cost breakdown;
* ``demo``               — the paper's Figure 3 walkthrough;
* ``serve``              — long-running TCP query service with a plan
  cache, admission control and metrics (see ``docs/service.md``).

The database is synthetic and parameterized from the command line
(``--db music`` or ``--db parts``); queries are written in the OQL-like
language of :mod:`repro.lang`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import Optimizer, OptimizerConfig
from repro.core.baselines import (
    cost_controlled_optimizer,
    deductive_optimizer,
    naive_optimizer,
)
from repro.cost import DetailedCostModel, SimplifiedCostModel
from repro.engine import Engine
from repro.errors import ReproError
from repro.lang import compile_text
from repro.plans import render_tree
from repro.workloads import (
    MusicConfig,
    PartsConfig,
    generate_music_database,
    generate_parts_database,
)

__all__ = ["main", "build_parser"]

FIG3_TEXT = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1]
  from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer
  where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.master.works.instruments.name = "harpsichord" and i.gen >= 3;
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Cost-controlled optimization of object-oriented recursive "
            "queries (SIGMOD 1992 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument(
            "--db",
            choices=["music", "parts"],
            default="music",
            help="which synthetic database to generate",
        )
        p.add_argument("--seed", type=int, default=1992)
        p.add_argument("--lineages", type=int, default=8)
        p.add_argument("--generations", type=int, default=8)
        p.add_argument(
            "--selectivity",
            type=float,
            default=0.15,
            help="fraction of works using the selective instrument",
        )
        p.add_argument("--buffer-pages", type=int, default=64)
        p.add_argument(
            "--policy",
            choices=["cost", "always", "never"],
            default="cost",
            help="push-through-recursion policy",
        )

    run_parser = sub.add_parser("run", help="optimize and execute a query")
    run_parser.add_argument("query_file")
    run_parser.add_argument(
        "--limit", type=int, default=20, help="max rows to print"
    )
    add_common(run_parser)

    explain_parser = sub.add_parser("explain", help="optimize only")
    explain_parser.add_argument("query_file")
    explain_parser.add_argument(
        "--simplified",
        action="store_true",
        help="also print the Section 4.6 symbolic cost table",
    )
    add_common(explain_parser)

    demo_parser = sub.add_parser("demo", help="run the paper's Figure 3 demo")
    add_common(demo_parser)

    serve_parser = sub.add_parser(
        "serve",
        help="serve queries over TCP with a plan cache and admission control",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=7654, help="0 picks an ephemeral port"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=8, help="protocol worker threads"
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=64, help="plan cache capacity"
    )
    serve_parser.add_argument(
        "--drift-ratio",
        type=float,
        default=0.5,
        help="re-optimize a cached plan when its re-costed estimate "
        "drifts beyond this fraction",
    )
    serve_parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="reject queries whose estimated cost exceeds this budget",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-query timeout in seconds",
    )
    serve_parser.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        help="execution slots before requests queue",
    )
    add_common(serve_parser)
    return parser


def _build_database(args):
    if args.db == "parts":
        return generate_parts_database(
            PartsConfig(
                assemblies=max(1, args.lineages // 2),
                depth=max(2, args.generations // 2),
                seed=args.seed,
            )
        )
    db = generate_music_database(
        MusicConfig(
            lineages=args.lineages,
            generations=args.generations,
            selective_fraction=args.selectivity,
            buffer_pages=args.buffer_pages,
            seed=args.seed,
        )
    )
    db.build_paper_indexes()
    return db


def _optimizer(args, physical):
    if args.policy == "always":
        return deductive_optimizer(physical)
    if args.policy == "never":
        return naive_optimizer(physical)
    return cost_controlled_optimizer(physical)


def _read_query(args) -> str:
    with open(args.query_file) as handle:
        return handle.read()


def _optimize(args, text: str, out):
    db = _build_database(args)
    graph = compile_text(text, db.catalog)
    result = _optimizer(args, db.physical).optimize(graph)
    print("=== plan ===", file=out)
    print(render_tree(result.plan), file=out)
    print(file=out)
    print(f"estimated cost : {result.cost:.1f}", file=out)
    print(f"plans costed   : {result.plans_costed}", file=out)
    print(f"pushed through recursion: {result.chose_push()}", file=out)
    if result.candidates:
        print("candidates:", file=out)
        for description, cost in result.candidates:
            print(f"  {cost:10.1f}  {description}", file=out)
    return db, result


def cmd_run(args, out) -> int:
    db, result = _optimize(args, _read_query(args), out)
    execution = Engine(db.physical).execute(result.plan)
    print(file=out)
    print(f"=== {len(execution.rows)} rows ===", file=out)
    for row in execution.rows[: args.limit]:
        rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(row.items()))
        print(f"  {rendered}", file=out)
    if len(execution.rows) > args.limit:
        print(f"  ... {len(execution.rows) - args.limit} more", file=out)
    metrics = execution.metrics
    print(file=out)
    print(
        f"measured: {metrics.buffer.physical_reads} page reads, "
        f"{metrics.predicate_evals} predicate evals, "
        f"{metrics.index_lookups} index lookups, "
        f"{metrics.fix_iterations} fixpoint iterations",
        file=out,
    )
    return 0


def cmd_explain(args, out) -> int:
    db, result = _optimize(args, _read_query(args), out)
    model = DetailedCostModel(db.physical)
    report = model.report(result.plan)
    print(file=out)
    print("=== cost breakdown (detailed model) ===", file=out)
    print(
        f"total {report.total:.2f} (io {report.io:.2f}, cpu {report.cpu:.2f})",
        file=out,
    )
    if args.simplified:
        print(file=out)
        print("=== simplified model (Section 4.6) ===", file=out)
        simplified = SimplifiedCostModel(db.physical)
        for row in simplified.table(result.plan, symbolic=True):
            print(f"  {row.label:>4} [{row.section:>8}] {row.formula!r}", file=out)
    return 0


def cmd_serve(args, out, server_box=None) -> int:
    """Start the query service and block until a client sends
    ``shutdown`` (or the process is interrupted).

    ``server_box`` is a test hook: when given a list, the started
    :class:`~repro.service.server.QueryServer` is appended to it so the
    caller can reach the bound port and stop the server."""
    from repro.service import QueryServer, QueryService, ServiceConfig

    db = _build_database(args)
    service = QueryService(
        db,
        ServiceConfig(
            cache_capacity=args.cache_size,
            drift_ratio=args.drift_ratio,
            cost_budget=args.budget,
            default_timeout=args.timeout,
            max_concurrent=args.max_concurrent,
        ),
    )
    server = QueryServer(
        service, host=args.host, port=args.port, max_workers=args.workers
    )
    if server_box is not None:
        server_box.append(server)
    print(f"serving {args.db} database on {server.address}", file=out, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.stop()
    print("server stopped", file=out, flush=True)
    return 0


def cmd_demo(args, out) -> int:
    import tempfile

    with tempfile.NamedTemporaryFile("w", suffix=".oql", delete=False) as handle:
        handle.write(FIG3_TEXT)
        args.query_file = handle.name
    args.limit = 15
    print("running the paper's Figure 3 query:", file=out)
    print(FIG3_TEXT, file=out)
    return cmd_run(args, out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args, out)
        if args.command == "explain":
            return cmd_explain(args, out)
        if args.command == "demo":
            return cmd_demo(args, out)
        if args.command == "serve":
            return cmd_serve(args, out)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
