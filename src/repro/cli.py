"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run QUERY_FILE``     — optimize and execute a query against a
  generated database, printing the chosen plan and the answers;
* ``explain QUERY_FILE`` — optimize only: plan tree, candidate costs,
  per-node cost breakdown; ``--analyze`` also executes the plan and
  prints actual rows/cost/time next to each operator's estimates
  (see ``docs/observability.md``);
* ``trace QUERY_FILE``   — optimize and execute under the span tracer,
  writing the trace as JSON or Chrome ``chrome://tracing`` format;
* ``demo``               — the paper's Figure 3 walkthrough;
* ``serve``              — long-running TCP query service with a plan
  cache, admission control and metrics (see ``docs/service.md``);
  ``--metrics-port`` adds an HTTP ``/metrics`` Prometheus endpoint;
* ``history``            — ask a running server for its per-plan
  telemetry (estimated vs. measured, per operator);
* ``feedback``           — inspect the feedback loop on a running
  server, trigger a cost-model recalibration (``--recalibrate
  --apply``), or pin/revert plans after a flagged regression
  (see ``docs/observability.md``);
* ``top``                — live per-round fixpoint progress of the
  queries a running server is executing (delta sizes per shard, skew,
  exchange throughput, barrier waits).

The database is synthetic and parameterized from the command line
(``--db music`` or ``--db parts``); queries are written in the OQL-like
language of :mod:`repro.lang`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import STRATEGY_NAMES, Optimizer, OptimizerConfig
from repro.core.baselines import (
    cost_controlled_optimizer,
    deductive_optimizer,
    naive_optimizer,
)
from repro.cost import DetailedCostModel, SimplifiedCostModel
from repro.engine import Engine
from repro.errors import ReproError
from repro.lang import compile_text
from repro.plans import render_tree

__all__ = ["main", "build_parser"]

FIG3_TEXT = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1]
  from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer
  where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.master.works.instruments.name = "harpsichord" and i.gen >= 3;
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Cost-controlled optimization of object-oriented recursive "
            "queries (SIGMOD 1992 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument(
            "--db",
            choices=["music", "parts"],
            default="music",
            help="which synthetic database to generate",
        )
        p.add_argument("--seed", type=int, default=1992)
        p.add_argument("--lineages", type=int, default=8)
        p.add_argument("--generations", type=int, default=8)
        p.add_argument(
            "--selectivity",
            type=float,
            default=0.15,
            help="fraction of works using the selective instrument",
        )
        p.add_argument("--buffer-pages", type=int, default=64)
        p.add_argument(
            "--policy",
            choices=["cost", "always", "never"],
            default="cost",
            help="push-through-recursion policy",
        )
        p.add_argument(
            "--strategy",
            choices=list(STRATEGY_NAMES),
            default="ii",
            help="transformPT search strategy (only with --policy cost): "
            "ii/sa/2po randomized, enum = memoized systematic "
            "enumeration, exhaustive = uncapped closure",
        )

    run_parser = sub.add_parser("run", help="optimize and execute a query")
    run_parser.add_argument("query_file")
    run_parser.add_argument(
        "--limit", type=int, default=20, help="max rows to print"
    )
    run_parser.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="worker threads for fixpoint evaluation (1 = serial "
        "semi-naive loop)",
    )
    run_parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="bindings per batch exchanged between operators "
        "(default: REPRO_BATCH_SIZE or 256; 1 = tuple-at-a-time)",
    )
    run_parser.add_argument(
        "--batch-layout",
        choices=["row", "columnar"],
        default=None,
        help="operator exchange layout (default: REPRO_BATCH_LAYOUT or "
        "columnar; row pins the row-list compatibility semantics)",
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard the store across N workers and run fixpoints as "
        "distributed scatter-gather rounds (1 = single process)",
    )
    add_common(run_parser)

    explain_parser = sub.add_parser("explain", help="optimize only")
    explain_parser.add_argument("query_file")
    explain_parser.add_argument(
        "--simplified",
        action="store_true",
        help="also print the Section 4.6 symbolic cost table",
    )
    explain_parser.add_argument(
        "--analyze",
        action="store_true",
        help="execute the plan and print actual rows/cost/time "
        "next to each operator's estimates",
    )
    explain_parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the explain tree as JSON ('-' for stdout)",
    )
    explain_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="cost and (with --analyze) execute the plan at this shard "
        "fan-out; sharded Fix nodes then carry distributed est-vs-act "
        "rows (network/disk/skew)",
    )
    add_common(explain_parser)

    trace_parser = sub.add_parser(
        "trace",
        help="optimize and execute under the span tracer, writing the "
        "trace to a file",
    )
    trace_parser.add_argument("query_file")
    trace_parser.add_argument(
        "-o",
        "--output",
        default="trace.json",
        help="where to write the trace (default trace.json)",
    )
    trace_parser.add_argument(
        "--format",
        choices=["json", "chrome"],
        default="chrome",
        help="chrome (load in chrome://tracing / Perfetto) or plain json",
    )
    trace_parser.add_argument(
        "--no-execute",
        action="store_true",
        help="trace optimization only, skip plan execution",
    )
    trace_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="execute the plan distributed across N shards; the Chrome "
        "trace then carries one lane per shard plus a coordinator lane",
    )
    add_common(trace_parser)

    demo_parser = sub.add_parser("demo", help="run the paper's Figure 3 demo")
    add_common(demo_parser)

    serve_parser = sub.add_parser(
        "serve",
        help="serve queries over TCP with a plan cache and admission control",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=7654, help="0 picks an ephemeral port"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=8, help="protocol worker threads"
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=64, help="plan cache capacity"
    )
    serve_parser.add_argument(
        "--drift-ratio",
        type=float,
        default=0.5,
        help="re-optimize a cached plan when its re-costed estimate "
        "drifts beyond this fraction",
    )
    serve_parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="reject queries whose estimated cost exceeds this budget",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-query timeout in seconds",
    )
    serve_parser.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        help="execution slots before requests queue",
    )
    serve_parser.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="default fixpoint parallelism per query (requests may "
        "override; a parallelism-N query reserves N execution slots)",
    )
    serve_parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="bindings per batch the engine exchanges between operators "
        "(requests may override; default: REPRO_BATCH_SIZE or 256)",
    )
    serve_parser.add_argument(
        "--batch-layout",
        choices=["row", "columnar"],
        default=None,
        help="default operator exchange layout per query (requests may "
        "override; default: REPRO_BATCH_LAYOUT or columnar)",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="default shard fan-out per query (requests may override; "
        "a shards-N query reserves N execution slots)",
    )
    serve_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also serve HTTP GET /metrics (Prometheus text format) "
        "on this port; 0 picks an ephemeral port",
    )
    serve_parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=1000.0,
        help="log queries slower than this to the slow-query log "
        "(0 disables)",
    )
    serve_parser.add_argument(
        "--misestimate-ratio",
        type=float,
        default=10.0,
        help="log queries whose measured cost diverges from the "
        "estimate by more than this factor (0 disables)",
    )
    serve_parser.add_argument(
        "--no-feedback",
        action="store_true",
        help="disable the telemetry store / feedback loop entirely",
    )
    serve_parser.add_argument(
        "--history-file",
        default=None,
        metavar="JSONL",
        help="persist query telemetry to this JSONL file (reloaded on "
        "startup)",
    )
    serve_parser.add_argument(
        "--regression-ratio",
        type=float,
        default=1.5,
        help="flag a re-optimized plan whose median latency is worse "
        "than the prior plan's by more than this factor",
    )
    serve_parser.add_argument(
        "--profile-sample-every",
        type=int,
        default=0,
        metavar="N",
        help="profile every Nth query for per-operator actual costs "
        "(0 records per-operator cardinalities only)",
    )
    serve_parser.add_argument(
        "--auto-pin",
        action="store_true",
        help="automatically pin the prior plan when a regression is "
        "flagged",
    )
    serve_parser.add_argument(
        "--obs-budget",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="observability budget as a fraction of query wall time; "
        "the overhead governor degrades tracing/profiling detail per "
        "query class to stay under it (0 disables the governor)",
    )
    serve_parser.add_argument(
        "--log-format",
        choices=["text", "json"],
        default="text",
        help="structured log output format",
    )
    serve_parser.add_argument(
        "--bundle-dir",
        default=None,
        metavar="DIR",
        help="write flight-recorder bundles (anomalies, diagnose) to "
        "this directory",
    )
    serve_parser.add_argument(
        "--history-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="size cap for the telemetry JSONL file; the oldest "
        "observations are compacted away on overflow",
    )
    add_common(serve_parser)

    def add_client(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7654)
        p.add_argument(
            "--json", action="store_true", help="print the raw payload"
        )

    history_parser = sub.add_parser(
        "history",
        help="per-plan telemetry (estimated vs. measured) from a "
        "running server",
    )
    history_parser.add_argument(
        "--query",
        default=None,
        help="only queries whose canonical text contains this substring",
    )
    history_parser.add_argument("--limit", type=int, default=20)
    add_client(history_parser)

    feedback_parser = sub.add_parser(
        "feedback",
        help="inspect or drive the feedback loop on a running server",
    )
    feedback_parser.add_argument(
        "--recalibrate",
        action="store_true",
        help="fit fresh cost-model weights from accumulated telemetry",
    )
    feedback_parser.add_argument(
        "--apply",
        action="store_true",
        help="hot-swap the refit weights into the serving path "
        "(implies --recalibrate)",
    )
    feedback_parser.add_argument(
        "--pin",
        metavar="QUERY_FILE",
        default=None,
        help="pin this query's cached plan against re-optimization",
    )
    feedback_parser.add_argument(
        "--revert",
        action="store_true",
        help="with --pin: reinstall the plan that predates the last "
        "flagged regression",
    )
    feedback_parser.add_argument(
        "--unpin",
        metavar="QUERY_FILE",
        default=None,
        help="release a pinned plan",
    )
    feedback_parser.add_argument(
        "--governor",
        action="store_true",
        help="print the overhead governor's sampling state, anomaly "
        "baselines, and flight-recorder ledger",
    )
    add_client(feedback_parser)

    diagnose_parser = sub.add_parser(
        "diagnose",
        help="run a query at full observability detail on a running "
        "server and record a flight-recorder bundle",
    )
    diagnose_parser.add_argument("query_file")
    diagnose_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="execute the diagnostic run at this shard fan-out",
    )
    add_client(diagnose_parser)

    replay_parser = sub.add_parser(
        "replay",
        help="deterministically re-execute a flight-recorder bundle "
        "and verify plan + answer fingerprints",
    )
    replay_parser.add_argument("bundle")
    replay_parser.add_argument(
        "--json", action="store_true", help="print the raw match report"
    )

    top_parser = sub.add_parser(
        "top",
        help="live per-round fixpoint progress of queries on a running "
        "server (like top, but for recursive queries)",
    )
    top_parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between refreshes",
    )
    top_parser.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after this many refreshes (0 = until interrupted)",
    )
    top_parser.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (same as --iterations 1)",
    )
    add_client(top_parser)
    return parser


def _database_config(args) -> dict:
    """The seeded generator recipe of the CLI's database arguments —
    the same dict flight-recorder bundles embed, so a bundle recorded
    by ``repro serve`` replays against a bit-identical store."""
    return {
        "db": args.db,
        "seed": args.seed,
        "lineages": args.lineages,
        "generations": args.generations,
        "selectivity": args.selectivity,
        "buffer_pages": args.buffer_pages,
    }


def _build_database(args):
    from repro.obs.recorder import database_from_config

    return database_from_config(_database_config(args))


def _optimizer(args, physical):
    if args.policy == "always":
        return deductive_optimizer(physical)
    if args.policy == "never":
        return naive_optimizer(physical)
    model = None
    shards = max(1, getattr(args, "shards", 1))
    if shards > 1:
        from repro.cost import CostParameters

        params = CostParameters()
        params.shards = shards
        model = DetailedCostModel(physical, params)
    strategy = getattr(args, "strategy", "ii") or "ii"
    if strategy != "ii":
        return Optimizer(
            physical, model, OptimizerConfig(strategy=strategy)
        )
    return cost_controlled_optimizer(physical, model)


def _read_query(args) -> str:
    with open(args.query_file) as handle:
        return handle.read()


def _print_strategy_stats(result, out) -> None:
    stats = result.strategy_stats
    if not stats:
        return
    print(
        "enumeration: {subplans_memoized} subplans memoized, "
        "{memo_hits} memo hits, {pruned_branches} branches pruned, "
        "{candidates_costed} candidates costed".format(**stats),
        file=out,
    )


def _optimize(args, text: str, out):
    db = _build_database(args)
    graph = compile_text(text, db.catalog)
    result = _optimizer(args, db.physical).optimize(graph)
    print("=== plan ===", file=out)
    print(render_tree(result.plan), file=out)
    print(file=out)
    print(f"estimated cost : {result.cost:.1f}", file=out)
    print(f"plans costed   : {result.plans_costed}", file=out)
    print(f"pushed through recursion: {result.chose_push()}", file=out)
    if result.candidates:
        print("candidates:", file=out)
        for description, cost in result.candidates:
            print(f"  {cost:10.1f}  {description}", file=out)
    _print_strategy_stats(result, out)
    return db, result


def cmd_run(args, out) -> int:
    import time

    db, result = _optimize(args, _read_query(args), out)
    shards = max(1, getattr(args, "shards", 1))
    cluster = None
    if shards > 1:
        from repro.dist import ShardCluster

        cluster = ShardCluster(db.physical, shards)
    engine = Engine(
        db.physical,
        parallelism=max(1, getattr(args, "parallelism", 1)),
        batch_size=getattr(args, "batch_size", None),
        batch_layout=getattr(args, "batch_layout", None),
        shards=shards,
        cluster=cluster,
    )
    started = time.perf_counter()
    try:
        execution = engine.execute(result.plan)
    finally:
        if cluster is not None:
            cluster.close()
    elapsed = time.perf_counter() - started
    print(file=out)
    print(f"=== {len(execution.rows)} rows ===", file=out)
    for row in execution.rows[: args.limit]:
        rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(row.items()))
        print(f"  {rendered}", file=out)
    if len(execution.rows) > args.limit:
        print(f"  ... {len(execution.rows) - args.limit} more", file=out)
    metrics = execution.metrics
    print(file=out)
    print(
        f"measured: {metrics.buffer.physical_reads} page reads, "
        f"{metrics.predicate_evals} predicate evals, "
        f"{metrics.index_lookups} index lookups, "
        f"{metrics.fix_iterations} fixpoint iterations",
        file=out,
    )
    rows_per_sec = len(execution.rows) / elapsed if elapsed > 0 else 0.0
    # Effective batch size: tuples an average emitted batch carried
    # (<= the configured size — selective filters shrink batches).
    effective = (
        metrics.total_tuples / metrics.batches if metrics.batches else 0.0
    )
    print(
        f"throughput: {rows_per_sec:,.0f} rows/sec "
        f"({elapsed * 1000:.1f} ms execute, batch size {engine.batch_size}, "
        f"effective {effective:.1f})",
        file=out,
    )
    if metrics.shards_used:
        per_shard = ", ".join(
            f"shard {shard}: {count} tuples"
            for shard, count in sorted(metrics.tuples_by_shard.items())
        )
        print(
            f"distributed: {metrics.shards_used} shards, "
            f"{metrics.exchange_rounds} exchange rounds, "
            f"{metrics.exchange_tuples} tuples / "
            f"{metrics.exchange_bytes} bytes exchanged ({per_shard})",
            file=out,
        )
    return 0


def cmd_explain(args, out) -> int:
    import json

    from repro.obs import PlanProfiler, build_explain, render_explain

    db = _build_database(args)
    graph = compile_text(_read_query(args), db.catalog)
    optimizer = _optimizer(args, db.physical)
    result = optimizer.optimize(graph)
    model = optimizer.cost_model
    shards = max(1, getattr(args, "shards", 1))
    profiler = None
    execution = None
    if args.analyze:
        profiler = PlanProfiler()
        cluster = None
        if shards > 1:
            from repro.dist import ShardCluster

            cluster = ShardCluster(db.physical, shards)
        try:
            execution = Engine(
                db.physical, shards=shards, cluster=cluster
            ).execute(result.plan, profiler=profiler)
        finally:
            if cluster is not None:
                cluster.close()
    tree = build_explain(result.plan, model, profiler)
    title = "=== plan (EXPLAIN ANALYZE) ===" if args.analyze else "=== plan ==="
    print(title, file=out)
    print(render_explain(tree), file=out)
    print(file=out)
    print(f"estimated cost : {result.cost:.1f}", file=out)
    print(f"plans costed   : {result.plans_costed}", file=out)
    print(f"pushed through recursion: {result.chose_push()}", file=out)
    if result.candidates:
        print("candidates:", file=out)
        for description, cost in result.candidates:
            print(f"  {cost:10.1f}  {description}", file=out)
    _print_strategy_stats(result, out)
    if execution is not None:
        metrics = execution.metrics
        print(file=out)
        print(
            f"actuals: {len(execution.rows)} rows, "
            f"{metrics.buffer.physical_reads} page reads, "
            f"{metrics.predicate_evals} predicate evals, "
            f"{metrics.fix_iterations} fixpoint iterations, "
            f"measured cost {metrics.measured_cost():.1f}",
            file=out,
        )
        if metrics.shards_used:
            print(
                f"distributed: {metrics.shards_used} shards, "
                f"{metrics.exchange_rounds} rounds, "
                f"{metrics.exchange_tuples} tuples / "
                f"{metrics.exchange_frames} frames exchanged, "
                f"observed skew {metrics.observed_skew():.2f}, "
                f"barrier wait {metrics.barrier_wait_seconds * 1000:.1f}ms",
                file=out,
            )
    report = model.report(result.plan)
    print(file=out)
    print("=== cost breakdown (detailed model) ===", file=out)
    print(
        f"total {report.total:.2f} (io {report.io:.2f}, cpu {report.cpu:.2f})",
        file=out,
    )
    if args.simplified:
        print(file=out)
        print("=== simplified model (Section 4.6) ===", file=out)
        simplified = SimplifiedCostModel(db.physical)
        for row in simplified.table(result.plan, symbolic=True):
            print(f"  {row.label:>4} [{row.section:>8}] {row.formula!r}", file=out)
    if args.json:
        payload = json.dumps(tree.to_dict(), indent=2)
        if args.json == "-":
            print(payload, file=out)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
            print(f"explain tree written to {args.json}", file=out)
    return 0


def cmd_trace(args, out) -> int:
    import json

    from repro.obs import PlanProfiler, Tracer

    db = _build_database(args)
    graph = compile_text(_read_query(args), db.catalog)
    optimizer = _optimizer(args, db.physical)
    shards = max(1, getattr(args, "shards", 1))
    tracer = Tracer(trace_id="cli" if shards > 1 else None)
    with tracer.span("optimize"):
        result = optimizer.optimize(graph, tracer=tracer)
    profiler = None
    if not args.no_execute:
        profiler = PlanProfiler()
        cluster = None
        if shards > 1:
            from repro.dist import ShardCluster

            cluster = ShardCluster(db.physical, shards)
        engine = Engine(db.physical, shards=shards, cluster=cluster)
        engine.tracer = tracer
        try:
            with tracer.span("execute"):
                execution = engine.execute(result.plan, profiler=profiler)
        finally:
            if cluster is not None:
                cluster.close()
        print(f"{len(execution.rows)} rows", file=out)
    if args.format == "chrome":
        payload = tracer.to_chrome_trace()
    else:
        payload = tracer.to_dict()
        if profiler is not None:
            payload["profile"] = profiler.to_dict()
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    spans = len(tracer.spans)
    events = sum(len(span.events) for span in tracer.spans)
    lanes = 1 + len(tracer.children)
    print(
        f"trace written to {args.output} "
        f"({spans} spans, {events} events, {lanes} lane(s), "
        f"format={args.format})",
        file=out,
    )
    return 0


def cmd_serve(args, out, server_box=None) -> int:
    """Start the query service and block until a client sends
    ``shutdown`` (or the process is interrupted).

    ``server_box`` is a test hook: when given a list, the started
    :class:`~repro.service.server.QueryServer` (and, with
    ``--metrics-port``, the :class:`~repro.service.server.MetricsServer`)
    is appended to it so the caller can reach the bound ports and stop
    the servers."""
    from repro.obs.log import configure_logging
    from repro.service import (
        MetricsServer,
        QueryServer,
        QueryService,
        ServiceConfig,
    )

    configure_logging(args.log_format)
    db = _build_database(args)
    service = QueryService(
        db,
        ServiceConfig(
            cache_capacity=args.cache_size,
            drift_ratio=args.drift_ratio,
            cost_budget=args.budget,
            default_timeout=args.timeout,
            max_concurrent=args.max_concurrent,
            parallelism=max(1, args.parallelism),
            batch_size=args.batch_size,
            batch_layout=args.batch_layout,
            shards=max(1, args.shards),
            strategy=args.strategy if args.strategy != "ii" else None,
            slow_query_seconds=(
                args.slow_query_ms / 1000.0 if args.slow_query_ms else None
            ),
            misestimate_ratio=args.misestimate_ratio or None,
            feedback_enabled=not args.no_feedback,
            history_path=args.history_file,
            regression_ratio=args.regression_ratio,
            profile_sample_every=args.profile_sample_every,
            auto_pin=args.auto_pin,
            obs_budget=args.obs_budget or None,
            bundle_dir=args.bundle_dir,
            history_max_bytes=args.history_max_bytes,
            database_config=_database_config(args),
        ),
    )
    server = QueryServer(
        service, host=args.host, port=args.port, max_workers=args.workers
    )
    metrics_server = None
    if args.metrics_port is not None:
        metrics_server = MetricsServer(
            service, host=args.host, port=args.metrics_port
        )
        metrics_server.start()
    if server_box is not None:
        server_box.append(server)
        if metrics_server is not None:
            server_box.append(metrics_server)
    print(f"serving {args.db} database on {server.address}", file=out, flush=True)
    if metrics_server is not None:
        print(
            f"metrics on http://{metrics_server.address}/metrics",
            file=out,
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.stop()
        if metrics_server is not None:
            metrics_server.stop()
    print("server stopped", file=out, flush=True)
    return 0


def cmd_history(args, out) -> int:
    """``repro history``: pretty-print a running server's telemetry."""
    import json

    from repro.service import ServiceClient

    with ServiceClient(args.host, args.port) as client:
        payload = client.history(args.query, args.limit)
    if args.json:
        print(json.dumps(payload, indent=2, default=str), file=out)
        return 0
    history = payload["history"]
    print(
        f"{history['plans']} plan(s) tracked, "
        f"{history['dropped_plans']} dropped",
        file=out,
    )
    for entry in history["queries"]:
        print(file=out)
        print(f"query [{entry['class']}]: {entry['query']}", file=out)
        for plan in entry["plans"]:
            print(
                f"  plan {plan['fingerprint']}  runs={plan['runs']}  "
                f"est_cost={plan['plan_cost']}  "
                f"median={plan['median_execute_ms']}ms  "
                f"cost_q={plan['cost_misestimate']}  "
                f"op_q={plan['mean_operator_misestimate']}",
                file=out,
            )
            for node_id, op in plan.get("operators", {}).items():
                print(
                    f"    {node_id:>4} {op['label']:<30} "
                    f"est_rows={op['est_rows']} "
                    f"rows_q={op['rows_q_error']} "
                    f"cost_q={op['cost_q_error']} "
                    f"samples={op['samples']}",
                    file=out,
                )
    events = history.get("events", [])
    if events:
        print(file=out)
        print(f"recent events ({len(events)}):", file=out)
        for event in events[-10:]:
            print(f"  {event.get('event', '?')}: {event}", file=out)
    return 0


def cmd_feedback(args, out) -> int:
    """``repro feedback``: inspect/drive the loop on a running server."""
    import json

    from repro.service import ServiceClient

    def read_file(path: str) -> str:
        with open(path) as handle:
            return handle.read()

    with ServiceClient(args.host, args.port) as client:
        if args.governor:
            result = client.governor()
            if args.json:
                print(json.dumps(result, indent=2, default=str), file=out)
                return 0
            if not result.get("enabled"):
                print(
                    "overhead governor is disabled on this server "
                    "(start it with --obs-budget)",
                    file=out,
                )
            governor = result.get("governor") or {}
            if governor:
                decisions = governor.get("decisions", {})
                print(
                    f"budget {governor['budget']:.1%}  "
                    f"spent {governor['spent_fraction']:.2%}  "
                    f"decisions full={decisions.get('full', 0)} "
                    f"head={decisions.get('head', 0)} "
                    f"skip={decisions.get('skip', 0)}",
                    file=out,
                )
                for cls in governor.get("classes", []):
                    line = (
                        f"  {cls['query_class']}: "
                        f"p={cls['probability']:.3f} runs={cls['runs']} "
                        f"sampled={cls['sampled_runs']} "
                        f"anomalies={cls['anomalies']}"
                    )
                    if cls.get("pinned"):
                        line += " [pinned]"
                    print(line, file=out)
            anomalies = result.get("anomalies") or {}
            if anomalies:
                print(
                    f"anomalies: {anomalies['flagged']} flagged / "
                    f"{anomalies['observed']} observed "
                    f"(threshold z>{anomalies['threshold']:g})",
                    file=out,
                )
            recorder = result.get("recorder") or {}
            sink = (
                f" -> {recorder['directory']}"
                if recorder.get("directory")
                else " (in memory)"
            )
            print(
                f"bundles: {recorder.get('written', 0)} written, "
                f"{recorder.get('suppressed', 0)} suppressed{sink}",
                file=out,
            )
            return 0
        if args.pin:
            result = client.pin(read_file(args.pin), revert=args.revert)
            if args.json:
                print(json.dumps(result, indent=2, default=str), file=out)
            else:
                verb = "reverted to and pinned" if result["reverted"] else "pinned"
                print(f"plan {result['fingerprint']} {verb}", file=out)
            return 0
        if args.unpin:
            result = client.unpin(read_file(args.unpin))
            if args.json:
                print(json.dumps(result, indent=2, default=str), file=out)
            else:
                print(
                    "plan unpinned" if result["found"] else "no cached plan",
                    file=out,
                )
            return 0
        if args.recalibrate or args.apply:
            result = client.recalibrate(apply=args.apply)
            if args.json:
                print(json.dumps(result, indent=2, default=str), file=out)
                return 0
            print(
                f"recalibrated from {result['samples']} observations "
                f"(residual {result['residual']})",
                file=out,
            )
            for event, weight in sorted(result["weights"].items()):
                print(f"  {event:<18} {weight}", file=out)
            if result["applied"]:
                print(
                    f"applied: {result['plans_invalidated']} cached plan(s) "
                    "invalidated for re-optimization",
                    file=out,
                )
            else:
                print("dry run (use --apply to hot-swap)", file=out)
            return 0
        stats = client.stats()
        feedback = stats.get("feedback")
        if feedback is None:
            print("feedback loop is disabled on this server", file=out)
            return 1
        if args.json:
            print(json.dumps(feedback, indent=2, default=str), file=out)
            return 0
        print(
            f"tracked plans      : {feedback['tracked_plans']}\n"
            f"recalibrations     : {feedback['recalibrations']}\n"
            f"regressions flagged: {feedback['regressions_flagged']}",
            file=out,
        )
        if feedback.get("last_calibration"):
            print(
                f"last calibration   : {feedback['last_calibration']}",
                file=out,
            )
        for change in feedback.get("pending_changes", []):
            print(
                f"watching plan change {change['old_fingerprint']} -> "
                f"{change['new_fingerprint']} ({change['reason']}) "
                f"for: {change['query']}",
                file=out,
            )
        for regression in feedback.get("regressions", []):
            print(
                f"REGRESSION {regression['old_fingerprint']} -> "
                f"{regression['new_fingerprint']} ({regression['reason']}) "
                f"for: {regression['query']}",
                file=out,
            )
    return 0


def cmd_top(args, out) -> int:
    """``repro top``: stream live fixpoint progress from a server."""
    import json
    import time

    from repro.service import ServiceClient

    iterations = 1 if args.once else max(0, args.iterations)
    rendered = 0
    with ServiceClient(args.host, args.port) as client:
        while True:
            payload = client.progress()
            rendered += 1
            if args.json:
                print(json.dumps(payload, indent=2, default=str), file=out)
            else:
                _render_top(payload, out)
            if iterations and rendered >= iterations:
                break
            time.sleep(max(0.05, args.interval))
    return 0


def _render_top(payload: dict, out) -> None:
    """One refresh of the ``repro top`` display."""
    admission = payload.get("admission", {})
    print(
        f"uptime {payload.get('uptime_seconds', 0):.0f}s  "
        f"slots {admission.get('slots_in_use', '?')}"
        f"/{admission.get('max_concurrent', '?')} in use  "
        f"admitted {admission.get('admitted', '?')}",
        file=out,
    )
    active = payload.get("active", [])
    if not active:
        print("  (no queries in flight)", file=out)
    for query in active + payload.get("recent", []):
        live = query in active
        state = "RUNNING" if live else "done"
        print(
            f"  [{query['request']}] {state:<7} shards={query['shards']} "
            f"rounds={query['rounds']} delta_total={query['total_delta']} "
            f"elapsed={query['elapsed_s']:.2f}s  {query['query'][:60]}",
            file=out,
        )
        last = query.get("last_round")
        if last is None:
            continue
        line = (
            f"    round {last['round']} [{last['fix']}]: "
            f"+{last['delta']} tuples in {last['ms']:.1f}ms"
        )
        if last.get("delta_by_shard"):
            per_shard = ", ".join(
                f"s{shard}:{count}"
                for shard, count in last["delta_by_shard"].items()
            )
            line += f" ({per_shard})"
        if last.get("skew") is not None:
            line += f" skew={last['skew']:.2f}"
        if last.get("exchange_tuples_per_s") is not None:
            line += f" exchange={last['exchange_tuples_per_s']:,.0f} tup/s"
        if last.get("barrier_wait_ms") is not None:
            line += f" barrier={last['barrier_wait_ms']:.1f}ms"
        print(line, file=out)


def cmd_diagnose(args, out) -> int:
    """``repro diagnose``: record a full-detail flight-recorder bundle
    for one query on a running server."""
    import json

    from repro.service import ServiceClient

    with open(args.query_file) as handle:
        text = handle.read()
    with ServiceClient(args.host, args.port) as client:
        result = client.diagnose(text, shards=args.shards)
    if args.json:
        print(json.dumps(result, indent=2, default=str), file=out)
        return 0
    print(f"request     : {result['request_id']}", file=out)
    print(f"query class : {result['query_class']}", file=out)
    print(f"rows        : {result['row_count']}", file=out)
    print(f"plan fp     : {result['plan_fingerprint']}", file=out)
    print(f"answer fp   : {result['answer_fingerprint']}", file=out)
    bundle = result.get("bundle")
    if bundle:
        print(f"bundle      : {bundle}", file=out)
    else:
        print(
            "bundle      : kept in server memory (start the server "
            "with --bundle-dir to persist bundles)",
            file=out,
        )
    return 0


def cmd_replay(args, out) -> int:
    """``repro replay``: deterministically re-execute a bundle and
    verify its plan and answer fingerprints."""
    import json

    from repro.obs.recorder import load_bundle, replay_bundle

    report = replay_bundle(load_bundle(args.bundle))
    if args.json:
        print(json.dumps(report, indent=2, default=str), file=out)
        return 0 if report["matched"] else 1
    print(f"schema match: {report['schema_match']}", file=out)
    print(
        f"plan        : {report['plan_fingerprint']} vs recorded "
        f"{report['expected_plan_fingerprint']} -> "
        f"{'match' if report['plan_match'] else 'MISMATCH'}",
        file=out,
    )
    print(
        f"answer      : {report['answer_fingerprint']} vs recorded "
        f"{report['expected_answer_fingerprint']} -> "
        f"{'match' if report['answer_match'] else 'MISMATCH'}",
        file=out,
    )
    print(
        f"rows        : {report['row_count']} "
        f"(recorded {report['expected_row_count']})",
        file=out,
    )
    print("REPLAY OK" if report["matched"] else "REPLAY FAILED", file=out)
    return 0 if report["matched"] else 1


def cmd_demo(args, out) -> int:
    import tempfile

    with tempfile.NamedTemporaryFile("w", suffix=".oql", delete=False) as handle:
        handle.write(FIG3_TEXT)
        args.query_file = handle.name
    args.limit = 15
    print("running the paper's Figure 3 query:", file=out)
    print(FIG3_TEXT, file=out)
    return cmd_run(args, out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args, out)
        if args.command == "explain":
            return cmd_explain(args, out)
        if args.command == "trace":
            return cmd_trace(args, out)
        if args.command == "demo":
            return cmd_demo(args, out)
        if args.command == "serve":
            return cmd_serve(args, out)
        if args.command == "history":
            return cmd_history(args, out)
        if args.command == "feedback":
            return cmd_feedback(args, out)
        if args.command == "top":
            return cmd_top(args, out)
        if args.command == "diagnose":
            return cmd_diagnose(args, out)
        if args.command == "replay":
            return cmd_replay(args, out)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
