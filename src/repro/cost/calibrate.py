"""Cost-model calibration: fit unit weights from measured executions.

The paper's cost constants (``pr``, ``ev``, ...) are parameters "of the
physical schema description"; on a real system they are measured, not
guessed.  This module closes that loop for the simulator: it runs a
probe workload, records per-plan *event counts* (physical page reads,
index page reads, predicate evaluations, weighted method invocations,
output tuples) next to a target cost (by default the simulator's ground
truth with reference weights, but any timing source works), and fits
per-event unit weights by non-negative least squares.

The fitted :class:`CalibratedWeights` convert a
:class:`~repro.engine.metrics.RuntimeMetrics` into cost, and map onto
:class:`~repro.cost.params.CostParameters`, so the detailed model can
be re-based on measured machine constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy

from repro.cost.params import CostParameters
from repro.engine.evaluator import Engine
from repro.engine.metrics import RuntimeMetrics
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import PlanNode

__all__ = [
    "ProbeResult",
    "CalibratedWeights",
    "collect_probes",
    "fit_weights",
    "calibrate",
    "events_of",
    "fit_from_samples",
]

EVENT_NAMES = (
    "physical_reads",
    "index_page_reads",
    "predicate_evals",
    "method_weight",
    "tuples",
    "batches",
    #: Columnar-ABI feature: referenced-column touches (width of the
    #: columns a node reads × its input tuples, metered
    #: layout-invariantly), the runtime twin of the model's
    #: ``column_touch`` term.
    "column_touches",
    #: Distributed-exchange features (zero on single-store runs): the
    #: wire tuples and frames of both scatter-gather legs, the runtime
    #: twins of the distributed model's network terms.
    "exchange_tuples",
    "exchange_frames",
)


@dataclass
class ProbeResult:
    """Event counts and target cost for one probe execution."""

    label: str
    events: Dict[str, float]
    target_cost: float

    def vector(self) -> List[float]:
        return [self.events[name] for name in EVENT_NAMES]


@dataclass
class CalibratedWeights:
    """Per-event unit weights fitted from probe runs."""

    weights: Dict[str, float]
    residual: float

    def cost_of(self, metrics: RuntimeMetrics) -> float:
        """Cost of a measured run under the fitted weights."""
        events = _events_of(metrics)
        # Weights fitted before an event existed price it at zero.
        return sum(
            self.weights.get(name, 0.0) * value
            for name, value in events.items()
        )

    def to_parameters(self, base: Optional[CostParameters] = None) -> CostParameters:
        """Project the fitted weights onto detailed-model parameters."""
        base = base or CostParameters()
        return CostParameters(
            page_read=max(self.weights["physical_reads"], 1e-9),
            eval_per_tuple=max(self.weights["predicate_evals"], 1e-9),
            tuple_cpu=max(self.weights["tuples"], 1e-9),
            index_page=max(self.weights["index_page_reads"], 1e-9),
            buffer_pages=base.buffer_pages,
            temp_records_per_page=base.temp_records_per_page,
            default_fix_iterations=base.default_fix_iterations,
            default_delta_decay=base.default_delta_decay,
            parallelism=base.parallelism,
            parallel_overhead=base.parallel_overhead,
            batch_size=base.batch_size,
            # Weights fitted before the batches event existed fall back
            # to the reference per-batch charge.
            batch_overhead=max(
                self.weights.get("batches", base.batch_overhead), 1e-9
            ),
            # Same fallback contract as ``batches``: weights fitted
            # before the column_touches event existed keep the
            # reference per-column-touch charge.
            column_touch=max(
                self.weights.get("column_touches", base.column_touch), 1e-9
            ),
            shards=base.shards,
            shard_skew=base.shard_skew,
            # Network weights: a workload that never ran sharded leaves
            # the exchange columns zero — keep the base charges rather
            # than zeroing the distributed model's network terms.
            network_per_tuple=(
                self.weights.get("exchange_tuples", 0.0)
                or base.network_per_tuple
            ),
            network_per_round=(
                self.weights.get("exchange_frames", 0.0)
                or base.network_per_round
            ),
        )


def events_of(metrics: RuntimeMetrics) -> Dict[str, float]:
    """The calibration feature vector of one measured run."""
    return {
        "physical_reads": float(metrics.buffer.physical_reads),
        "index_page_reads": float(metrics.index_page_reads),
        "predicate_evals": float(metrics.predicate_evals),
        "method_weight": float(metrics.method_eval_weight),
        "tuples": float(metrics.total_tuples),
        "batches": float(metrics.batches),
        "column_touches": float(metrics.column_touches),
        "exchange_tuples": float(metrics.exchange_tuples),
        "exchange_frames": float(metrics.exchange_frames),
    }


#: Backward-compatible alias (pre-feedback-loop internal name).
_events_of = events_of


def collect_probes(
    physical: PhysicalSchema,
    plans: Sequence[Tuple[str, PlanNode]],
    target_fn: Optional[Callable[[RuntimeMetrics], float]] = None,
    cold: bool = True,
) -> List[ProbeResult]:
    """Execute probe plans and record (events, target cost) pairs.

    ``target_fn`` maps a run's metrics to the cost to fit against; the
    default is the simulator's reference weighting (1.0 per page read,
    0.1 per evaluation), standing in for wall-clock time on a real
    system."""
    if target_fn is None:
        target_fn = lambda metrics: metrics.measured_cost(1.0, 0.1)
    engine = Engine(physical)
    probes: List[ProbeResult] = []
    for label, plan in plans:
        if cold:
            physical.store.buffer.clear()
        result = engine.execute(plan)
        probes.append(
            ProbeResult(
                label,
                _events_of(result.metrics),
                target_fn(result.metrics),
            )
        )
    return probes


def _feature_priors() -> Dict[str, float]:
    """Reference unit weight per feature (the ``CostParameters``
    defaults): the anchor the rank-deficient directions of a fit fall
    back to."""
    base = CostParameters()
    return {
        "physical_reads": base.page_read,
        "index_page_reads": base.index_page,
        "predicate_evals": base.eval_per_tuple,
        "method_weight": base.eval_per_tuple,
        "tuples": base.tuple_cpu,
        "batches": base.batch_overhead,
        "column_touches": base.column_touch,
        "exchange_tuples": base.network_per_tuple,
        "exchange_frames": base.network_per_round,
    }


def fit_weights(probes: Sequence[ProbeResult]) -> CalibratedWeights:
    """Non-negative least-squares fit of per-event unit weights.

    Uses projected alternating least squares (clip-to-zero iterations on
    top of ``numpy.linalg.lstsq``), which is ample for a handful of
    well-scaled features.

    Probe workloads are often rank-deficient — a history of three
    query shapes cannot identify nine features, and several features
    (predicate evaluations, column touches, output tuples) are near
    collinear on uniform workloads.  A plain min-norm solution is then
    arbitrary within the unidentified subspace, so the fit is anchored:
    a ridge term far below the data scale pulls exactly those
    directions the probes say nothing about toward the reference
    :class:`CostParameters` weights, leaving well-determined directions
    untouched."""
    if probes:
        matrix = numpy.array([probe.vector() for probe in probes], dtype=float)
        # The fit only has to be determined over the features the
        # workload actually exercised (non-zero columns) — a purely
        # single-store probe set never pays for the distributed
        # features it cannot see.
        exercised = int((numpy.abs(matrix) > 0).any(axis=0).sum())
    else:
        matrix = numpy.zeros((0, len(EVENT_NAMES)))
        exercised = len(EVENT_NAMES)
    needed = max(1, exercised)
    if len(probes) < needed:
        raise ValueError(
            f"need at least {needed} probes for the {needed} exercised "
            f"features, got {len(probes)}"
        )
    target = numpy.array([probe.target_cost for probe in probes], dtype=float)
    priors = _feature_priors()
    prior = numpy.array(
        [priors.get(name, 0.0) for name in EVENT_NAMES], dtype=float
    )
    scale = float(numpy.abs(matrix).max()) if matrix.size else 0.0
    ridge = 1e-6 * max(scale, 1.0)
    anchor = ridge * numpy.eye(len(EVENT_NAMES))

    def solve(columns: numpy.ndarray) -> numpy.ndarray:
        design = numpy.vstack([matrix[:, columns], anchor[:, columns][columns]])
        response = numpy.concatenate([target, ridge * prior[columns]])
        solution, *_rest = numpy.linalg.lstsq(design, response, rcond=None)
        return solution

    everything = numpy.ones(len(EVENT_NAMES), dtype=bool)
    solution = numpy.clip(solve(everything), 0.0, None)
    # One refit pass on the active (non-zero) features to repair the
    # clipping bias.
    active = solution > 0
    if active.any() and not active.all():
        refit = numpy.clip(solve(active), 0.0, None)
        solution = numpy.zeros_like(solution)
        solution[active] = refit
    residual = float(
        numpy.linalg.norm(matrix @ solution - target)
        / max(numpy.linalg.norm(target), 1e-12)
    )
    weights = {
        name: float(value) for name, value in zip(EVENT_NAMES, solution)
    }
    return CalibratedWeights(weights, residual)


def calibrate(
    physical: PhysicalSchema,
    plans: Sequence[Tuple[str, PlanNode]],
    target_fn: Optional[Callable[[RuntimeMetrics], float]] = None,
) -> CalibratedWeights:
    """Convenience: collect probes and fit in one call."""
    return fit_weights(collect_probes(physical, plans, target_fn))


def fit_from_samples(samples: Sequence[Dict[str, float]]) -> CalibratedWeights:
    """Fit unit weights from recorded samples instead of live probes.

    Each sample is a mapping with the :data:`EVENT_NAMES` feature
    counts plus a ``target`` cost — exactly what
    :meth:`repro.obs.history.QueryTelemetryStore.calibration_samples`
    yields, so the service can recalibrate from accumulated production
    telemetry (the *online* counterpart of :func:`calibrate`).

    An optional per-sample ``weight`` (the overhead governor's inverse
    sampling probability) turns the fit into weighted least squares: a
    run admitted at 1-in-*k* head sampling stands for *k* unseen runs
    of its class.  The model is linear through the origin, so scaling
    each feature row and its target by ``sqrt(weight)`` implements the
    weighting exactly; unweighted samples (weight 1.0) are unchanged,
    and a feature that is zero stays zero, so the exercised-feature
    count in :func:`fit_weights` is unaffected.
    """
    probes = []
    for index, sample in enumerate(samples):
        weight = float(sample.get("weight", 1.0))
        scale = weight**0.5 if weight > 0.0 else 1.0
        probes.append(
            ProbeResult(
                label=str(sample.get("label", f"sample{index}")),
                events={
                    name: float(sample.get(name, 0.0)) * scale
                    for name in EVENT_NAMES
                },
                target_cost=float(sample["target"]) * scale,
            )
        )
    return fit_weights(probes)
