"""Cardinality and selectivity estimation for processing trees.

Feeds the cost model with the paper's ``nbtuples``/``nbpages``
functions: per-node output cardinalities derived from entity
statistics, predicate selectivities (uniformity assumption, System R's
1/3 for inequalities), reference fan-outs for implicit joins, and — for
fixpoints — per-iteration delta sizes derived from chain-depth
statistics of the attribute the recursion advances along.

Tuple-valued bindings (produced by ``Proj`` and flowing out of ``Fix``)
carry a :class:`TupleShape` mapping each field to the class its values
come from, so predicates applied *after* a recursion can still resolve
selectivities and fan-outs (e.g. ``i.master.works.instruments.name``
knows ``master`` holds Composers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CostModelError
from repro.cost.params import CostParameters
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)
from repro.querygraph.predicates import (
    And,
    Comparison,
    Const,
    Expr,
    FunctionApp,
    Not,
    Or,
    PathRef,
    Predicate,
    TruePredicate,
)

__all__ = ["TupleShape", "VarInfo", "NodeEstimate", "CardinalityEstimator"]

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_JOIN_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass
class TupleShape:
    """Shape of tuple-valued bindings: field name -> class/entity name
    (None for atomic or unknown fields).

    ``invariant_satisfied`` lists fields whose values are known to
    already satisfy any selection applied to them inside a fixpoint
    body: when a filter on an *invariant* recursion field has been
    pushed through the recursion, every delta tuple of iteration i ≥ 1
    descends from a tuple that passed the same filter, so re-applying
    it filters nothing (selectivity 1) — it only costs evaluations.
    The cost model prices those evaluations; the cardinality model must
    not double-shrink the frontier."""

    fields: Dict[str, Optional[str]] = field(default_factory=dict)
    invariant_satisfied: frozenset = frozenset()


#: What a variable is bound to: the name of a physical entity (records),
#: a TupleShape (temp tuples), or None (unknown).
VarInfo = Union[str, TupleShape, None]


@dataclass
class NodeEstimate:
    """Estimated output of one plan node.

    ``stream_vars`` marks variables bound by dereferencing references
    (IJ/PIJ outputs): a selection on such a variable sees the
    *reference-weighted* value distribution, not the extent's — e.g.
    a popular instrument occurs in many (work, instrument) pairs even
    though the extent stores it once.
    """

    tuples: float
    pages: float
    varmap: Dict[str, VarInfo]
    #: For Fix nodes: the estimated per-iteration delta sizes.
    deltas: Optional[List[float]] = None
    stream_vars: frozenset = frozenset()


class CardinalityEstimator:
    """Estimates node output cardinalities over a physical schema."""

    def __init__(
        self, physical: PhysicalSchema, params: Optional[CostParameters] = None
    ) -> None:
        self.physical = physical
        self.params = params or CostParameters()
        self.stats = physical.statistics

    # -- entry point ------------------------------------------------------------

    def estimate(
        self,
        node: PlanNode,
        delta_env: Optional[Dict[str, Tuple[float, TupleShape]]] = None,
    ) -> NodeEstimate:
        """Estimate a node's output cardinality, page count and
        variable bindings; ``delta_env`` supplies RecLeaf sizes when
        estimating inside a fixpoint body."""
        env = delta_env or {}
        if isinstance(node, (EntityLeaf, TempLeaf)):
            return self._estimate_leaf(node)
        if isinstance(node, RecLeaf):
            if node.name not in env:
                raise CostModelError(
                    f"recursion reference {node.name!r} estimated outside "
                    "its fixpoint"
                )
            tuples, shape = env[node.name]
            return NodeEstimate(
                tuples, self._tuple_pages(tuples), {node.var: shape}
            )
        if isinstance(node, Sel):
            child = self.estimate(node.child, env)
            selectivity = self.predicate_selectivity(
                node.predicate, child.varmap, child.stream_vars
            )
            tuples = child.tuples * selectivity
            return NodeEstimate(
                tuples,
                self._tuple_pages(tuples),
                child.varmap,
                stream_vars=child.stream_vars,
            )
        if isinstance(node, Proj):
            child = self.estimate(node.child, env)
            shape = self._project_shape(node, child.varmap)
            # After a projection the bindings are keyed by field names;
            # each field acts as a variable bound to (records of) the
            # class its expression resolves to.
            varmap: Dict[str, VarInfo] = dict(shape.fields)
            return NodeEstimate(
                child.tuples, self._tuple_pages(child.tuples), varmap
            )
        if isinstance(node, IJ):
            child = self.estimate(node.child, env)
            fanout = self.path_fanout(node.source, child.varmap)
            tuples = child.tuples * fanout
            varmap = dict(child.varmap)
            varmap[node.out_var] = node.target.entity
            return NodeEstimate(
                tuples,
                self._tuple_pages(tuples),
                varmap,
                stream_vars=child.stream_vars | {node.out_var},
            )
        if isinstance(node, PIJ):
            return self._estimate_pij(node, env)
        if isinstance(node, EJ):
            return self._estimate_ej(node, env)
        if isinstance(node, UnionOp):
            left = self.estimate(node.left, env)
            right = self.estimate(node.right, env)
            tuples = left.tuples + right.tuples
            varmap = {
                key: left.varmap.get(key)
                for key in set(left.varmap) & set(right.varmap)
            }
            if not varmap:
                varmap = left.varmap
            return NodeEstimate(
                tuples,
                self._tuple_pages(tuples),
                varmap,
                stream_vars=left.stream_vars & right.stream_vars,
            )
        if isinstance(node, Fix):
            return self.estimate_fix(node, env)
        if isinstance(node, Materialize):
            child = self.estimate(node.child, env)
            shape = TupleShape(
                {
                    name: info if isinstance(info, str) else None
                    for name, info in child.varmap.items()
                }
            )
            return NodeEstimate(
                child.tuples,
                self._tuple_pages(child.tuples),
                {node.out_var: shape},
            )
        raise CostModelError(f"cannot estimate node {type(node).__name__}")

    # -- leaves -------------------------------------------------------------------

    def _estimate_leaf(self, node) -> NodeEstimate:
        if self.physical.has_entity(node.entity):
            tuples = float(self.stats.instances(node.entity))
            pages = float(max(1, self.stats.pages(node.entity)))
        else:
            tuples, pages = 0.0, 0.0
        info: VarInfo = node.entity
        return NodeEstimate(tuples, pages, {node.var: info})

    def _tuple_pages(self, tuples: float) -> float:
        return max(1.0, tuples / self.params.temp_records_per_page)

    # -- Proj shape ------------------------------------------------------------------

    def _project_shape(self, node: Proj, varmap: Dict[str, VarInfo]) -> TupleShape:
        shape = TupleShape()
        for output_field in node.fields.fields:
            shape.fields[output_field.name] = self._expr_entity(
                output_field.expr, varmap
            )
        return shape

    def _expr_entity(
        self, expr: Expr, varmap: Dict[str, VarInfo]
    ) -> Optional[str]:
        if not isinstance(expr, PathRef):
            return None
        resolved = self._resolve_path(expr, varmap)
        if resolved is None:
            return None
        terminal_entity, terminal_attr, _fanout = resolved
        if terminal_attr is None:
            return terminal_entity
        conceptual = self._conceptual_of(terminal_entity)
        if conceptual is None or self.physical.catalog is None:
            return None
        try:
            attribute = self.physical.catalog.attribute(conceptual, terminal_attr)
        except Exception:
            return None
        referenced = attribute.referenced_class()
        if referenced is None:
            return None
        try:
            return self.physical.primary_entity(referenced).name
        except Exception:
            return None

    # -- path resolution ----------------------------------------------------------------

    def _conceptual_of(self, entity: Optional[str]) -> Optional[str]:
        if entity is None or not self.physical.has_entity(entity):
            return None
        return self.physical.entity(entity).conceptual_name

    def _entity_for_class(self, class_name: str) -> Optional[str]:
        try:
            return self.physical.primary_entity(class_name).name
        except Exception:
            return None

    def _resolve_path(
        self, path: PathRef, varmap: Dict[str, VarInfo]
    ) -> Optional[Tuple[Optional[str], Optional[str], float]]:
        """Resolve a path to (entity_of_final_hop, final_attr, fanout).

        ``fanout`` is the product of reference fan-outs along the path
        (>1 when the path crosses collections); ``final_attr`` is None
        when the path ends on the variable itself.
        """
        info = varmap.get(path.var)
        if isinstance(info, TupleShape):
            if not path.attrs:
                return (None, None, 1.0)
            first, rest = path.attrs[0], path.attrs[1:]
            entity = info.fields.get(first)
            if entity is None:
                return (None, first if not rest else None, 1.0)
            if not rest:
                return (entity, None, 1.0)
            return self._walk_entity_path(entity, rest, 1.0)
        if isinstance(info, str):
            if not path.attrs:
                return (info, None, 1.0)
            return self._walk_entity_path(info, path.attrs, 1.0)
        return None

    def _walk_entity_path(
        self, entity: str, attrs: Tuple[str, ...], fanout: float
    ) -> Optional[Tuple[Optional[str], Optional[str], float]]:
        current = entity
        for position, attr in enumerate(attrs):
            is_last = position == len(attrs) - 1
            conceptual = self._conceptual_of(current)
            if conceptual is None or self.physical.catalog is None:
                return (current, attr if is_last else None, fanout)
            catalog = self.physical.catalog
            try:
                attribute = catalog.attribute(conceptual, attr)
            except Exception:
                # Possibly a method (computed attribute).
                return (current, attr, fanout)
            referenced = attribute.referenced_class()
            if referenced is None:
                if not is_last:
                    return None
                return (current, attr, fanout)
            # A single-valued reference may have fan-out < 1 (null
            # references drop bindings — inner-join semantics).
            fanout *= max(0.0, self.stats.fanout(current, attr))
            next_entity = self._entity_for_class(referenced)
            if next_entity is None:
                return (current, attr, fanout)
            if is_last:
                return (next_entity, None, fanout)
            current = next_entity
        return (current, None, fanout)

    def path_fanout(self, path: PathRef, varmap: Dict[str, VarInfo]) -> float:
        """Expected number of values reached per input binding.

        For the final hop: the final attribute's own fan-out when it is
        a reference attribute; non-null fraction otherwise."""
        resolved = self._resolve_path(path, varmap)
        if resolved is None:
            return 1.0
        entity, final_attr, fanout = resolved
        if final_attr is not None and entity is not None:
            if self.physical.has_entity(entity):
                final = self.stats.fanout(entity, final_attr)
                entity_stats = self.stats.entity(entity)
                if final_attr in entity_stats.fanout:
                    fanout *= max(0.0, final)
                elif entity_stats.instances:
                    non_null = entity_stats.non_null.get(final_attr, 0)
                    fanout *= non_null / entity_stats.instances
        return max(fanout, 0.0)

    # -- selectivity ----------------------------------------------------------------------

    def predicate_selectivity(
        self,
        predicate: Predicate,
        varmap: Dict[str, VarInfo],
        stream_vars: frozenset = frozenset(),
    ) -> float:
        """Fraction of bindings satisfying ``predicate`` (uniformity
        plus tracked value frequencies; see the module docstring)."""
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, And):
            product = 1.0
            for part in predicate.parts:
                product *= self.predicate_selectivity(part, varmap, stream_vars)
            return product
        if isinstance(predicate, Or):
            miss = 1.0
            for part in predicate.parts:
                miss *= 1.0 - self.predicate_selectivity(part, varmap, stream_vars)
            return 1.0 - miss
        if isinstance(predicate, Not):
            return 1.0 - self.predicate_selectivity(
                predicate.part, varmap, stream_vars
            )
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate, varmap, stream_vars)
        return DEFAULT_EQ_SELECTIVITY

    def _comparison_selectivity(
        self,
        comparison: Comparison,
        varmap: Dict[str, VarInfo],
        stream_vars: frozenset = frozenset(),
    ) -> float:
        left_path = comparison.left if isinstance(comparison.left, PathRef) else None
        right_path = (
            comparison.right if isinstance(comparison.right, PathRef) else None
        )
        left_const = (
            comparison.left if isinstance(comparison.left, Const) else None
        )
        right_const = (
            comparison.right if isinstance(comparison.right, Const) else None
        )
        if comparison.op in ("<", "<=", ">", ">="):
            return RANGE_SELECTIVITY
        if comparison.op == "!=":
            if left_path is not None and right_const is not None:
                return 1.0 - self._eq_selectivity_of(
                    left_path, varmap, stream_vars, right_const.value
                )
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        # Equality.
        if left_path is not None and right_const is not None:
            return self._eq_selectivity_of(
                left_path, varmap, stream_vars, right_const.value
            )
        if right_path is not None and left_const is not None:
            return self._eq_selectivity_of(
                right_path, varmap, stream_vars, left_const.value
            )
        if left_path is not None and right_path is not None:
            return self._join_selectivity(left_path, right_path, varmap)
        return DEFAULT_EQ_SELECTIVITY

    def _eq_selectivity_of(
        self,
        path: PathRef,
        varmap: Dict[str, VarInfo],
        stream_vars: frozenset = frozenset(),
        value: object = None,
    ) -> float:
        info = varmap.get(path.var)
        if (
            isinstance(info, TupleShape)
            and path.attrs
            and path.attrs[0] in info.invariant_satisfied
        ):
            return 1.0
        resolved = self._resolve_path(path, varmap)
        if resolved is None:
            return DEFAULT_EQ_SELECTIVITY
        entity, final_attr, fanout = resolved
        if entity is None or final_attr is None:
            return DEFAULT_EQ_SELECTIVITY
        if not self.physical.has_entity(entity):
            return DEFAULT_EQ_SELECTIVITY
        base = self._value_selectivity(
            entity,
            final_attr,
            value,
            # The distribution seen by the predicate is reference-
            # weighted whenever the records were reached by
            # dereferencing (an IJ/PIJ output or a multi-hop path),
            # rather than by scanning the extent.
            weighted=path.var in stream_vars or fanout != 1.0,
        )
        if fanout > 1.0:
            # Existential semantics over fanout reached values.
            return 1.0 - (1.0 - min(1.0, base)) ** fanout
        return base

    def _value_selectivity(
        self, entity: str, attribute: str, value: object, weighted: bool
    ) -> float:
        entity_stats = self.stats.entity(entity)
        if value is not None:
            if weighted:
                estimate = entity_stats.weighted_value_selectivity(
                    attribute, value
                )
                if estimate is not None:
                    return estimate
            estimate = entity_stats.value_selectivity(attribute, value)
            if estimate is not None:
                return estimate
        return entity_stats.eq_selectivity(attribute)

    def _join_selectivity(
        self, left: PathRef, right: PathRef, varmap: Dict[str, VarInfo]
    ) -> float:
        distincts: List[float] = []
        for path in (left, right):
            resolved = self._resolve_path(path, varmap)
            if resolved is None:
                continue
            entity, final_attr, _fanout = resolved
            if entity is None or not self.physical.has_entity(entity):
                continue
            entity_stats = self.stats.entity(entity)
            if final_attr is None:
                distincts.append(float(max(1, entity_stats.instances)))
            elif final_attr in entity_stats.distinct:
                distincts.append(float(entity_stats.distinct[final_attr]))
            elif final_attr in entity_stats.fanout:
                # Reference attribute: distinct targets bounded by the
                # referenced entity's size; approximate by own count.
                distincts.append(float(max(1, entity_stats.instances)))
        if not distincts:
            return DEFAULT_JOIN_SELECTIVITY
        return 1.0 / max(distincts)

    # -- composite nodes --------------------------------------------------------------------

    def _estimate_pij(self, node: PIJ, env) -> NodeEstimate:
        child = self.estimate(node.child, env)
        index = self.physical.find_path_index(node.attributes)
        if index is not None:
            heads = max(1, self.stats.instances(index.root_entity))
            per_head = index.entry_count / heads
        else:
            per_head = 1.0
        tuples = child.tuples * per_head
        varmap = dict(child.varmap)
        for out_var, target in zip(node.out_vars, node.targets):
            varmap[out_var] = target.entity
        return NodeEstimate(
            tuples,
            self._tuple_pages(tuples),
            varmap,
            stream_vars=child.stream_vars | set(node.out_vars),
        )

    def _estimate_ej(self, node: EJ, env) -> NodeEstimate:
        left = self.estimate(node.left, env)
        right = self.estimate(node.right, env)
        varmap = dict(left.varmap)
        varmap.update(right.varmap)
        stream = left.stream_vars | right.stream_vars
        selectivity = self.predicate_selectivity(node.predicate, varmap, stream)
        tuples = left.tuples * right.tuples * selectivity
        return NodeEstimate(
            tuples, self._tuple_pages(tuples), varmap, stream_vars=stream
        )

    def estimate_fix(self, node: Fix, env) -> NodeEstimate:
        """Estimate a fixpoint: base once, then per-iteration deltas.

        Iteration count and frontier decay come from chain-depth
        statistics of the recursion attribute when available, else the
        configured defaults.  Returns the accumulated output size plus
        the per-iteration delta list (the cost model prices each
        iteration's body at its own delta size — the Fix row of
        Figure 5)."""
        from repro.engine.fixpoint import partition_parts

        base_parts, recursive_parts = partition_parts(node)
        shape = self._fix_shape(node, env)
        # Delta tuples entering a recursive part always descend from
        # tuples that already passed any filter pushed on an invariant
        # field (either in the base or in a previous round), so such
        # filters are transparent for cardinality inside the body.
        body_shape = TupleShape(
            dict(shape.fields), frozenset(node.invariant_fields)
        )

        base_tuples = 0.0
        for part in base_parts:
            base_tuples += self.estimate(part, env).tuples

        iterations, decay_schedule = self._iteration_schedule(node)
        deltas: List[float] = [base_tuples]
        total = base_tuples
        delta = base_tuples
        for iteration in range(iterations):
            produced = 0.0
            inner_env = dict(env)
            inner_env[node.name] = (delta, body_shape)
            for part in recursive_parts:
                produced += self.estimate(part, inner_env).tuples
            decay = decay_schedule[min(iteration, len(decay_schedule) - 1)]
            delta = produced * decay
            if delta < 0.5:
                break
            deltas.append(delta)
            total += delta
        varmap: Dict[str, VarInfo] = {node.out_var: shape}
        return NodeEstimate(total, self._tuple_pages(total), varmap, deltas)

    def _fix_shape(self, node: Fix, env) -> TupleShape:
        from repro.engine.fixpoint import partition_parts

        base_parts, _recursive = partition_parts(node)
        first = base_parts[0]
        if isinstance(first, Proj):
            child = self.estimate(first.child, env)
            return self._project_shape(first, child.varmap)
        return TupleShape()

    def _iteration_schedule(self, node: Fix) -> Tuple[int, List[float]]:
        entity = node.recursion_entity
        attribute = node.recursion_attribute
        if (
            entity is not None
            and attribute is not None
            and self.physical.has_entity(entity)
        ):
            survivors = self.stats.chain_survivors(entity, attribute)
            if survivors:
                decays = []
                for position in range(1, len(survivors)):
                    previous = max(1, survivors[position - 1])
                    decays.append(survivors[position] / previous)
                if not decays:
                    decays = [0.0]
                return (len(survivors), decays)
        return (
            self.params.default_fix_iterations,
            [self.params.default_delta_decay],
        )
