"""The simplified cost model of Section 4.6 and the Figure 7 machinery.

The paper's comprehensive example computes plan costs under simplifying
assumptions::

    access_cost(Ci, P) = |Ci| * pr      eval_cost(Ci, P) = ev
    access_cost(Ci)    = |Ci| * pr      nbtuples(Ci, P)  = ||Ci||
    access_cost(Ci,Cj) = pr             nbpages(Ci, P)   = |Ci|
    nbleaves(index)    = lea            nblevels(index)  = lev

i.e. no access structure other than path indices, sub-objects not
clustered near owners, no materialization of node results, and no
selectivity discounts.  Under these assumptions every pipelined
operator's cost is a closed formula over its input's page/tuple counts,
which is exactly how Figure 7 presents the two plans: one row ``T_k``
per operation, each a polynomial over ``pr``, ``ev``, ``lea``, ``lev``
and the sizes ``|T_j|``/``||T_j||``.

:class:`SimplifiedCostModel` produces that table symbolically (rows of
:class:`~repro.cost.symbolic.Sym`) and evaluates it numerically under
any size assignment — e.g. sizes estimated by the cardinality model, or
sizes *measured* by actually running the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CostModelError
from repro.cost.cardinality import CardinalityEstimator, TupleShape
from repro.cost.params import SimplifiedParameters
from repro.cost.symbolic import Number, Sym, sym
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)

__all__ = ["CostRow", "SimplifiedCostModel", "Size"]

Value = Union[float, Sym]


@dataclass
class Size:
    """Page and tuple counts of a stream (numbers or symbols)."""

    pages: Value
    tuples: Value


@dataclass
class CostRow:
    """One row of a Figure 7-style cost table.

    ``section`` is ``"main"`` for top-level pipeline operations,
    ``"fix-base"``/``"fix-rec"`` for operations inside a fixpoint body
    (Figure 7 lists those as separate rows, e.g. T7–T13, and the Fix
    row then combines them: ``cost(Exp(T...)) + (n-1)*cost(Exp(Inf_i))``).
    Only ``"main"`` rows enter the plan total — the Fix row already
    accounts for its body across all iterations."""

    label: str
    operator: str
    formula: Value
    section: str = "main"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{self.label}: {self.formula!r}  [{self.operator}]"


class SimplifiedCostModel:
    """Figure 5 under the Section 4.6 assumptions.

    * :meth:`table` — the per-operation cost table of a plan with
      symbolic or numeric sizes (Figure 7's two halves are ``table`` of
      the Figure 4(i) and 4(ii) plans).
    * :meth:`cost` — a numeric total using cardinality-model sizes.
    """

    def __init__(
        self,
        physical: PhysicalSchema,
        params: Optional[SimplifiedParameters] = None,
        identity_sizes: bool = False,
    ) -> None:
        """``identity_sizes=True`` selects the paper's sketch-level size
        discipline for numeric tables: every operator's output size
        equals its input size (``nbtuples(Ci, P) = ||Ci||``,
        ``nbpages(Ci, P) = |Ci|``) and fixpoint deltas stay at the base
        size for every iteration.  ``False`` (default) propagates sizes
        through the cardinality estimator."""
        self.physical = physical
        self.params = params or SimplifiedParameters()
        self.identity_sizes = identity_sizes
        self.estimator = CardinalityEstimator(physical)

    # -- numeric total -----------------------------------------------------------

    def cost(self, plan: PlanNode, delta_env=None) -> float:
        """Numeric plan total under the simplified unit formulas."""
        rows = self.table(plan, symbolic=False, delta_env=delta_env)
        total = self.total(rows)
        if isinstance(total, Sym):
            raise CostModelError("numeric table produced a symbol")
        return float(total)

    # -- table construction ---------------------------------------------------------

    def table(
        self,
        plan: PlanNode,
        symbolic: bool = True,
        entity_abbreviations: Optional[Dict[str, str]] = None,
        size_assignment: Optional[Dict[str, Number]] = None,
        delta_env=None,
    ) -> List[CostRow]:
        """Build the per-operation cost table of a plan.

        With ``symbolic=True`` sizes of intermediates appear as
        ``|Tk|`` / ``||Tk||`` symbols and entity sizes as
        ``|Cpr|``-style symbols (abbreviations taken from
        ``entity_abbreviations``, defaulting to the entity name).  With
        ``symbolic=False`` every size is a number from the cardinality
        model.  ``size_assignment`` optionally substitutes numbers for
        any symbols at the end (partial evaluation)."""
        builder = _TableBuilder(
            self, symbolic, entity_abbreviations or {}
        )
        env: Dict[str, Size] = {}
        for name, (tuples, _shape) in (delta_env or {}).items():
            env[name] = Size(_pages_of(tuples), tuples)
        builder.visit(plan, env)
        rows = builder.rows
        if size_assignment:
            evaluated: List[CostRow] = []
            for row in rows:
                formula = row.formula
                if isinstance(formula, Sym):
                    try:
                        formula = formula.evaluate(
                            {**self._unit_assignment(), **size_assignment}
                        )
                    except KeyError:
                        pass
                evaluated.append(CostRow(row.label, row.operator, formula))
            rows = evaluated
        return rows

    def total(self, rows: List[CostRow]) -> Value:
        """Plan total: the sum of main-section rows (fixpoint-internal
        rows are already folded into their Fix row)."""
        result: Value = 0.0
        for row in rows:
            if row.section == "main":
                result = row.formula + result
        return result

    def _unit_assignment(self) -> Dict[str, Number]:
        return {
            "pr": self.params.pr,
            "ev": self.params.ev,
            "lea": self.params.lea,
            "lev": self.params.lev,
        }

    # -- units -----------------------------------------------------------------------

    def units(self, symbolic: bool) -> Tuple[Value, Value, Value, Value]:
        """The four Section 4.6 constants, as symbols or numbers."""
        if symbolic:
            return sym("pr"), sym("ev"), sym("lea"), sym("lev")
        return (
            self.params.pr,
            self.params.ev,
            self.params.lea,
            self.params.lev,
        )


class _TableBuilder:
    """Post-order walk assigning T-labels and emitting cost rows."""

    def __init__(
        self,
        model: SimplifiedCostModel,
        symbolic: bool,
        abbreviations: Dict[str, str],
    ) -> None:
        self.model = model
        self.symbolic = symbolic
        self.abbreviations = abbreviations
        self.rows: List[CostRow] = []
        self._counter = 0
        self._section = "main"
        self.pr, self.ev, self.lea, self.lev = model.units(symbolic)

    # -- helpers -----------------------------------------------------------------

    def _abbrev(self, entity: str) -> str:
        if entity in self.abbreviations:
            return self.abbreviations[entity]
        conceptual = None
        if self.model.physical.has_entity(entity):
            conceptual = self.model.physical.entity(entity).conceptual_name
        if conceptual and conceptual in self.abbreviations:
            return self.abbreviations[conceptual]
        return conceptual or entity

    def _entity_size(self, entity: str) -> Size:
        if self.symbolic:
            name = self._abbrev(entity)
            return Size(sym(f"|{name}|"), sym(f"||{name}||"))
        stats = self.model.physical.statistics
        if self.model.physical.has_entity(entity):
            return Size(
                float(max(1, stats.pages(entity))),
                float(stats.instances(entity)),
            )
        return Size(1.0, 0.0)

    def _next_label(self) -> str:
        self._counter += 1
        return f"T{self._counter}"

    def _emit(self, operator: str, formula: Value, tuples: Value) -> Tuple[str, Size]:
        label = self._next_label()
        self.rows.append(CostRow(label, operator, formula, self._section))
        if self.symbolic:
            size = Size(sym(f"|{label}|"), sym(f"||{label}||"))
        else:
            pages = _pages_of(tuples)
            size = Size(pages, tuples)
        return label, size

    # -- visitation ----------------------------------------------------------------

    def visit(
        self, node: PlanNode, env: Dict[str, Size]
    ) -> Size:
        """Emit rows for the subtree; return the node's output size."""
        if isinstance(node, (EntityLeaf, TempLeaf)):
            return self._entity_size(node.entity)
        if isinstance(node, RecLeaf):
            if node.name not in env:
                raise CostModelError(
                    f"recursion reference {node.name!r} outside its Fix"
                )
            return env[node.name]
        if isinstance(node, Sel):
            input_size = self.visit(node.child, env)
            formula = input_size.pages * (self.pr + self.ev)
            tuples = self._filtered_tuples(node, input_size, env)
            _label, size = self._emit(f"Sel[{node.predicate!r}]", formula, tuples)
            return size
        if isinstance(node, Proj):
            # Projections are abstracted in the paper's notation; a
            # pipelined projection costs nothing under the simplified
            # model (no materialization).  But when the projection is
            # the *only* operator over a scanned source, someone must
            # pay for reading it — emit the scan row here.
            if isinstance(node.child, (EntityLeaf, TempLeaf, RecLeaf)):
                input_size = self._operand_size(node.child, env)
                formula = input_size.pages * self.pr
                _label, size = self._emit(
                    f"Scan[{node.child.label()}]", formula, input_size.tuples
                )
                return size
            return self.visit(node.child, env)
        if isinstance(node, IJ):
            input_size = self.visit(node.child, env)
            formula = input_size.pages * self.pr + input_size.tuples * self.pr
            tuples = self._scaled_tuples(node, input_size, env)
            _label, size = self._emit(f"IJ[{node.source.dotted()}]", formula, tuples)
            return size
        if isinstance(node, PIJ):
            input_size = self.visit(node.child, env)
            index = self.model.physical.find_path_index(node.attributes)
            if index is None:
                raise CostModelError(
                    f"no path index on {node.path_name!r}"
                )
            root_size = self._entity_size(index.root_entity)
            # ||X|| * (lev + lea / ||C1||): with symbolic sizes the
            # division is kept as a dedicated symbol to stay in the
            # Sym ring (Figure 7 prints it exactly like this).
            if self.symbolic:
                per_lookup = self.lev + sym(
                    f"lea/||{self._abbrev(index.root_entity)}||"
                )
            else:
                heads = root_size.tuples if root_size.tuples else 1.0
                per_lookup = self.lev + self.lea / max(1.0, heads)
            formula = input_size.tuples * per_lookup
            tuples = self._scaled_tuples(node, input_size, env)
            _label, size = self._emit(f"PIJ[{node.path_name}]", formula, tuples)
            return size
        if isinstance(node, EJ):
            left_size = self.visit(node.left, env)
            right_size = self._operand_size(node.right, env)
            formula = left_size.pages * self.pr + left_size.tuples * (
                right_size.pages * (self.pr + self.ev)
            )
            tuples = self._join_tuples(node, left_size, right_size, env)
            _label, size = self._emit(f"EJ[{node.predicate!r}]", formula, tuples)
            return size
        if isinstance(node, UnionOp):
            left_size = self.visit(node.left, env)
            right_size = self.visit(node.right, env)
            return Size(
                left_size.pages + right_size.pages,
                left_size.tuples + right_size.tuples,
            )
        if isinstance(node, Fix):
            return self._visit_fix(node, env)
        if isinstance(node, Materialize):
            input_size = self.visit(node.child, env)
            formula = input_size.pages * self.pr
            _label, size = self._emit(
                f"Mat[{node.name}]", formula, input_size.tuples
            )
            return size
        raise CostModelError(f"cannot cost node {type(node).__name__}")

    def _operand_size(self, node: PlanNode, env: Dict[str, Size]) -> Size:
        """Size of an EJ inner operand.

        A bare entity (or recursion reference) contributes its size
        without a row of its own — its access cost is embedded in the
        EJ formula, as in Figure 7's T1/T13 rows.  A composite inner
        operand is visited normally (it gets its own rows) and its
        output size feeds the join formula."""
        if isinstance(node, (EntityLeaf, TempLeaf)):
            return self._entity_size(node.entity)
        if isinstance(node, RecLeaf):
            if node.name not in env:
                raise CostModelError(
                    f"recursion reference {node.name!r} outside its Fix"
                )
            return env[node.name]
        return self.visit(node, env)

    def _visit_fix(self, node: Fix, env: Dict[str, Size]) -> Size:
        from repro.engine.fixpoint import partition_parts

        base_parts, recursive_parts = partition_parts(node)

        outer_section = self._section
        base_total: Value = 0.0
        base_tuples: Value = 0.0
        base_pages: Value = 0.0
        self._section = "fix-base"
        for part in base_parts:
            mark = len(self.rows)
            part_size = self.visit(part, env)
            base_tuples = base_tuples + part_size.tuples
            base_pages = base_pages + part_size.pages
            for row in self.rows[mark:]:
                base_total = base_total + row.formula

        inner = dict(env)
        if self.symbolic:
            delta_name = f"{self._abbrev_fix(node)}_i"
            inner[node.name] = Size(
                sym(f"|{delta_name}|"), sym(f"||{delta_name}||")
            )
        elif self.model.identity_sizes:
            # Sketch discipline: the delta keeps the base size forever.
            inner[node.name] = Size(base_pages, base_tuples)
        else:
            estimate = self.model.estimator.estimate_fix(node, {})
            deltas = estimate.deltas or [0.0]
            mean_delta = sum(deltas) / len(deltas)
            inner[node.name] = Size(_pages_of(mean_delta), mean_delta)

        recursive_total: Value = 0.0
        self._section = "fix-rec"
        for part in recursive_parts:
            mark = len(self.rows)
            self.visit(part, inner)
            for row in self.rows[mark:]:
                recursive_total = recursive_total + row.formula
        self._section = outer_section

        if self.symbolic:
            iterations = sym(f"n_{self._fix_ordinal()}")
            formula = base_total + (iterations - 1) * recursive_total
            tuples: Value = sym(f"||{self._abbrev_fix(node)}||")
        else:
            if self.model.identity_sizes:
                iterations_n, _decays = self.model.estimator._iteration_schedule(
                    node
                )
                iterations_n = max(1, iterations_n)
                tuples = _as_number(base_tuples) * iterations_n
            else:
                estimate = self.model.estimator.estimate_fix(node, {})
                iterations_n = max(1, len(estimate.deltas or [1]))
                tuples = estimate.tuples
            formula = base_total + (iterations_n - 1) * recursive_total
        _label, size = self._emit(f"Fix[{node.name}]", formula, tuples)
        return size

    _fix_count = 0

    def _fix_ordinal(self) -> int:
        self._fix_count += 1
        return self._fix_count

    def _abbrev_fix(self, node: Fix) -> str:
        return self.abbreviations.get(node.name, node.name)

    # -- numeric cardinalities ---------------------------------------------------------

    def _filtered_tuples(
        self, node: Sel, input_size: Size, env: Dict[str, Size]
    ) -> Value:
        if self.symbolic or self.model.identity_sizes:
            return input_size.tuples
        varmap = self._varmap(node.child, env)
        selectivity = self.model.estimator.predicate_selectivity(
            node.predicate, varmap
        )
        return _as_number(input_size.tuples) * selectivity

    def _scaled_tuples(self, node, input_size: Size, env: Dict[str, Size]) -> Value:
        if self.symbolic or self.model.identity_sizes:
            return input_size.tuples
        if isinstance(node, IJ):
            varmap = self._varmap(node.child, env)
            fanout = self.model.estimator.path_fanout(node.source, varmap)
            return _as_number(input_size.tuples) * fanout
        if isinstance(node, PIJ):
            index = self.model.physical.find_path_index(node.attributes)
            stats = self.model.physical.statistics
            heads = max(1, stats.instances(index.root_entity)) if index else 1
            per_head = (index.entry_count / heads) if index else 1.0
            return _as_number(input_size.tuples) * per_head
        return input_size.tuples

    def _join_tuples(
        self, node: EJ, left: Size, right: Size, env: Dict[str, Size]
    ) -> Value:
        if self.symbolic or self.model.identity_sizes:
            return left.tuples
        left_varmap = self._varmap(node.left, env)
        right_varmap = self._varmap(node.right, env)
        selectivity = self.model.estimator.predicate_selectivity(
            node.predicate, {**left_varmap, **right_varmap}
        )
        return (
            _as_number(left.tuples) * _as_number(right.tuples) * selectivity
        )

    def _varmap(self, node: PlanNode, env: Dict[str, Size]):
        delta_env = {
            name: (_as_number(size.tuples), TupleShape())
            for name, size in env.items()
            if not isinstance(size.tuples, Sym)
        }
        try:
            return self.model.estimator.estimate(node, delta_env).varmap
        except Exception:
            return {}


def _pages_of(tuples: Value, records_per_page: int = 20) -> Value:
    if isinstance(tuples, Sym):
        return tuples
    return max(1.0, float(tuples) / records_per_page)


def _as_number(value: Value) -> float:
    if isinstance(value, Sym):
        raise CostModelError("expected a numeric size")
    return float(value)
