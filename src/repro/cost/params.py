"""Cost-model parameters.

The detailed model (Figure 5 + the Section 3.2 basic operations) is
parameterized by unit costs; the simplified model of Section 4.6 uses
the paper's four constants ``pr``, ``ev``, ``lea``, ``lev``.  Defaults
are chosen so one physical page read costs 1.0 and CPU work is an
order of magnitude cheaper — the classic I/O-dominant regime of
1992-era cost models (and of the simulator, whose measured cost uses
the same weights).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostParameters", "SimplifiedParameters"]


@dataclass
class CostParameters:
    """Unit costs and environment knobs for the detailed model."""

    #: Cost of one physical page read (``pr`` in the paper's sketch).
    page_read: float = 1.0
    #: CPU cost of evaluating one predicate conjunct on one record.
    eval_per_tuple: float = 0.02
    #: CPU cost of producing one output tuple (projection etc.).
    tuple_cpu: float = 0.002
    #: Cost of one index page access (B+-tree node touch).
    index_page: float = 1.0
    #: Buffer capacity assumed by the model, in pages.  The model uses
    #: it to discount repeated accesses to small entities ("some of the
    #: needed data are already in main memory", Section 3.2 footnote).
    buffer_pages: int = 256
    #: Records per page assumed for temporaries whose layout is not yet
    #: known.
    temp_records_per_page: int = 20
    #: Default iteration count for fixpoints whose recursion statistics
    #: are unavailable.
    default_fix_iterations: int = 8
    #: Default per-iteration delta decay when chain statistics are
    #: unavailable (fraction of the frontier surviving one iteration).
    default_delta_decay: float = 0.8
    #: Worker threads the engine devotes to one fixpoint.  At 1 (the
    #: default) the Fix formula is the paper's serial sum; above 1 the
    #: parallel-Fix variant divides each iteration's cost by the
    #: effective worker count (capped by that iteration's delta size)
    #: and adds the partition/merge term below.
    parallelism: int = 1
    #: CPU cost per delta tuple for hash-partitioning the delta and
    #: merging worker results through the striped seen-set.
    parallel_overhead: float = 0.001
    #: Bindings per batch the engine's operators exchange.  Every
    #: operator pays the per-batch overhead below once per
    #: ``ceil(tuples / batch_size)`` emitted batches, so plan costs
    #: stay honest at any batch size (at 1 the term degenerates to a
    #: per-tuple pipeline charge, the tuple-at-a-time regime).  Must
    #: mirror :data:`repro.engine.batch.DEFAULT_BATCH_SIZE` (kept as a
    #: literal here — the engine package transitively imports this
    #: module, so importing the constant would be circular); a test
    #: pins the two together.
    batch_size: int = 256
    #: CPU cost of emitting one batch: a generator resumption, a
    #: cancellation poll and a metering probe.  Small relative to
    #: ``eval_per_tuple`` so operator-choice comparisons (index vs
    #: scan, push vs no-push) are not perturbed.
    batch_overhead: float = 0.0005
    #: CPU cost of one column touch under the columnar operator ABI:
    #: each operator reads only the columns its predicate / output
    #: expressions / join path actually reference, and is charged this
    #: per referenced column per input tuple (the engine meters the
    #: same product as ``metrics.column_touches``, layout-invariantly,
    #: so calibration can fit this weight exactly like
    #: ``batch_overhead``).  Small relative to ``eval_per_tuple`` so
    #: operator-choice comparisons are not perturbed.
    column_touch: float = 0.0002
    #: Shard fan-out the engine devotes to one fixpoint.  At 1 (the
    #: default) every distributed term below is inert and the Fix
    #: formula is exactly the serial (or parallel) sum; above 1 the
    #: distributed-Fix variant divides each round across shards, adds
    #: the network terms for both exchange legs and applies the skew
    #: multiplier (see :mod:`repro.cost.distributed`).
    shards: int = 1
    #: Network cost of moving one tuple through the delta exchange
    #: (one leg); the ``alpha`` term of the mongodb-d4 decomposition.
    network_per_tuple: float = 0.005
    #: Fixed per-shard per-exchange frame cost (scatter or gather
    #: latency), charged once per shard per leg.
    network_per_round: float = 0.05
    #: Expected partition imbalance (max shard load / mean shard load,
    #: >= 1.0); the ``gamma`` term — a barrier round is gated by its
    #: most loaded shard.
    shard_skew: float = 1.0


@dataclass
class SimplifiedParameters:
    """The Section 4.6 constants.

    ``access_cost(Ci, P) = |Ci| * pr``, ``eval_cost = ev``,
    ``nbtuples(Ci, P) = ||Ci||``, ``nbpages(Ci, P) = |Ci|``,
    ``access_cost(Ci, Cj) = pr``, ``nbleaves = lea``,
    ``nblevels = lev`` — i.e. no selectivity discount, no clustering,
    no materialization, indices fixed-shape.
    """

    pr: float = 1.0
    ev: float = 0.1
    lea: float = 50.0
    lev: float = 3.0
