"""Re-costing an existing processing tree without re-searching.

The optimizer's search produces a PT costed against the statistics in
force at optimization time.  A serving layer that caches PTs needs the
converse operation: given an already-chosen PT and the *current*
physical schema/statistics, what would this plan cost now?  That is a
single bottom-up pass of the Figure 5 formulas — no rewrite, no
generatePT enumeration, no transformPT candidates — so it is cheap
enough to run on every cache hit and drive cost-drift invalidation.
"""

from __future__ import annotations

from typing import Optional

from repro.cost.model import CostReport, DetailedCostModel
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import PlanNode

__all__ = ["recost_plan", "recost_report"]


def recost_plan(
    plan: PlanNode,
    physical: PhysicalSchema,
    cost_model: Optional[DetailedCostModel] = None,
    refresh_stats: bool = False,
) -> float:
    """Cost ``plan`` under the current statistics of ``physical``.

    ``refresh_stats=True`` forces an ANALYZE-style statistics
    recollection first (use after bulk-loading data); otherwise the
    schema's current (lazily collected) statistics are used.
    """
    if refresh_stats:
        physical.refresh_statistics()
    model = cost_model or DetailedCostModel(physical)
    return model.cost(plan)


def recost_report(
    plan: PlanNode,
    physical: PhysicalSchema,
    refresh_stats: bool = False,
) -> CostReport:
    """Like :func:`recost_plan` but returns the per-node breakdown."""
    if refresh_stats:
        physical.refresh_statistics()
    return DetailedCostModel(physical).report(plan)
