"""The detailed cost model (Section 3.2, Figure 5).

Implements the paper's per-node cost formulas over real statistics:

* ``Sel(C)``  = access_cost(C, selpred) + nbpages * eval_cost
* ``EJ(Ci,Cj)`` = access(Ci) + nbtuples(Ci) * (access(Cj) + nbpages(Cj)*eval)
  (nested-loop / index-join variants)
* ``IJ(Ci,Cj)`` = access(Ci) + ||Ci|| * access_cost(Ci, Cj)
* ``PIJ``    = ||C|| * (nblevels + nbleaves / ||C1||)
* ``Fix(T,P)`` = Σ_i cost(Exp(T_i)) over semi-naive iterations
* ``cost(PT)`` = cost(N) + Σ cost(child_i)

``access_cost(Ci, Cj)`` accounts for clustering (a sub-object on the
owner's page costs nothing extra) and buffer residency ("some of the
needed data are already in main memory", the Section 3.2 footnote):
repeated random dereferences into an entity that fits in the buffer pay
for each page at most once.

The model prices I/O in page reads and CPU in predicate/tuple
evaluations using :class:`~repro.cost.params.CostParameters`, the same
units the engine's measured cost uses — so estimates and measurements
are directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CostModelError
from repro.cost.cardinality import (
    CardinalityEstimator,
    NodeEstimate,
    TupleShape,
    VarInfo,
)
from repro.cost.params import CostParameters
from repro.physical.schema import PhysicalSchema
from repro.plans.nodes import (
    EJ,
    IJ,
    INDEX_JOIN,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)
from repro.querygraph.graph import OutputSpec
from repro.querygraph.predicates import (
    And,
    Comparison,
    Expr,
    FunctionApp,
    Not,
    Or,
    PathRef,
    Predicate,
    TruePredicate,
)

__all__ = ["CostReport", "CapturedEstimate", "DetailedCostModel"]

#: Fallback selectivity for a path-terminal equality whose value
#: frequencies were not trackable.
DEFAULT_TERMINAL_SELECTIVITY = 0.1


@dataclass
class CostReport:
    """Total and per-node cost of a plan."""

    total: float
    io: float
    cpu: float
    rows: List[Tuple[str, float]] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"CostReport(total={self.total:.2f}, io={self.io:.2f}, cpu={self.cpu:.2f})"


@dataclass
class CapturedEstimate:
    """Per-node estimate accumulated by :meth:`annotated_report`.

    A node inside a ``Fix`` body is costed once per predicted
    semi-naive iteration; ``cost`` and ``tuples`` sum over the visits,
    matching the engine's accumulated per-node actuals."""

    cost: float = 0.0
    tuples: float = 0.0
    visits: int = 0


class DetailedCostModel:
    """Figure 5 over live statistics; see the module docstring."""

    def __init__(
        self,
        physical: PhysicalSchema,
        params: Optional[CostParameters] = None,
    ) -> None:
        self.physical = physical
        self.params = params or CostParameters()
        self.estimator = CardinalityEstimator(physical, self.params)
        self.stats = physical.statistics
        #: When set (by :meth:`annotated_report`), ``_cost`` records a
        #: :class:`CapturedEstimate` per node identity as it recurses.
        self._capture: Optional[Dict[int, CapturedEstimate]] = None
        #: Distributed-term decomposition per ``Fix`` node identity
        #: (``id(node)``), refreshed by every :meth:`report`: the
        #: network/disk/skew estimates EXPLAIN ANALYZE lines up against
        #: measured actuals.  Empty unless ``params.shards > 1``.
        self.fix_breakdowns: Dict[int, dict] = {}

    # -- public API ---------------------------------------------------------------

    def cost(
        self,
        plan: PlanNode,
        delta_env: Optional[Dict[str, Tuple[float, TupleShape]]] = None,
    ) -> float:
        """Total estimated cost of ``plan`` (io + cpu)."""
        return self.report(plan, delta_env).total

    def report(
        self,
        plan: PlanNode,
        delta_env: Optional[Dict[str, Tuple[float, TupleShape]]] = None,
    ) -> CostReport:
        """Cost a plan; ``delta_env`` supplies delta cardinalities when
        the plan is a fixpoint-body fragment containing RecLeaf nodes
        (used by the optimizer when generating inside a recursion)."""
        from repro.plans.patterns import consumed_variables

        self._consumed_vars = consumed_variables(plan)
        self.fix_breakdowns = {}
        rows: List[Tuple[str, float]] = []
        io, cpu = self._cost(plan, dict(delta_env or {}), rows)
        return CostReport(io + cpu, io, cpu, rows)

    def annotated_report(
        self,
        plan: PlanNode,
        delta_env: Optional[Dict[str, Tuple[float, TupleShape]]] = None,
    ) -> Tuple[CostReport, Dict[int, CapturedEstimate]]:
        """Cost a plan and capture per-node estimates keyed by node
        identity (``id(node)``) — the substrate of ``EXPLAIN ANALYZE``
        (:mod:`repro.obs.explain`)."""
        self._capture = {}
        try:
            report = self.report(plan, delta_env)
            return report, dict(self._capture)
        finally:
            self._capture = None

    # -- recursion -------------------------------------------------------------------

    def _cost(
        self,
        node: PlanNode,
        env: Dict[str, Tuple[float, TupleShape]],
        rows: List[Tuple[str, float]],
    ) -> Tuple[float, float]:
        io, cpu = self._dispatch(node, env, rows)
        rows.append((node.label(), io + cpu))
        capture = self._capture
        if capture is not None:
            entry = capture.get(id(node))
            if entry is None:
                entry = capture[id(node)] = CapturedEstimate()
            entry.cost += io + cpu
            entry.visits += 1
            try:
                entry.tuples += self.estimator.estimate(node, env).tuples
            except CostModelError:
                pass
        return io, cpu

    def _batch_cost(self, tuples: float) -> float:
        """Per-batch pipeline overhead of emitting ``tuples`` bindings:
        each of the ``ceil(tuples / batch_size)`` batches costs one
        generator resumption + cancellation poll + metering probe
        (``params.batch_overhead``)."""
        if tuples <= 0:
            return 0.0
        batch_size = max(1, self.params.batch_size)
        return math.ceil(tuples / batch_size) * self.params.batch_overhead

    def _column_cost(self, width: float, tuples: float) -> float:
        """Column-touch term of the columnar operator ABI: a node is
        charged ``params.column_touch`` per *referenced* column per
        input tuple — only the columns its predicate, output
        expressions or join path actually read, never the full tuple
        width.  Mirrors ``metrics.column_touches`` exactly (the engine
        meters ``width × input tuples`` layout-invariantly), so the
        weight calibrates from measured runs like ``batch_overhead``.
        """
        if width <= 0 or tuples <= 0:
            return 0.0
        return width * tuples * self.params.column_touch

    def _dispatch(self, node, env, rows) -> Tuple[float, float]:
        params = self.params
        if isinstance(node, (EntityLeaf, TempLeaf)):
            estimate = self.estimator.estimate(node, env)
            io = estimate.pages * params.page_read
            cpu = estimate.tuples * params.tuple_cpu
            cpu += self._batch_cost(estimate.tuples)
            return io, cpu
        if isinstance(node, RecLeaf):
            estimate = self.estimator.estimate(node, env)
            io = estimate.pages * params.page_read
            cpu = estimate.tuples * params.tuple_cpu
            cpu += self._batch_cost(estimate.tuples)
            return io, cpu
        if isinstance(node, Sel):
            indexed = self._indexed_selection(node, env)
            if indexed is not None:
                return indexed
            child_io, child_cpu = self._cost(node.child, env, rows)
            child_est = self.estimator.estimate(node.child, env)
            pred_io, pred_cpu = self._predicate_cost(
                node.predicate, child_est.tuples, child_est.varmap
            )
            # A filter emits (at most) one batch per consumed batch and
            # touches only the columns its predicate references.
            pred_cpu += self._batch_cost(child_est.tuples)
            pred_cpu += self._column_cost(
                len(node.predicate.variables()), child_est.tuples
            )
            return child_io + pred_io, child_cpu + pred_cpu
        if isinstance(node, Proj):
            child_io, child_cpu = self._cost(node.child, env, rows)
            child_est = self.estimator.estimate(node.child, env)
            proj_io, proj_cpu = self._projection_cost(
                node.fields, child_est.tuples, child_est.varmap
            )
            proj_cpu += child_est.tuples * params.tuple_cpu
            proj_cpu += self._batch_cost(child_est.tuples)
            touched = set()
            for output_field in node.fields.fields:
                touched |= output_field.expr.variables()
            proj_cpu += self._column_cost(len(touched), child_est.tuples)
            return child_io + proj_io, child_cpu + proj_cpu
        if isinstance(node, IJ):
            return self._cost_ij(node, env, rows)
        if isinstance(node, PIJ):
            return self._cost_pij(node, env, rows)
        if isinstance(node, EJ):
            return self._cost_ej(node, env, rows)
        if isinstance(node, UnionOp):
            left_io, left_cpu = self._cost(node.left, env, rows)
            right_io, right_cpu = self._cost(node.right, env, rows)
            return left_io + right_io, left_cpu + right_cpu
        if isinstance(node, Fix):
            return self._cost_fix(node, env, rows)
        if isinstance(node, Materialize):
            child_io, child_cpu = self._cost(node.child, env, rows)
            estimate = self.estimator.estimate(node, env)
            # Write out and read back the temporary once.
            io = 2.0 * estimate.pages * params.page_read
            cpu = estimate.tuples * params.tuple_cpu
            cpu += self._batch_cost(estimate.tuples)
            return child_io + io, child_cpu + cpu
        raise CostModelError(f"cannot cost node {type(node).__name__}")

    def _indexed_selection(self, node: Sel, env) -> Optional[Tuple[float, float]]:
        """``access_cost(Ci, P)`` through an index: when the selection
        sits directly on an entity and an equality conjunct references
        an indexed attribute, the access descends the B⁺-tree and
        fetches only qualifying records (Section 3.2)."""
        if not isinstance(node.child, EntityLeaf):
            return None
        leaf = node.child
        from repro.querygraph.predicates import Const, conjuncts as split

        best: Optional[Tuple[float, float]] = None
        for conjunct in split(node.predicate):
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            for path_side, const_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not (
                    isinstance(path_side, PathRef)
                    and path_side.var == leaf.var
                    and isinstance(const_side, Const)
                ):
                    continue
                access = self._indexed_access_io(
                    leaf, path_side, const_side.value
                )
                if access is None:
                    continue
                io, matches = access
                # Residual conjuncts are evaluated on the matches only.
                residual = [c for c in split(node.predicate) if c != conjunct]
                weight = 0.0
                for part in residual:
                    part_weight, _part_io = self._predicate_weight(
                        part, {leaf.var: leaf.entity}
                    )
                    weight += part_weight
                cpu = matches * weight * self.params.eval_per_tuple
                cpu += self._batch_cost(matches)
                if best is None or io + cpu < best[0] + best[1]:
                    best = (io, cpu)
        return best

    def _indexed_access_io(
        self, leaf: EntityLeaf, path: PathRef, value: object
    ) -> Optional[Tuple[float, float]]:
        """(io, expected matches) of an index-backed access for
        ``leaf.var.<path> = value``: a selection index for one-hop
        paths, the *reverse* direction of a path index for whole paths
        ([MS86])."""
        if len(path.attrs) == 1:
            index = self.physical.selection_index(leaf.entity, path.attrs[0])
            if index is None:
                return None
            selectivity = self.estimator._value_selectivity(
                leaf.entity, path.attrs[0], value, weighted=False
            )
            matches = self.stats.instances(leaf.entity) * selectivity
            io = index.nblevels * self.params.index_page + self._miss_io(
                matches, leaf.entity
            )
            return io, matches
        path_index = self.physical.path_index(leaf.entity, path.attrs[:-1])
        if (
            path_index is None
            or path_index.terminal_attribute != path.attrs[-1]
        ):
            return None
        resolved = self.estimator._resolve_path(
            path, {leaf.var: leaf.entity}
        )
        terminal_entity = resolved[0] if resolved else None
        terminal_selectivity = DEFAULT_TERMINAL_SELECTIVITY
        if terminal_entity is not None and resolved[1] is not None:
            terminal_selectivity = self.estimator._value_selectivity(
                terminal_entity, resolved[1], value, weighted=True
            )
        matching_entries = path_index.entry_count * terminal_selectivity
        heads = min(
            matching_entries, float(self.stats.instances(leaf.entity))
        )
        io = path_index.nblevels * self.params.index_page + self._miss_io(
            heads, leaf.entity
        )
        return io, heads

    # -- dereference modelling ----------------------------------------------------------

    def _miss_io(self, fetches: float, target_entity: Optional[str]) -> float:
        """Expected physical page reads for ``fetches`` random
        dereferences into ``target_entity`` through the buffer pool."""
        if fetches <= 0:
            return 0.0
        if target_entity is None or not self.physical.has_entity(target_entity):
            return fetches * self.params.page_read
        pages = max(1, self.stats.pages(target_entity))
        buffer_pages = max(1, self.params.buffer_pages)
        if pages <= buffer_pages:
            # Each distinct page is read once; later fetches hit.
            expected_distinct = pages * (1.0 - (1.0 - 1.0 / pages) ** fetches)
            return expected_distinct * self.params.page_read
        hit_ratio = buffer_pages / pages
        return fetches * (1.0 - hit_ratio) * self.params.page_read

    def _deref_cost(
        self,
        fetches: float,
        owner_entity: Optional[str],
        attribute: Optional[str],
        target_entity: Optional[str],
    ) -> float:
        """``access_cost(Ci, Cj)`` × fetches: clustering discount, then
        buffer-aware page misses."""
        if fetches <= 0:
            return 0.0
        clustered = 0.0
        if owner_entity is not None and attribute is not None:
            if self.physical.has_entity(owner_entity):
                clustered = self.stats.clustered_fraction(owner_entity, attribute)
        effective = fetches * (1.0 - clustered)
        return self._miss_io(effective, target_entity)

    # -- predicate / projection costs ------------------------------------------------------

    def _predicate_cost(
        self, predicate: Predicate, tuples: float, varmap: Dict[str, VarInfo]
    ) -> Tuple[float, float]:
        """(io, cpu) of evaluating ``predicate`` on ``tuples`` bindings.

        CPU: one eval unit per comparison per tuple, weighted by any
        method invocations.  I/O: paths that cross reference attributes
        dereference objects — this is what makes an object-oriented
        selection potentially *expensive* and is the heart of the
        paper's argument."""
        weight, hop_io_per_tuple = self._predicate_weight(predicate, varmap)
        cpu = tuples * weight * self.params.eval_per_tuple
        io = tuples * hop_io_per_tuple
        return io, cpu

    def _predicate_weight(
        self, predicate: Predicate, varmap: Dict[str, VarInfo]
    ) -> Tuple[float, float]:
        if isinstance(predicate, TruePredicate):
            return 0.0, 0.0
        if isinstance(predicate, (And, Or)):
            weight, io = 0.0, 0.0
            for part in predicate.parts:
                part_weight, part_io = self._predicate_weight(part, varmap)
                weight += part_weight
                io += part_io
            return weight, io
        if isinstance(predicate, Not):
            return self._predicate_weight(predicate.part, varmap)
        if isinstance(predicate, Comparison):
            weight, io = 1.0, 0.0
            for expr in (predicate.left, predicate.right):
                expr_weight, expr_io = self._expr_weight(expr, varmap)
                weight += expr_weight
                io += expr_io
            return weight, io
        return 1.0, 0.0

    def _expr_weight(
        self, expr: Expr, varmap: Dict[str, VarInfo]
    ) -> Tuple[float, float]:
        if isinstance(expr, FunctionApp):
            weight, io = expr.eval_weight, 0.0
            for arg in expr.args:
                arg_weight, arg_io = self._expr_weight(arg, varmap)
                weight += arg_weight
                io += arg_io
            return weight, io
        if isinstance(expr, PathRef):
            return self._path_weight(expr, varmap)
        return 0.0, 0.0

    def _path_weight(
        self, path: PathRef, varmap: Dict[str, VarInfo]
    ) -> Tuple[float, float]:
        """Method weight plus per-tuple dereference I/O of a path."""
        if len(path.attrs) <= 1:
            weight = self._method_weight(path, varmap)
            return weight, 0.0
        # Multi-hop path: each intermediate reference hop dereferences
        # an object (expected fanout expands the count).
        resolved = self.estimator._resolve_path(path, varmap)
        hops = len(path.attrs) - 1
        fanout = 1.0
        if resolved is not None:
            _entity, _attr, fanout = resolved
        io = hops * max(1.0, fanout) * self.params.page_read * 0.5
        # 0.5: on average half the dereferences hit already-buffered
        # pages; the exact discount needs the target entity per hop,
        # which _deref_cost models for IJ nodes — predicates with long
        # paths should have been translated into IJ chains anyway.
        return self._method_weight(path, varmap), io

    def _method_weight(
        self, path: PathRef, varmap: Dict[str, VarInfo]
    ) -> float:
        if not path.attrs or self.physical.catalog is None:
            return 0.0
        resolved = self.estimator._resolve_path(path, varmap)
        if resolved is None:
            return 0.0
        entity, final_attr, _fanout = resolved
        if entity is None or final_attr is None:
            return 0.0
        conceptual = self.estimator._conceptual_of(entity)
        if conceptual is None:
            return 0.0
        method = self.physical.catalog.method(conceptual, final_attr)
        if method is None:
            return 0.0
        return method.eval_weight

    def _projection_cost(
        self, fields: OutputSpec, tuples: float, varmap: Dict[str, VarInfo]
    ) -> Tuple[float, float]:
        io, cpu = 0.0, 0.0
        for output_field in fields.fields:
            weight, hop_io = self._expr_weight(output_field.expr, varmap)
            cpu += tuples * weight * self.params.eval_per_tuple
            io += tuples * hop_io
        return io, cpu

    # -- join operators ------------------------------------------------------------------------

    def _cost_ij(self, node: IJ, env, rows) -> Tuple[float, float]:
        child_io, child_cpu = self._cost(node.child, env, rows)
        child_est = self.estimator.estimate(node.child, env)
        out_est = self.estimator.estimate(node, env)
        owner_entity, attribute = self._ij_owner(node, child_est.varmap)
        fetches = max(out_est.tuples, child_est.tuples)
        io = self._deref_cost(
            fetches, owner_entity, attribute, node.target.entity
        )
        cpu = out_est.tuples * self.params.tuple_cpu
        cpu += self._batch_cost(out_est.tuples)
        # The join walks exactly one column: its source path head.
        cpu += self._column_cost(1.0, child_est.tuples)
        return child_io + io, child_cpu + cpu

    def _ij_owner(
        self, node: IJ, varmap: Dict[str, VarInfo]
    ) -> Tuple[Optional[str], Optional[str]]:
        """The entity *owning* the dereferenced attribute (whose
        clustering with the target discounts ``access_cost(Ci, Cj)``)
        and the attribute name."""
        attrs = node.source.attrs
        attribute = attrs[-1]
        if len(attrs) == 1:
            info = varmap.get(node.source.var)
            owner = info if isinstance(info, str) else None
            if owner is None and isinstance(info, TupleShape):
                owner = info.fields.get(attribute)
                # A tuple field holding oids has no own storage; the
                # clustering question does not apply.
                return None, None
            return owner, attribute
        prefix = PathRef(node.source.var, attrs[:-1])
        resolved = self.estimator._resolve_path(prefix, varmap)
        if resolved is None:
            return None, attribute
        entity, final_attr, _fanout = resolved
        if final_attr is not None:
            return None, attribute
        return entity, attribute

    def _cost_pij(self, node: PIJ, env, rows) -> Tuple[float, float]:
        child_io, child_cpu = self._cost(node.child, env, rows)
        child_est = self.estimator.estimate(node.child, env)
        out_est = self.estimator.estimate(node, env)
        index = self.physical.find_path_index(node.attributes)
        if index is None:
            raise CostModelError(
                f"no path index on {node.path_name!r} to cost a PIJ node"
            )
        heads = max(1, self.stats.instances(index.root_entity))
        per_lookup = index.nblevels + index.nbleaves / heads
        io = child_est.tuples * per_lookup * self.params.index_page
        # Fetch only the referenced objects somebody consumes (the
        # engine skips unconsumed intermediates the same way).
        consumed = getattr(self, "_consumed_vars", None)
        for target, out_var in zip(node.targets, node.out_vars):
            if consumed is not None and out_var not in consumed:
                continue
            io += self._miss_io(out_est.tuples, target.entity)
        cpu = out_est.tuples * self.params.tuple_cpu
        cpu += self._batch_cost(out_est.tuples)
        # The index lookup reads one column: the path's head variable.
        cpu += self._column_cost(1.0, child_est.tuples)
        return child_io + io, child_cpu + cpu

    def _cost_ej(self, node: EJ, env, rows) -> Tuple[float, float]:
        left_io, left_cpu = self._cost(node.left, env, rows)
        left_est = self.estimator.estimate(node.left, env)
        right_est = self.estimator.estimate(node.right, env)
        out_est = self.estimator.estimate(node, env)
        pred_weight, pred_hop_io = self._predicate_weight(
            node.predicate, {**left_est.varmap, **right_est.varmap}
        )
        if node.algorithm == INDEX_JOIN:
            index_entity, index_levels = self._index_join_params(node)
            matches = out_est.tuples / max(1.0, left_est.tuples)
            io = left_est.tuples * index_levels * self.params.index_page
            io += self._miss_io(out_est.tuples, index_entity)
            cpu = (
                left_est.tuples
                * matches
                * pred_weight
                * self.params.eval_per_tuple
            )
            cpu += self._batch_cost(out_est.tuples)
            return left_io + io, left_cpu + cpu
        # Nested loop: Figure 5 charges one inner access per outer
        # tuple; the buffer absorbs re-reads of an inner that fits
        # (the engine behaves the same way), so the physical charge is
        # one full inner scan when it fits and a full re-scan per outer
        # tuple when it does not.
        inner_rows: List[Tuple[str, float]] = []
        inner_io, inner_cpu = self._cost(node.right, env, inner_rows)
        outer_tuples = max(0.0, left_est.tuples)
        buffer_pages = max(1, self.params.buffer_pages)
        if right_est.pages <= buffer_pages:
            rescan_io = inner_io
        else:
            rescan_io = inner_io * max(1.0, outer_tuples)
        evals = outer_tuples * right_est.tuples
        cpu = (
            evals * pred_weight * self.params.eval_per_tuple
            + inner_cpu * max(1.0, outer_tuples)
        )
        cpu += self._batch_cost(out_est.tuples)
        io = rescan_io + evals * pred_hop_io
        return left_io + io, left_cpu + cpu

    def _index_join_params(self, node: EJ) -> Tuple[Optional[str], float]:
        right = node.right
        leaf: Optional[EntityLeaf] = None
        if isinstance(right, EntityLeaf):
            leaf = right
        elif isinstance(right, Sel) and isinstance(right.child, EntityLeaf):
            leaf = right.child
        if leaf is None:
            return None, 2.0
        for conjunct_attr in self._indexed_attrs(leaf):
            index = self.physical.selection_index(leaf.entity, conjunct_attr)
            if index is not None:
                return leaf.entity, float(index.nblevels)
        return leaf.entity, 2.0

    def _indexed_attrs(self, leaf: EntityLeaf) -> List[str]:
        return [
            index.attribute
            for index in self.physical.selection_indices()
            if index.entity == leaf.entity
        ]

    # -- fixpoint --------------------------------------------------------------------------------

    def _cost_fix(self, node: Fix, env, rows) -> Tuple[float, float]:
        """Figure 5: cost(Fix) = Σ_i cost(Exp(T_i)).

        The base parts are costed once; the recursive parts are costed
        once per estimated semi-naive iteration against that
        iteration's delta size.

        With ``params.parallelism > 1`` each round's cost is divided by
        the effective worker count for that round (workers cannot
        exceed the number of base parts in the base round, nor the
        delta tuples available to partition in a recursive round) plus
        a per-delta-tuple partition/merge term — keeping transformPT's
        push-vs-no-push comparison honest under a parallel engine: a
        pushed selection shrinks the deltas, which shrinks both the
        divided per-round cost *and* the partition overhead.

        With ``params.shards > 1`` the distributed-Fix variant applies
        instead: each round's serial cost is priced both shard-local
        (no exchange, pay the configured skew) and repartitioned
        (re-scatter the delta, run balanced) and the cheaper strategy
        is charged, plus the gather leg's network cost for the tuples
        the round produces (see :mod:`repro.cost.distributed`).  Every
        distributed term is gated behind ``shards > 1``, so at one
        shard this is bit-for-bit the serial (or parallel) formula.
        """
        from repro.cost.distributed import (
            exchange_cost,
            round_strategy_breakdown,
        )
        from repro.engine.fixpoint import partition_parts

        base_parts, recursive_parts = partition_parts(node)
        fix_est = self.estimator.estimate_fix(node, env)
        shape = self.estimator._fix_shape(node, env)
        body_shape = TupleShape(
            dict(shape.fields), frozenset(node.invariant_fields)
        )
        parallelism = max(1, self.params.parallelism)
        shards = max(1, self.params.shards)
        distributed = shards > 1

        io, cpu = 0.0, 0.0
        base_io, base_cpu = 0.0, 0.0
        for part in base_parts:
            part_io, part_cpu = self._cost(part, env, rows)
            base_io += part_io
            base_cpu += part_cpu
        deltas = fix_est.deltas or []
        breakdown: Optional[dict] = None
        if distributed:
            base_workers = min(shards, len(base_parts))
            io += base_io / base_workers
            cpu += base_cpu / base_workers
            # Gather leg of the base round: the whole first frontier
            # crosses the exchange back to the coordinator.
            first_delta = deltas[0] if deltas else fix_est.tuples
            base_gather = exchange_cost(first_delta, shards, self.params)
            io += base_gather
            breakdown = {
                "shards": shards,
                "rounds": 1,
                "exchange_tuples": first_delta,
                "exchange_frames": float(shards),
                "network": base_gather,
                "disk_base": base_io / base_workers,
                "skew": max(1.0, self.params.shard_skew),
            }
        else:
            base_workers = min(parallelism, len(base_parts))
            io += base_io / base_workers
            cpu += base_cpu / base_workers

        def round_cost(delta: float, produced: float) -> None:
            nonlocal io, cpu
            inner_env = dict(env)
            inner_env[node.name] = (delta, body_shape)
            round_io, round_cpu = 0.0, 0.0
            for part in recursive_parts:
                part_rows: List[Tuple[str, float]] = []
                part_io, part_cpu = self._cost(part, inner_env, part_rows)
                round_io += part_io
                round_cpu += part_cpu
            if distributed:
                dist = round_strategy_breakdown(
                    round_io, round_cpu, delta, shards, self.params
                )
                io += dist["io"]
                cpu += dist["cpu"]
                # Gather leg: the round's fresh tuples travel back.
                gather = exchange_cost(produced, shards, self.params)
                io += gather
                # Coordinator-side dedup/merge of the gathered tuples.
                cpu += delta * self.params.parallel_overhead
                # Both legs of the round's exchange, for est-vs-act.
                breakdown["rounds"] += 1
                breakdown["exchange_tuples"] += delta + produced
                breakdown["exchange_frames"] += 2.0 * shards
                breakdown["network"] += dist["network"] + gather
                breakdown["disk_base"] += dist["scan_io"]
                return
            workers = min(parallelism, max(1.0, delta))
            io += round_io / workers
            cpu += round_cpu / workers
            if parallelism > 1:
                cpu += delta * self.params.parallel_overhead

        for index, delta in enumerate(
            deltas[:-1] if len(deltas) > 1 else deltas[:0]
        ):
            produced = deltas[index + 1] if index + 1 < len(deltas) else 0.0
            round_cost(delta, produced)
        # One extra empty-delta round detects the fixpoint; charge the
        # final delta's scan of the recursive parts as well.
        if len(deltas) > 1:
            round_cost(deltas[-1], 0.0)
        # Materializing and deduplicating the accumulated result (the
        # striped seen-set merge under parallelism, the coordinator
        # seen-set under sharding), plus re-emitting it in batches from
        # the temporary.
        cpu += fix_est.tuples * self.params.tuple_cpu
        cpu += self._batch_cost(fix_est.tuples)
        if distributed or parallelism > 1:
            cpu += fix_est.tuples * self.params.parallel_overhead
        if breakdown is not None:
            breakdown["disk"] = breakdown["disk_base"] * breakdown["skew"]
            self.fix_breakdowns[id(node)] = breakdown
        return io, cpu
