"""Cost models (Section 3.2, Figure 5, Figure 7 of the paper)."""

from repro.cost.calibrate import (
    CalibratedWeights,
    ProbeResult,
    calibrate,
    collect_probes,
    fit_weights,
)
from repro.cost.cardinality import (
    CardinalityEstimator,
    NodeEstimate,
    TupleShape,
)
from repro.cost.model import CostReport, DetailedCostModel
from repro.cost.params import CostParameters, SimplifiedParameters
from repro.cost.recost import recost_plan, recost_report
from repro.cost.simplified import CostRow, SimplifiedCostModel, Size
from repro.cost.symbolic import Sym, as_sym, sym

__all__ = [
    "CalibratedWeights",
    "ProbeResult",
    "calibrate",
    "collect_probes",
    "fit_weights",
    "CardinalityEstimator",
    "NodeEstimate",
    "TupleShape",
    "CostReport",
    "DetailedCostModel",
    "CostParameters",
    "SimplifiedParameters",
    "recost_plan",
    "recost_report",
    "CostRow",
    "SimplifiedCostModel",
    "Size",
    "Sym",
    "as_sym",
    "sym",
]
