"""Shard-aware cost terms: network, disk and skew.

Follows the decomposition of the mongodb-d4 cost model —
``cost = alpha * networkCost + beta * diskCost + gamma * skewCost`` —
mapped onto this model's units: the network term charges
``network_per_tuple`` per exchanged tuple plus ``network_per_round``
per shard per exchange (frame latency), the disk term is the ordinary
page-read cost divided across the shards that actually scan, and the
skew term is a multiplier — the *most loaded* shard gates a barrier
round, so a round's wall cost is its mean per-shard cost times
``max/mean`` partition imbalance.

Two join strategies are costed for a partitioned probe side:

* **shard-local** — tuples are already placed where their join
  partners live (the build side is replicated or co-hashed), so no
  tuples move; the round pays the observed (or assumed) skew.
* **repartition** — every probe tuple is re-hashed across the wire
  first; the exchange is paid once per tuple, after which the load is
  balanced (skew 1).

The distributed-Fix variant in :mod:`repro.cost.model` prices every
semi-naive round both ways and takes the cheaper — the cost-controlled
optimizer therefore picks shard-local plans when partitions are
balanced and repartitioning plans when skew would dominate.  Every
term in this module is gated behind ``shards > 1``; at one shard the
Fix formula reduces to the paper's exact serial sum.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.cost.params import CostParameters

__all__ = [
    "skew_factor",
    "exchange_cost",
    "sharded_scan_cost",
    "shard_local_join_cost",
    "repartition_join_cost",
    "choose_join_strategy",
    "choose_round_strategy",
    "round_strategy_breakdown",
]

SHARD_LOCAL = "shard_local"
REPARTITION = "repartition"


def skew_factor(partition_sizes: Sequence[float]) -> float:
    """Partition imbalance as ``max / mean`` (>= 1.0; 1.0 means
    perfectly balanced or no data)."""
    sizes = [max(0.0, float(size)) for size in partition_sizes]
    if not sizes:
        return 1.0
    mean = sum(sizes) / len(sizes)
    if mean <= 0.0:
        return 1.0
    return max(1.0, max(sizes) / mean)


def exchange_cost(tuples: float, shards: int, params: CostParameters) -> float:
    """Network cost of moving ``tuples`` through one scatter or gather
    leg across ``shards`` shards (per-tuple transfer + per-shard frame
    latency)."""
    return (
        max(0.0, tuples) * params.network_per_tuple
        + max(1, shards) * params.network_per_round
    )


def sharded_scan_cost(
    pages: float,
    shards: int,
    params: CostParameters,
    partitioned: bool = False,
    key_match: bool = False,
    partition_sizes: Sequence[float] = (),
) -> float:
    """Shard-key-aware scan cost.

    * replicated extent (``partitioned=False``): one shard scans it in
      full — replication buys locality, not scan division;
    * partitioned + equality on the shard key (``key_match=True``):
      the scan routes to the single owning shard (``pages / shards``
      plus one frame);
    * partitioned, no usable key: scatter to all shards and wait for
      the slowest — divided pages times the partition skew, plus one
      frame per shard.
    """
    shards = max(1, shards)
    disk = max(0.0, pages) * params.page_read
    if shards == 1 or not partitioned:
        return disk
    if key_match:
        return disk / shards + params.network_per_round
    skew = (
        skew_factor(partition_sizes)
        if partition_sizes
        else max(1.0, params.shard_skew)
    )
    return disk * skew / shards + shards * params.network_per_round


def shard_local_join_cost(
    partition_sizes: Sequence[float],
    per_tuple_cost: float,
    params: CostParameters,
) -> float:
    """Cost of probing where the tuples already live: no exchange, but
    the barrier waits for the most loaded shard."""
    total = sum(max(0.0, size) for size in partition_sizes)
    shards = max(1, len(partition_sizes))
    return (total / shards) * skew_factor(partition_sizes) * per_tuple_cost


def repartition_join_cost(
    partition_sizes: Sequence[float],
    per_tuple_cost: float,
    params: CostParameters,
) -> float:
    """Cost of re-hashing the probe side first: every tuple crosses the
    exchange once, then the load is balanced."""
    total = sum(max(0.0, size) for size in partition_sizes)
    shards = max(1, len(partition_sizes))
    return exchange_cost(total, shards, params) + (total / shards) * per_tuple_cost


def choose_join_strategy(
    partition_sizes: Sequence[float],
    per_tuple_cost: float,
    params: CostParameters,
) -> Tuple[str, float]:
    """The cheaper of shard-local and repartition for a probe side with
    the given per-shard partition sizes; returns ``(strategy, cost)``."""
    local = shard_local_join_cost(partition_sizes, per_tuple_cost, params)
    shipped = repartition_join_cost(partition_sizes, per_tuple_cost, params)
    if shipped < local:
        return REPARTITION, shipped
    return SHARD_LOCAL, local


def choose_round_strategy(
    round_io: float,
    round_cpu: float,
    delta: float,
    shards: int,
    params: CostParameters,
) -> Tuple[str, float, float]:
    """Price one semi-naive round's recursive-part work both ways.

    ``round_io``/``round_cpu`` are the serial (one-store) costs of the
    round; ``delta`` is the round's frontier size.  Shard-local keeps
    the delta where the previous round's hash put it (no tuple
    exchange, pay the configured skew); repartition re-scatters the
    delta (pay the exchange, run balanced).  Returns
    ``(strategy, io, cpu)`` for the cheaper one.
    """
    shards = max(1, shards)
    workers = min(float(shards), max(1.0, delta))
    skew = max(1.0, params.shard_skew)
    local_io = round_io * skew / workers
    local_cpu = round_cpu * skew / workers
    shipped_io = round_io / workers + exchange_cost(delta, shards, params)
    shipped_cpu = round_cpu / workers + delta * params.parallel_overhead
    if shipped_io + shipped_cpu < local_io + local_cpu:
        return REPARTITION, shipped_io, shipped_cpu
    return SHARD_LOCAL, local_io, local_cpu


def round_strategy_breakdown(
    round_io: float,
    round_cpu: float,
    delta: float,
    shards: int,
    params: CostParameters,
) -> dict:
    """:func:`choose_round_strategy` plus the mongodb-d4 style term
    decomposition of the chosen strategy — the pieces EXPLAIN ANALYZE
    lines up against measured actuals:

    * ``scan_io`` — the skew-free per-worker disk share;
    * ``network`` — the exchange cost the round pays (0 shard-local);
    * ``skew`` — the imbalance multiplier the round is charged.
    """
    shards = max(1, shards)
    workers = min(float(shards), max(1.0, delta))
    strategy, io, cpu = choose_round_strategy(
        round_io, round_cpu, delta, shards, params
    )
    if strategy == REPARTITION:
        network = exchange_cost(delta, shards, params)
        skew = 1.0
    else:
        network = 0.0
        skew = max(1.0, params.shard_skew)
    return {
        "strategy": strategy,
        "io": io,
        "cpu": cpu,
        "scan_io": round_io / workers,
        "network": network,
        "skew": skew,
    }
