"""A tiny symbolic-expression layer for cost formulas.

Figure 7 of the paper presents plan costs *symbolically* — rows like
``|Cpr|*pr + ||Cpr||*|Inf_i|*(pr+ev)`` over the constants ``pr``,
``ev``, ``lea``, ``lev`` and entity sizes.  To regenerate that table we
let the cost formulas run over symbolic values: :class:`Sym` supports
``+``/``*`` with other Syms and with numbers, simplifies trivially
(0/1 identities, constant folding, term collection), renders in the
paper's notation, and can be numerically evaluated under an assignment.

The same formula code therefore produces either numbers (floats in)
or Figure 7 rows (Syms in).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

__all__ = ["Sym", "sym", "as_sym", "Number"]

Number = Union[int, float]


class Sym:
    """A symbolic arithmetic expression in sum-of-products form.

    Internally: ``terms`` maps a sorted tuple of factor names to a
    numeric coefficient, plus a free ``constant``.  This normal form
    makes equality checks and rendering deterministic.
    """

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Dict[Tuple[str, ...], float]] = None,
        constant: float = 0.0,
    ) -> None:
        self.terms: Dict[Tuple[str, ...], float] = {}
        if terms:
            for key, coefficient in terms.items():
                if coefficient != 0:
                    self.terms[key] = self.terms.get(key, 0.0) + coefficient
        self.constant = float(constant)

    # -- construction -----------------------------------------------------

    @classmethod
    def var(cls, name: str) -> "Sym":
        """The symbolic variable ``name``."""
        return cls({(name,): 1.0})

    @classmethod
    def const(cls, value: Number) -> "Sym":
        """A constant expression."""
        return cls({}, float(value))

    def is_constant(self) -> bool:
        """True when no symbolic term remains."""
        return not self.terms

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: object) -> "Sym":
        other_sym = as_sym(other)
        merged = dict(self.terms)
        for key, coefficient in other_sym.terms.items():
            merged[key] = merged.get(key, 0.0) + coefficient
        merged = {k: c for k, c in merged.items() if c != 0}
        return Sym(merged, self.constant + other_sym.constant)

    __radd__ = __add__

    def __mul__(self, other: object) -> "Sym":
        other_sym = as_sym(other)
        result: Dict[Tuple[str, ...], float] = {}
        constant = self.constant * other_sym.constant
        for key, coefficient in self.terms.items():
            if other_sym.constant != 0:
                merged_key = key
                result[merged_key] = (
                    result.get(merged_key, 0.0) + coefficient * other_sym.constant
                )
        for key, coefficient in other_sym.terms.items():
            if self.constant != 0:
                result[key] = result.get(key, 0.0) + coefficient * self.constant
        for key_a, coeff_a in self.terms.items():
            for key_b, coeff_b in other_sym.terms.items():
                merged_key = tuple(sorted(key_a + key_b))
                result[merged_key] = (
                    result.get(merged_key, 0.0) + coeff_a * coeff_b
                )
        result = {k: c for k, c in result.items() if c != 0}
        return Sym(result, constant)

    __rmul__ = __mul__

    def __sub__(self, other: object) -> "Sym":
        return self + as_sym(other) * -1

    def __rsub__(self, other: object) -> "Sym":
        return as_sym(other) + self * -1

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, assignment: Dict[str, Number]) -> float:
        """Numeric value under an assignment of every variable."""
        total = self.constant
        for key, coefficient in self.terms.items():
            product = coefficient
            for name in key:
                if name not in assignment:
                    raise KeyError(f"no value for symbol {name!r}")
                product *= assignment[name]
            total += product
        return total

    def variables(self) -> List[str]:
        """Sorted names of every symbol occurring in the expression."""
        names = set()
        for key in self.terms:
            names.update(key)
        return sorted(names)

    # -- comparison / rendering ----------------------------------------------------

    def _key(self) -> object:
        return (tuple(sorted(self.terms.items())), self.constant)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            return self.is_constant() and self.constant == other
        return isinstance(other, Sym) and other._key() == self._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        parts: List[str] = []
        for key in sorted(self.terms):
            coefficient = self.terms[key]
            factors = "*".join(key)
            if coefficient == 1:
                parts.append(factors)
            elif coefficient == -1:
                parts.append(f"-{factors}")
            else:
                parts.append(f"{_fmt(coefficient)}*{factors}")
        if self.constant != 0 or not parts:
            parts.append(_fmt(self.constant))
        rendered = " + ".join(parts)
        return rendered.replace("+ -", "- ")


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


def sym(name: str) -> Sym:
    """Shorthand for :meth:`Sym.var`."""
    return Sym.var(name)


def as_sym(value: object) -> Sym:
    """Coerce a number (or Sym) to a :class:`Sym`."""
    if isinstance(value, Sym):
        return value
    if isinstance(value, (int, float)):
        return Sym.const(value)
    raise TypeError(f"cannot coerce {value!r} to Sym")
