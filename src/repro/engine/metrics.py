"""Runtime metrics for plan execution.

The cost model predicts page accesses and predicate evaluations; the
engine counts what actually happened so benchmarks can compare the two
(Figure 5 validation).  I/O counters live in the buffer pool; this
module adds the CPU-side counters and combines both into one measured
cost figure using the same unit weights the cost model uses.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.physical.buffer import BufferStats

__all__ = ["RuntimeMetrics"]


#: ``slots=True`` (3.10+) because the counter increments are the
#: engine's hottest attribute writes (one per predicate/expression
#: evaluation); on 3.9 the class works identically, just with a dict.
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_SLOTS)
class RuntimeMetrics:
    """Counters accumulated during one plan evaluation."""

    predicate_evals: int = 0
    expr_evals: int = 0
    method_eval_weight: float = 0.0
    index_lookups: int = 0
    #: Fractional: PIJ lookups charge ``nblevels + nbleaves/||C1||``.
    index_page_reads: float = 0.0
    fix_iterations: int = 0
    #: Batches exchanged between operators (one per ``Batch`` an
    #: operator emitted).  The runtime twin of the cost model's
    #: per-batch overhead term: at ``batch_size=1`` this equals the
    #: tuple count, at larger sizes it shrinks by ~``1/batch_size``.
    batches: int = 0
    #: Column reads the operators performed: for every input batch a
    #: node consumed, one touch per column its predicate/projection/path
    #: actually reads, times the batch's rows.  Layout-invariant by
    #: construction (derived from the plan shape and batch lengths, not
    #: from how a kernel iterates), so row and columnar runs report the
    #: same number — the runtime twin of the cost model's
    #: ``column_touch`` term.
    column_touches: int = 0
    #: Kind-level rollup (``"sel"``, ``"ij"``, ...): kept for backward
    #: compatibility, but same-kind nodes collide here — per-node
    #: counts live in :attr:`tuples_by_node`.
    tuples_by_operator: Dict[str, int] = field(default_factory=dict)
    #: Tuples produced per plan node, keyed by the stable pre-order
    #: node ids of :func:`repro.obs.profile.assign_node_ids`.
    tuples_by_node: Dict[str, int] = field(default_factory=dict)
    buffer: BufferStats = field(default_factory=BufferStats)
    #: Distributed-fixpoint counters (all zero unless a plan ran with
    #: ``shards > 1``).  ``exchange_bytes`` counts the JSON frames of
    #: both legs — scattered delta partitions and gathered results —
    #: exactly as they would cross the wire.
    exchange_rounds: int = 0
    exchange_tuples: int = 0
    exchange_bytes: int = 0
    #: Widest shard fan-out any Fix in the plan actually used.
    shards_used: int = 0
    #: Per-shard attribution, keyed by shard index: tuples produced by
    #: operators evaluated on that shard, and the shard-local logical
    #: page reads its session charged.
    tuples_by_shard: Dict[int, int] = field(default_factory=dict)
    reads_by_shard: Dict[int, int] = field(default_factory=dict)
    #: Wire frames of both exchange legs (the unit the distributed
    #: cost model charges ``network_per_round`` against).
    exchange_frames: int = 0
    #: Coordinator seconds spent blocked on shard futures, and the sum
    #: of shard-side busy seconds those waits covered.
    barrier_wait_seconds: float = 0.0
    shard_busy_seconds: float = 0.0
    #: Per-round shard load (logical reads + tuples produced): the sum
    #: over rounds of the round's max-shard load and of its mean shard
    #: load.  ``observed_skew`` is their ratio — a round-weighted
    #: average of the per-round max/mean skew.
    shard_load_max: float = 0.0
    shard_load_mean: float = 0.0
    #: Profiler metering probes this execution paid for (0 when the
    #: run was not profiled) — the overhead governor's profile-side
    #: spend unit.
    obs_probes: int = 0

    def observed_skew(self) -> float:
        """Measured max/mean shard load across sharded rounds (>= 1.0;
        1.0 when the plan never ran sharded or load was balanced)."""
        if self.shard_load_mean <= 0:
            return 1.0
        return max(1.0, self.shard_load_max / self.shard_load_mean)

    def count_tuple(self, operator: str, node_id: Optional[str] = None) -> None:
        """Count one output tuple for an operator kind (and, when the
        engine knows it, the producing node)."""
        self.add_tuples(operator, node_id, 1)

    def add_tuples(
        self, operator: str, node_id: Optional[str], count: int
    ) -> None:
        """Bulk-count ``count`` output tuples.  The engine's iterators
        accumulate locally and flush once on exhaustion, keeping the
        per-tuple hot path free of dict updates."""
        if not count:
            return
        self.tuples_by_operator[operator] = (
            self.tuples_by_operator.get(operator, 0) + count
        )
        if node_id is not None:
            self.tuples_by_node[node_id] = (
                self.tuples_by_node.get(node_id, 0) + count
            )

    @property
    def total_tuples(self) -> int:
        """Total tuples produced across all operators."""
        return sum(self.tuples_by_operator.values())

    def measured_cost(
        self, page_read_cost: float = 1.0, eval_cost: float = 0.1
    ) -> float:
        """Combine the counters into one cost figure.

        Uses the same two unit weights as the paper's simplified model:
        ``pr`` per (physical or index) page read and ``ev`` per
        predicate evaluation; method invocations are weighted
        evaluations.
        """
        io = self.buffer.physical_reads + self.index_page_reads
        cpu = self.predicate_evals + self.method_eval_weight
        cost = io * page_read_cost + cpu * eval_cost
        if self.shards_used > 1:
            # Unit network weights mirror CostParameters' defaults
            # (network_per_tuple/network_per_round); literals here
            # because cost/ already imports the engine package.
            cost += self.exchange_tuples * 0.005 + self.exchange_frames * 0.05
        return cost

    def to_dict(self) -> dict:
        """JSON-serializable form, used by telemetry persistence
        (:mod:`repro.obs.history`) and the ``stats`` protocol op.

        The distributed counters appear only when a fixpoint actually
        ran sharded, keeping single-store payload shapes unchanged.
        """
        payload = {
            "predicate_evals": self.predicate_evals,
            "expr_evals": self.expr_evals,
            "method_eval_weight": round(self.method_eval_weight, 4),
            "index_lookups": self.index_lookups,
            "index_page_reads": round(self.index_page_reads, 4),
            "fix_iterations": self.fix_iterations,
            "batches": self.batches,
            "column_touches": self.column_touches,
            "physical_reads": self.buffer.physical_reads,
            "total_tuples": self.total_tuples,
            "tuples_by_node": dict(self.tuples_by_node),
        }
        if self.obs_probes:
            payload["obs_probes"] = self.obs_probes
        if self.shards_used:
            payload["shards_used"] = self.shards_used
            payload["exchange_rounds"] = self.exchange_rounds
            payload["exchange_tuples"] = self.exchange_tuples
            payload["exchange_bytes"] = self.exchange_bytes
            payload["exchange_frames"] = self.exchange_frames
            payload["barrier_wait_seconds"] = round(
                self.barrier_wait_seconds, 6
            )
            payload["shard_busy_seconds"] = round(self.shard_busy_seconds, 6)
            payload["observed_skew"] = round(self.observed_skew(), 4)
            payload["tuples_by_shard"] = {
                str(shard): count
                for shard, count in sorted(self.tuples_by_shard.items())
            }
            payload["reads_by_shard"] = {
                str(shard): count
                for shard, count in sorted(self.reads_by_shard.items())
            }
        return payload

    def merge(self, other: "RuntimeMetrics") -> None:
        """Accumulate another run's counters into this one."""
        self.predicate_evals += other.predicate_evals
        self.expr_evals += other.expr_evals
        self.method_eval_weight += other.method_eval_weight
        self.index_lookups += other.index_lookups
        self.index_page_reads += other.index_page_reads
        self.fix_iterations += other.fix_iterations
        self.batches += other.batches
        self.column_touches += other.column_touches
        for operator, count in other.tuples_by_operator.items():
            self.tuples_by_operator[operator] = (
                self.tuples_by_operator.get(operator, 0) + count
            )
        for node_id, count in other.tuples_by_node.items():
            self.tuples_by_node[node_id] = (
                self.tuples_by_node.get(node_id, 0) + count
            )
        self.exchange_rounds += other.exchange_rounds
        self.exchange_tuples += other.exchange_tuples
        self.exchange_bytes += other.exchange_bytes
        self.exchange_frames += other.exchange_frames
        self.barrier_wait_seconds += other.barrier_wait_seconds
        self.shard_busy_seconds += other.shard_busy_seconds
        self.shard_load_max += other.shard_load_max
        self.shard_load_mean += other.shard_load_mean
        self.obs_probes += other.obs_probes
        self.shards_used = max(self.shards_used, other.shards_used)
        for shard, count in other.tuples_by_shard.items():
            self.tuples_by_shard[shard] = (
                self.tuples_by_shard.get(shard, 0) + count
            )
        for shard, count in other.reads_by_shard.items():
            self.reads_by_shard[shard] = (
                self.reads_by_shard.get(shard, 0) + count
            )
