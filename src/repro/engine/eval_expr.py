"""Evaluation of value expressions and predicates over runtime bindings.

A *binding* maps variable names to runtime values: stored records, temp
tuples (records of a temporary extent), oids, or atomic values.  Path
evaluation over complex objects follows the paper's semantics:

* dereferencing an oid is a real object access (charged through the
  buffer pool);
* a path crossing a set/list-valued attribute is *multivalued* — a
  comparison over multivalued operands holds when **some** pair of
  reached values satisfies it (existential semantics, which is what
  "the works of Bach including a harpsichord" means);
* a method (computed attribute) is invoked on demand, charging its
  declared evaluation weight — the expensive-selection case that
  motivates the whole paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.physical.storage import ObjectStore, Oid, StoredRecord
from repro.querygraph.predicates import (
    COMPARISON_OPS,
    And,
    Comparison,
    Const,
    Expr,
    FunctionApp,
    Not,
    Or,
    PathRef,
    Predicate,
    TruePredicate,
)
from repro.engine.metrics import RuntimeMetrics

Binding = Dict[str, object]

__all__ = ["Binding", "ExpressionEvaluator", "normalize_value", "canonical_row"]


def normalize_value(value: object) -> object:
    """Normalize a runtime value for comparison: records become oids."""
    if isinstance(value, StoredRecord):
        return value.oid
    return value


def canonical_row(binding: Binding) -> tuple:
    """A hashable canonical form of a binding (for answer-set equality
    and for fixpoint duplicate elimination)."""
    items = []
    for key in sorted(binding):
        value = normalize_value(binding[key])
        if isinstance(value, (list, tuple)):
            value = tuple(normalize_value(v) for v in value)
        items.append((key, value))
    return tuple(items)


class ExpressionEvaluator:
    """Evaluates expressions and predicates against bindings.

    ``method_resolver(entity_name, attribute)`` returns a
    ``(compute, eval_weight)`` pair when the attribute is a computed
    attribute (method) of the entity's conceptual class, else None —
    injected by the engine, which knows the physical→conceptual map.

    ``charged`` controls whether oid dereferences go through the
    buffer-charging ``fetch`` (the executor) or the free ``peek`` (the
    reference evaluator computing ground truth).
    """

    def __init__(
        self,
        store: ObjectStore,
        metrics: RuntimeMetrics,
        method_resolver=None,
        charged: bool = True,
    ) -> None:
        self._store = store
        self._metrics = metrics
        self._method_resolver = method_resolver
        self._charged = charged

    # -- value access ----------------------------------------------------------

    def _deref(self, oid: Oid) -> StoredRecord:
        if self._charged:
            return self._store.fetch(oid)
        return self._store.peek(oid)

    def _attribute_values(self, value: object, attribute: str) -> List[object]:
        """Values reachable by one attribute hop from ``value``."""
        if isinstance(value, Oid):
            value = self._deref(value)
        if isinstance(value, StoredRecord):
            if attribute in value.values:
                result = value.values[attribute]
            else:
                result = self._invoke_method(value, attribute)
        elif isinstance(value, dict):
            if attribute not in value:
                raise ExecutionError(
                    f"tuple has no field {attribute!r} "
                    f"(fields: {sorted(value)})"
                )
            result = value[attribute]
        else:
            raise ExecutionError(
                f"cannot access attribute {attribute!r} of atomic value "
                f"{value!r}"
            )
        if result is None:
            return []
        if isinstance(result, (tuple, list)):
            return list(result)
        return [result]

    def _invoke_method(self, record: StoredRecord, attribute: str) -> object:
        if self._method_resolver is not None:
            resolved = self._method_resolver(record.entity, attribute)
            if resolved is not None:
                compute, weight = resolved
                self._metrics.method_eval_weight += weight
                return compute(record.values)
        raise ExecutionError(
            f"{record.entity!r} record has no attribute or method "
            f"{attribute!r}"
        )

    def path_values(self, binding: Binding, path: PathRef) -> List[object]:
        """All values reached by a path (existential expansion).

        Intermediate oids are dereferenced (charged); the final values
        are returned as-is (oids stay oids — a comparison of reference
        attributes compares identities, per the object model).
        """
        if path.var not in binding:
            raise ExecutionError(f"unbound variable {path.var!r}")
        current: List[object] = [binding[path.var]]
        for attribute in path.attrs:
            next_values: List[object] = []
            for value in current:
                next_values.extend(self._attribute_values(value, attribute))
            current = next_values
        return current

    # -- expressions ---------------------------------------------------------------

    def expr_values(self, binding: Binding, expr: Expr) -> List[object]:
        """All values of an expression (multivalued paths expand)."""
        self._metrics.expr_evals += 1
        if isinstance(expr, Const):
            return [expr.value]
        if isinstance(expr, PathRef):
            return self.path_values(binding, expr)
        if isinstance(expr, FunctionApp):
            argument_lists = [self.expr_values(binding, arg) for arg in expr.args]
            results: List[object] = []
            self._metrics.method_eval_weight += expr.eval_weight
            for combo in _product(argument_lists):
                if expr.fn is None:
                    raise ExecutionError(
                        f"function {expr.name!r} has no implementation"
                    )
                results.append(expr.fn(*combo))
            return results
        raise ExecutionError(f"unknown expression type {type(expr).__name__}")

    def expr_single(self, binding: Binding, expr: Expr) -> object:
        """The single value of an expression (None when empty; raises on
        genuinely multivalued results — output fields must be scalar)."""
        values = self.expr_values(binding, expr)
        if not values:
            return None
        if len(values) > 1:
            raise ExecutionError(
                f"expression {expr!r} is multivalued in an output position"
            )
        return values[0]

    # -- predicates -----------------------------------------------------------------

    def holds(self, binding: Binding, predicate: Predicate) -> bool:
        """Whether ``predicate`` holds on ``binding`` (existential
        semantics over multivalued paths); counts one evaluation."""
        self._metrics.predicate_evals += 1
        return self._holds(binding, predicate)

    def _holds(self, binding: Binding, predicate: Predicate) -> bool:
        if isinstance(predicate, TruePredicate):
            return True
        if isinstance(predicate, Comparison):
            op = COMPARISON_OPS[predicate.op]
            left_values = self.expr_values(binding, predicate.left)
            right_values = self.expr_values(binding, predicate.right)
            for left in left_values:
                for right in right_values:
                    try:
                        if op(normalize_value(left), normalize_value(right)):
                            return True
                    except TypeError:
                        continue
            return False
        if isinstance(predicate, And):
            return all(self._holds(binding, part) for part in predicate.parts)
        if isinstance(predicate, Or):
            return any(self._holds(binding, part) for part in predicate.parts)
        if isinstance(predicate, Not):
            return not self._holds(binding, predicate.part)
        raise ExecutionError(
            f"unknown predicate type {type(predicate).__name__}"
        )


def _product(lists: Sequence[List[object]]):
    if not lists:
        yield ()
        return
    head, rest = lists[0], lists[1:]
    for value in head:
        for suffix in _product(rest):
            yield (value,) + suffix
