"""Evaluation of value expressions and predicates over runtime bindings.

A *binding* maps variable names to runtime values: stored records, temp
tuples (records of a temporary extent), oids, or atomic values.  Path
evaluation over complex objects follows the paper's semantics:

* dereferencing an oid is a real object access (charged through the
  buffer pool);
* a path crossing a set/list-valued attribute is *multivalued* — a
  comparison over multivalued operands holds when **some** pair of
  reached values satisfies it (existential semantics, which is what
  "the works of Bach including a harpsichord" means);
* a method (computed attribute) is invoked on demand, charging its
  declared evaluation weight — the expensive-selection case that
  motivates the whole paper.

Predicates and expressions are *compiled once per AST node* into Python
closures (:meth:`ExpressionEvaluator.compile_predicate` /
:meth:`~ExpressionEvaluator.compile_expr` /
:meth:`~ExpressionEvaluator.compile_path`) and the closures are cached
per node, so evaluating the same predicate over a million bindings
walks the AST exactly once — the batch-vectorized engine applies the
compiled closure per binding without re-interpreting the tree.  The
``*_compilations`` counters exist so regression tests can prove the
cache works (compilation counts must not scale with tuple counts).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.engine.columns import (
    column_kinds,
    is_numeric_kinds,
    is_plain_kinds,
    numpy_backend,
)
from repro.physical.storage import ObjectStore, Oid, StoredRecord
from repro.querygraph.predicates import (
    COMPARISON_OPS,
    And,
    Comparison,
    Const,
    Expr,
    FunctionApp,
    Not,
    Or,
    PathRef,
    Predicate,
    TruePredicate,
)
from repro.engine.metrics import RuntimeMetrics

Binding = Dict[str, object]

__all__ = ["Binding", "ExpressionEvaluator", "normalize_value", "canonical_row"]

#: Sentinel distinguishing "attribute absent" from a stored None.
_MISSING = object()

#: ``const <op> path`` rewritten as ``path <mirrored op> const`` so the
#: fast comparison path applies regardless of operand order.
_MIRRORED_OPS = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


def normalize_value(value: object) -> object:
    """Normalize a runtime value for comparison: records become oids."""
    if isinstance(value, StoredRecord):
        return value.oid
    return value


def canonical_row(binding: Binding) -> tuple:
    """A hashable canonical form of a binding (for answer-set equality
    and for fixpoint duplicate elimination)."""
    items = []
    for key in sorted(binding):
        value = normalize_value(binding[key])
        if isinstance(value, (list, tuple)):
            value = tuple(normalize_value(v) for v in value)
        items.append((key, value))
    return tuple(items)


class ExpressionEvaluator:
    """Evaluates expressions and predicates against bindings.

    ``method_resolver(entity_name, attribute)`` returns a
    ``(compute, eval_weight)`` pair when the attribute is a computed
    attribute (method) of the entity's conceptual class, else None —
    injected by the engine, which knows the physical→conceptual map.

    ``charged`` controls whether oid dereferences go through the
    buffer-charging ``fetch`` (the executor) or the free ``peek`` (the
    reference evaluator computing ground truth).
    """

    def __init__(
        self,
        store: ObjectStore,
        metrics: RuntimeMetrics,
        method_resolver=None,
        charged: bool = True,
    ) -> None:
        self._store = store
        self._metrics = metrics
        self._method_resolver = method_resolver
        self._charged = charged
        # Compiled-closure caches, keyed by AST node identity.  The
        # cached tuples hold the node itself so its id() stays valid
        # for the evaluator's lifetime.
        self._compiled_predicates: Dict[
            int, Tuple[Predicate, Callable[[Binding], bool]]
        ] = {}
        self._compiled_inner: Dict[
            int, Tuple[Predicate, Callable[[Binding], bool]]
        ] = {}
        self._compiled_filters: Dict[
            int, Tuple[Predicate, Callable[[Sequence[Binding]], List[Binding]]]
        ] = {}
        self._compiled_exprs: Dict[
            int, Tuple[Expr, Callable[[Binding], List[object]]]
        ] = {}
        self._compiled_paths: Dict[
            int, Tuple[PathRef, Callable[[Binding], List[object]]]
        ] = {}
        self._compiled_kernels: Dict[int, Tuple[Predicate, Callable]] = {}
        self._compiled_value_walks: Dict[int, Tuple[PathRef, Callable]] = {}
        #: Compilation counters: how many closures were built.  Bounded
        #: by the number of distinct AST nodes, never by tuple counts.
        self.predicate_compilations = 0
        self.expr_compilations = 0
        self.path_compilations = 0

    # -- value access ----------------------------------------------------------

    def _deref(self, oid: Oid) -> StoredRecord:
        if self._charged:
            return self._store.fetch(oid)
        return self._store.peek(oid)

    def _attribute_values(self, value: object, attribute: str) -> List[object]:
        """Values reachable by one attribute hop from ``value``."""
        if isinstance(value, Oid):
            value = self._deref(value)
        if isinstance(value, StoredRecord):
            if attribute in value.values:
                result = value.values[attribute]
            else:
                result = self._invoke_method(value, attribute)
        elif isinstance(value, dict):
            if attribute not in value:
                raise ExecutionError(
                    f"tuple has no field {attribute!r} "
                    f"(fields: {sorted(value)})"
                )
            result = value[attribute]
        else:
            raise ExecutionError(
                f"cannot access attribute {attribute!r} of atomic value "
                f"{value!r}"
            )
        if result is None:
            return []
        if isinstance(result, (tuple, list)):
            return list(result)
        return [result]

    def _invoke_method(self, record: StoredRecord, attribute: str) -> object:
        if self._method_resolver is not None:
            resolved = self._method_resolver(record.entity, attribute)
            if resolved is not None:
                compute, weight = resolved
                self._metrics.method_eval_weight += weight
                return compute(record.values)
        raise ExecutionError(
            f"{record.entity!r} record has no attribute or method "
            f"{attribute!r}"
        )

    def path_values(self, binding: Binding, path: PathRef) -> List[object]:
        """All values reached by a path (existential expansion).

        Intermediate oids are dereferenced (charged); the final values
        are returned as-is (oids stay oids — a comparison of reference
        attributes compares identities, per the object model).
        """
        return self.compile_path(path)(binding)

    def compile_path(self, path: PathRef) -> Callable[[Binding], List[object]]:
        """The compiled navigation closure of a path (cached per node).

        Unlike :meth:`compile_expr` the returned closure does *not*
        count an expression evaluation — it matches the raw
        ``path_values`` contract the join operators rely on.
        """
        cached = self._compiled_paths.get(id(path))
        if cached is not None:
            return cached[1]
        walk = self._build_path(path)
        self._compiled_paths[id(path)] = (path, walk)
        self.path_compilations += 1
        return walk

    def _build_path(self, path: PathRef) -> Callable[[Binding], List[object]]:
        var = path.var
        attrs = tuple(path.attrs)
        attribute_values = self._attribute_values

        def walk(binding: Binding) -> List[object]:
            try:
                value = binding[var]
            except KeyError:
                raise ExecutionError(f"unbound variable {var!r}") from None
            current: List[object] = [value]
            for attribute in attrs:
                next_values: List[object] = []
                for value in current:
                    next_values.extend(attribute_values(value, attribute))
                current = next_values
            return current

        return walk

    def compile_path_from_value(
        self, path: PathRef
    ) -> Callable[[object], List[object]]:
        """The navigation closure of a path applied to an already-bound
        head value (cached per node) — the columnar twin of
        :meth:`compile_path`.  A column kernel iterates a head column
        and calls this per value, reaching exactly the values (and
        charging exactly the dereferences, in the same order) that
        ``compile_path`` would reach from ``binding[path.var]``."""
        cached = self._compiled_value_walks.get(id(path))
        if cached is not None:
            return cached[1]
        attrs = tuple(path.attrs)
        attribute_values = self._attribute_values

        def walk_from(value: object) -> List[object]:
            current: List[object] = [value]
            for attribute in attrs:
                next_values: List[object] = []
                for item in current:
                    next_values.extend(attribute_values(item, attribute))
                current = next_values
            return current

        self._compiled_value_walks[id(path)] = (path, walk_from)
        return walk_from

    # -- expressions ---------------------------------------------------------------

    def expr_values(self, binding: Binding, expr: Expr) -> List[object]:
        """All values of an expression (multivalued paths expand)."""
        return self.compile_expr(expr)(binding)

    def compile_expr(self, expr: Expr) -> Callable[[Binding], List[object]]:
        """The compiled value closure of an expression (cached per
        node).  Each call counts one expression evaluation, exactly as
        the interpreted ``expr_values`` did — sub-expressions of a
        ``FunctionApp`` count their own calls.  Callers must not
        mutate the returned list."""
        cached = self._compiled_exprs.get(id(expr))
        if cached is not None:
            return cached[1]
        fn = self._build_expr(expr)
        self._compiled_exprs[id(expr)] = (expr, fn)
        self.expr_compilations += 1
        return fn

    def _build_expr(self, expr: Expr) -> Callable[[Binding], List[object]]:
        metrics = self._metrics
        if isinstance(expr, Const):
            values = [expr.value]

            def const_values(binding: Binding) -> List[object]:
                metrics.expr_evals += 1
                return values

            return const_values
        if isinstance(expr, PathRef):
            walk = self._build_path(expr)
            if len(expr.attrs) == 1:
                # Fast path for the dominant shape: one stored
                # attribute of a directly bound record.  Oid deref,
                # temp tuples, methods and unbound variables fall back
                # to the generic walk (which also does the charging).
                var, attr = expr.var, expr.attrs[0]

                def fast_path_values(binding: Binding) -> List[object]:
                    metrics.expr_evals += 1
                    value = binding.get(var)
                    if type(value) is StoredRecord:
                        raw = value.values.get(attr, _MISSING)
                        if raw is not _MISSING:
                            if raw is None:
                                return []
                            if isinstance(raw, (list, tuple)):
                                return list(raw)
                            return [raw]
                    return walk(binding)

                return fast_path_values

            def path_expr_values(binding: Binding) -> List[object]:
                metrics.expr_evals += 1
                return walk(binding)

            return path_expr_values
        if isinstance(expr, FunctionApp):
            arg_fns = [self.compile_expr(arg) for arg in expr.args]
            fn, name, weight = expr.fn, expr.name, expr.eval_weight

            def app_values(binding: Binding) -> List[object]:
                metrics.expr_evals += 1
                argument_lists = [arg_fn(binding) for arg_fn in arg_fns]
                results: List[object] = []
                metrics.method_eval_weight += weight
                for combo in _product(argument_lists):
                    if fn is None:
                        raise ExecutionError(
                            f"function {name!r} has no implementation"
                        )
                    results.append(fn(*combo))
                return results

            return app_values
        raise ExecutionError(f"unknown expression type {type(expr).__name__}")

    def expr_single(self, binding: Binding, expr: Expr) -> object:
        """The single value of an expression (None when empty; raises on
        genuinely multivalued results — output fields must be scalar)."""
        values = self.expr_values(binding, expr)
        if not values:
            return None
        if len(values) > 1:
            raise ExecutionError(
                f"expression {expr!r} is multivalued in an output position"
            )
        return values[0]

    # -- predicates -----------------------------------------------------------------

    def holds(self, binding: Binding, predicate: Predicate) -> bool:
        """Whether ``predicate`` holds on ``binding`` (existential
        semantics over multivalued paths); counts one evaluation."""
        return self.compile_predicate(predicate)(binding)

    def compile_predicate(
        self, predicate: Predicate
    ) -> Callable[[Binding], bool]:
        """The compiled boolean closure of a predicate (cached per
        node).  Each call counts one predicate evaluation — the same
        top-level accounting the interpreted ``holds`` performed; the
        conjuncts/disjuncts inside a composite predicate do not count
        separately."""
        cached = self._compiled_predicates.get(id(predicate))
        if cached is not None:
            return cached[1]
        metrics = self._metrics
        inner = self._inner_predicate(predicate)

        def evaluate(binding: Binding) -> bool:
            metrics.predicate_evals += 1
            return inner(binding)

        self._compiled_predicates[id(predicate)] = (predicate, evaluate)
        return evaluate

    def compile_filter(
        self, predicate: Predicate
    ) -> Callable[[Sequence[Binding]], List[Binding]]:
        """The compiled *batch* filter of a predicate (cached per
        node): one call filters a whole batch of bindings, updating
        the evaluation counter once per batch instead of once per row
        — the vectorized twin of :meth:`compile_predicate`, with the
        identical per-row truth values and the identical final
        ``predicate_evals`` total."""
        cached = self._compiled_filters.get(id(predicate))
        if cached is not None:
            return cached[1]
        metrics = self._metrics
        inner = self._inner_predicate(predicate)

        def filter_rows(rows: Sequence[Binding]) -> List[Binding]:
            metrics.predicate_evals += len(rows)
            return [row for row in rows if inner(row)]

        self._compiled_filters[id(predicate)] = (predicate, filter_rows)
        return filter_rows

    def compile_filter_kernel(
        self, predicate: Predicate
    ) -> Callable[["object"], List[int]]:
        """The compiled *column* kernel of a predicate (cached per
        node): one call filters a whole columnar batch, returning the
        selected row positions.  Counter parity with the row paths is
        exact — ``predicate_evals`` counts once per row, and the
        vectorized passes replicate the ``expr_evals`` accounting of
        the fast row closures, short-circuit included.  A batch whose
        filter column is not uniformly vectorizable (a non-record
        binding, a missing/None/record/collection attribute anywhere in
        the column) is filtered row-at-a-time through the *same* inner
        closure the row layout uses, preserving per-row evaluation and
        buffer-charge order, so the counters cannot diverge."""
        cached = self._compiled_kernels.get(id(predicate))
        if cached is not None:
            return cached[1]
        metrics = self._metrics
        inner = self._inner_predicate(predicate)
        column_pass = self._build_column_pass(predicate)

        def kernel(batch) -> List[int]:
            metrics.predicate_evals += len(batch)
            if column_pass is not None:
                selected = column_pass(batch)
                if selected is not None:
                    return selected
            rows = batch.rows
            return [i for i, row in enumerate(rows) if inner(row)]

        self._compiled_kernels[id(predicate)] = (predicate, kernel)
        return kernel

    def _build_column_pass(
        self, predicate: Predicate
    ) -> Optional[Callable[["object"], Optional[List[int]]]]:
        """The vectorized single-pass evaluator of a predicate over a
        columnar batch, or None when the predicate shape has no column
        form.  The returned pass itself returns None when *this batch*
        is not uniformly vectorizable — the kernel then falls back to
        the row closure for the whole batch."""
        if isinstance(predicate, TruePredicate):
            return lambda batch: list(range(len(batch)))
        if isinstance(predicate, Comparison):
            spec = self._fast_spec(predicate)
            if spec is None:
                return None
            return self._column_comparison(spec)
        if isinstance(predicate, And) and len(predicate.parts) == 2:
            first = self._fast_spec(predicate.parts[0])
            second = self._fast_spec(predicate.parts[1])
            if first is None or second is None:
                return None
            if first[0] != second[0] or first[1] != second[1]:
                return None
            return self._column_conjunction(first, second)
        return None

    @staticmethod
    def _extract_plain_column(column, attr):
        """``(raw values, kinds)`` of ``column[i].values[attr]`` when
        every element is a stored record with a plain scalar for
        ``attr``; None otherwise (the whole batch then takes the row
        path, keeping any charging and counting in row order)."""
        if column_kinds(column) != {StoredRecord}:
            return None
        try:
            raws = [record.values[attr] for record in column]
        except KeyError:
            return None
        kinds = column_kinds(raws)
        if not is_plain_kinds(kinds):
            return None
        return raws, kinds

    def _column_comparison(self, spec):
        """One vectorized pass for ``record.attr <op> constant`` over a
        column: ``expr_evals`` counts two per row, exactly as
        ``_fast_comparison`` does row-at-a-time."""
        metrics = self._metrics
        var, attr, op, const = spec
        const_numeric = type(const) in (int, float)

        def column_pass(batch) -> Optional[List[int]]:
            columns = batch._columns
            if columns is None:
                return None
            column = columns.get(var)
            if column is None:
                return None
            extracted = self._extract_plain_column(column, attr)
            if extracted is None:
                return None
            raws, kinds = extracted
            metrics.expr_evals += 2 * len(raws)
            if const_numeric and is_numeric_kinds(kinds):
                np = numpy_backend()
                if np is not None:
                    mask = op(np.asarray(raws), const)
                    return np.flatnonzero(mask).tolist()
            try:
                return [i for i, raw in enumerate(raws) if op(raw, const)]
            except TypeError:
                selected = []
                for i, raw in enumerate(raws):
                    try:
                        if op(raw, const):
                            selected.append(i)
                    except TypeError:
                        continue
                return selected

        return column_pass

    def _column_conjunction(self, first, second):
        """One fused vectorized pass for ``lo <= record.attr <= hi``-
        style same-attribute conjunctions: a single column read feeds
        both comparisons.  The ``expr_evals`` accounting replicates the
        fused row closure exactly — two per row for the first
        comparison, two more only for the rows where it passed."""
        metrics = self._metrics
        var, attr, first_op, first_const = first
        second_op, second_const = second[2], second[3]
        consts_numeric = (
            type(first_const) in (int, float)
            and type(second_const) in (int, float)
        )

        def column_pass(batch) -> Optional[List[int]]:
            columns = batch._columns
            if columns is None:
                return None
            column = columns.get(var)
            if column is None:
                return None
            extracted = self._extract_plain_column(column, attr)
            if extracted is None:
                return None
            raws, kinds = extracted
            if consts_numeric and is_numeric_kinds(kinds):
                np = numpy_backend()
                if np is not None:
                    array = np.asarray(raws)
                    first_mask = first_op(array, first_const)
                    passed = int(first_mask.sum())
                    metrics.expr_evals += 2 * len(raws) + 2 * passed
                    mask = first_mask & second_op(array, second_const)
                    return np.flatnonzero(mask).tolist()
            selected: List[int] = []
            passed = 0
            for i, raw in enumerate(raws):
                try:
                    if not first_op(raw, first_const):
                        continue
                except TypeError:
                    continue
                passed += 1
                try:
                    if second_op(raw, second_const):
                        selected.append(i)
                except TypeError:
                    continue
            metrics.expr_evals += 2 * len(raws) + 2 * passed
            return selected

        return column_pass

    def _inner_predicate(
        self, predicate: Predicate
    ) -> Callable[[Binding], bool]:
        """The uncounted compiled closure of a predicate, shared by
        the per-row and per-batch entry points.  Compiling (walking
        the AST into closures) happens here, so the compilation
        counter measures real builds no matter which entry point
        triggered them."""
        cached = self._compiled_inner.get(id(predicate))
        if cached is not None:
            return cached[1]
        inner = self._build_predicate(predicate)
        self._compiled_inner[id(predicate)] = (predicate, inner)
        self.predicate_compilations += 1
        return inner

    def _build_predicate(
        self, predicate: Predicate
    ) -> Callable[[Binding], bool]:
        if isinstance(predicate, TruePredicate):
            return lambda binding: True
        if isinstance(predicate, Comparison):
            op = COMPARISON_OPS[predicate.op]
            left = self.compile_expr(predicate.left)
            right = self.compile_expr(predicate.right)

            def compare(binding: Binding) -> bool:
                left_values = left(binding)
                right_values = right(binding)
                for left_value in left_values:
                    left_norm = normalize_value(left_value)
                    for right_value in right_values:
                        try:
                            if op(left_norm, normalize_value(right_value)):
                                return True
                        except TypeError:
                            continue
                return False

            fast = self._fast_comparison(predicate, op, compare)
            return fast if fast is not None else compare
        if isinstance(predicate, And):
            parts = [self._build_predicate(part) for part in predicate.parts]
            if len(parts) == 2:
                # The dominant shape (a range or a filter + join
                # conjunct); skipping the loop machinery is measurable
                # at scan speed.
                first, second = parts
                two_part = (
                    lambda binding: first(binding) and second(binding)
                )
                fused = self._fast_conjunction(predicate, two_part)
                return fused if fused is not None else two_part

            def conjunction(binding: Binding) -> bool:
                for part in parts:
                    if not part(binding):
                        return False
                return True

            return conjunction
        if isinstance(predicate, Or):
            parts = [self._build_predicate(part) for part in predicate.parts]

            def disjunction(binding: Binding) -> bool:
                for part in parts:
                    if part(binding):
                        return True
                return False

            return disjunction
        if isinstance(predicate, Not):
            inner = self._build_predicate(predicate.part)
            return lambda binding: not inner(binding)
        raise ExecutionError(
            f"unknown predicate type {type(predicate).__name__}"
        )

    @staticmethod
    def _fast_spec(
        predicate: Predicate,
    ) -> Optional[Tuple[str, str, Callable, object]]:
        """``(var, attr, op, normalized const)`` when ``predicate`` is
        a ``record.attr <op> constant`` comparison (in either operand
        order), else None."""
        if not isinstance(predicate, Comparison):
            return None
        left, right = predicate.left, predicate.right
        op_name = predicate.op
        if isinstance(left, Const) and isinstance(right, PathRef):
            op_name = _MIRRORED_OPS.get(op_name)
            if op_name is None:
                return None
            left, right = right, left
        if not (
            isinstance(left, PathRef)
            and len(left.attrs) == 1
            and isinstance(right, Const)
        ):
            return None
        return (
            left.var,
            left.attrs[0],
            COMPARISON_OPS[op_name],
            normalize_value(right.value),
        )

    def _fast_comparison(
        self,
        predicate: Comparison,
        op,
        slow: Callable[[Binding], bool],
    ) -> Optional[Callable[[Binding], bool]]:
        """A short-circuit closure for ``record.attr <op> constant``,
        the dominant filter shape.  Counts the same two expression
        evaluations the generic ``compare`` would; any uncommon shape
        (oid deref, record- or multivalued attribute, method, temp
        tuple, unbound variable) defers to ``slow``, whose compiled
        operand closures do their own counting and buffer charging."""
        spec = self._fast_spec(predicate)
        if spec is None:
            return None
        metrics = self._metrics
        var, attr, op, const_norm = spec

        def fast_compare(binding: Binding) -> bool:
            value = binding.get(var)
            if type(value) is StoredRecord:
                raw = value.values.get(attr, _MISSING)
                if (
                    raw is not _MISSING
                    and raw is not None
                    and not isinstance(raw, (StoredRecord, list, tuple))
                ):
                    metrics.expr_evals += 2
                    try:
                        return op(raw, const_norm)
                    except TypeError:
                        return False
            return slow(binding)

        return fast_compare

    def _fast_conjunction(
        self,
        predicate: And,
        slow: Callable[[Binding], bool],
    ) -> Optional[Callable[[Binding], bool]]:
        """One fused closure for ``lo <= record.attr <= hi``-style
        conjunctions — two constant comparisons on the *same* stored
        attribute share a single binding and attribute fetch.  The
        expression-evaluation counts replicate the generic path
        exactly, including the short-circuit (the second comparison's
        operands are only counted when the first passed)."""
        if len(predicate.parts) != 2:
            return None
        first = self._fast_spec(predicate.parts[0])
        second = self._fast_spec(predicate.parts[1])
        if first is None or second is None:
            return None
        if first[0] != second[0] or first[1] != second[1]:
            return None
        metrics = self._metrics
        var, attr, first_op, first_const = first
        second_op, second_const = second[2], second[3]

        def fused(binding: Binding) -> bool:
            value = binding.get(var)
            if type(value) is StoredRecord:
                raw = value.values.get(attr, _MISSING)
                if (
                    raw is not _MISSING
                    and raw is not None
                    and not isinstance(raw, (StoredRecord, list, tuple))
                ):
                    metrics.expr_evals += 2
                    try:
                        if not first_op(raw, first_const):
                            return False
                    except TypeError:
                        return False
                    metrics.expr_evals += 2
                    try:
                        return second_op(raw, second_const)
                    except TypeError:
                        return False
            return slow(binding)

        return fused


def _product(lists: Sequence[List[object]]):
    if not lists:
        yield ()
        return
    head, rest = lists[0], lists[1:]
    for value in head:
        for suffix in _product(rest):
            yield (value,) + suffix
