"""Per-execution settings for the engine.

:class:`ExecutionContext` bundles everything that varies per run of a
plan — the cancellation token, the optional profiler and the
``parallelism`` / ``batch_size`` / ``shards`` knobs — so callers (CLI,
service, tests) thread one object instead of a growing keyword list.
``Engine.execute`` still accepts the individual keywords for
convenience; an explicit context wins over them.

All integer knobs are validated in one place
(:func:`validate_knob`, called from ``__post_init__``), so every
entry point — the context, the engine constructor, the service's
protocol fields — rejects a bad value with the same message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.engine.batch import BATCH_LAYOUTS
from repro.engine.cancel import CancellationToken
from repro.obs.profile import PlanProfiler

__all__ = ["ExecutionContext", "validate_choice", "validate_knob"]


def validate_knob(name: str, value: Optional[int], minimum: int = 1) -> None:
    """Validate one integer execution knob; ``None`` is always allowed
    (it means "use the configured default").  Raises :class:`ValueError`
    with the shared ``"<name> must be >= <minimum>"`` message."""
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer >= {minimum}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}")


def validate_choice(
    name: str, value: Optional[str], choices: Sequence[str]
) -> None:
    """Validate one enumerated knob (e.g. the per-request optimizer
    ``strategy``); ``None`` is always allowed.  Raises
    :class:`ValueError` listing the accepted values."""
    if value is None:
        return
    if not isinstance(value, str) or value not in choices:
        accepted = ", ".join(choices)
        raise ValueError(f"{name} must be one of: {accepted}")


@dataclass
class ExecutionContext:
    """Knobs for one ``Engine.execute`` call."""

    #: Cooperative cancellation/timeout token, polled at safe points.
    cancel: Optional[CancellationToken] = None
    #: Per-node runtime profiler (EXPLAIN ANALYZE); None = no metering.
    profiler: Optional[PlanProfiler] = None
    #: Worker threads a fixpoint may use; 1 = serial semi-naive loop,
    #: >1 = hash-partitioned parallel evaluation
    #: (:mod:`repro.engine.parallel`).
    parallelism: int = 1
    #: Bindings per batch exchanged between operators; None keeps the
    #: engine's configured size, 1 pins the exact tuple-at-a-time
    #: compatibility semantics.
    batch_size: Optional[int] = None
    #: Operator exchange layout (``"row"`` or ``"columnar"``); None
    #: keeps the engine's configured layout.  ``"row"`` pins the
    #: row-list compatibility semantics bit-for-bit.
    batch_layout: Optional[str] = None
    #: Shard workers a fixpoint may scatter delta partitions across;
    #: 1 = single-store evaluation, >1 = the distributed scatter-gather
    #: rounds of :mod:`repro.dist` (requires a cluster on the engine).
    shards: int = 1

    def __post_init__(self) -> None:
        validate_knob("parallelism", self.parallelism)
        validate_knob("batch_size", self.batch_size)
        validate_choice("batch_layout", self.batch_layout, BATCH_LAYOUTS)
        validate_knob("shards", self.shards)
