"""Per-execution settings for the engine.

:class:`ExecutionContext` bundles everything that varies per run of a
plan — the cancellation token, the optional profiler and the
``parallelism`` knob — so callers (CLI, service, tests) thread one
object instead of a growing keyword list.  ``Engine.execute`` still
accepts the individual keywords for convenience; an explicit context
wins over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.cancel import CancellationToken
from repro.obs.profile import PlanProfiler

__all__ = ["ExecutionContext"]


@dataclass
class ExecutionContext:
    """Knobs for one ``Engine.execute`` call."""

    #: Cooperative cancellation/timeout token, polled at safe points.
    cancel: Optional[CancellationToken] = None
    #: Per-node runtime profiler (EXPLAIN ANALYZE); None = no metering.
    profiler: Optional[PlanProfiler] = None
    #: Worker threads a fixpoint may use; 1 = serial semi-naive loop,
    #: >1 = hash-partitioned parallel evaluation
    #: (:mod:`repro.engine.parallel`).
    parallelism: int = 1
    #: Bindings per batch exchanged between operators; None keeps the
    #: engine's configured size, 1 pins the exact tuple-at-a-time
    #: compatibility semantics.
    batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
