"""Hash-partitioned parallel semi-naive fixpoint evaluation.

The serial loop in :mod:`repro.engine.fixpoint` evaluates every union
part and the whole delta on one thread; this module spreads the same
work over a pool:

* **base round** — every non-recursive part becomes one pool task;
* **delta rounds** — a recursive part whose recursion reference sits on
  its driving (outer) chain has the current delta hash-partitioned on
  the recursion-binding columns into one slice per worker, so each
  worker owns a disjoint slice of new-tuple discovery; parts that
  cannot be partitioned without changing their operator semantics run
  as a single whole-delta task (still concurrent with the others).

Workers deduplicate into a shared seen-set under a striped lock and
serialize store inserts (the simulated store is a single-writer
structure); everything a worker counts goes to thread-confined
:class:`~repro.engine.metrics.RuntimeMetrics` / profiler views that
are flushed into the coordinating engine's on merge.  The partition is
deterministic, dedup is on full tuples, and semi-naive round
boundaries are barriers — so the answer set, the per-round deltas and
the per-node tuple counts are identical to the serial evaluator's
regardless of thread interleaving (the property the differential
harness in ``tests/test_differential_parallel.py`` checks).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from queue import SimpleQueue
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FixpointLimitError
from repro.engine.fixpoint import (
    key_of_normalized,
    normalize_binding,
    normalized_columns,
    partition_parts,
)
from repro.physical.storage import StoredRecord
from repro.plans.nodes import (
    EJ,
    IJ,
    PIJ,
    Fix,
    Materialize,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
)

__all__ = [
    "parallel_safe",
    "partitionable",
    "partition_delta",
    "run_fixpoint_parallel",
]

#: Number of lock stripes protecting the shared seen-set (power of 2).
SEEN_STRIPES = 16

#: Test seam: when set, called as ``hook(stage, part)`` with stage
#: ``"task_start"`` / ``"task_end"`` from inside every worker task.
#: Tests install barriers here to force adversarial interleavings (all
#: workers hammering the striped seen-set at once) or raise from a
#: worker thread to exercise error propagation.  Never set in
#: production paths.
INTERLEAVE_HOOK: Optional[Callable[[str, PlanNode], None]] = None


def parallel_safe(fix: Fix) -> bool:
    """Whether a Fix body may be evaluated by concurrent workers.

    A nested ``Fix`` or ``Materialize`` inside a part registers
    temporaries and consults the per-execution fix cache — shared
    mutable state whose dedup-by-caching makes tuple counts depend on
    evaluation order.  Such bodies take the serial path.
    """
    return not any(
        isinstance(node, (Fix, Materialize)) for node in fix.body.walk()
    )


def partitionable(part: PlanNode, name: str) -> bool:
    """Whether hash-partitioning the delta preserves ``part``'s
    semantics and per-node tuple counts.

    True when the part contains exactly one recursion reference and it
    sits on the driving (outer) chain — ``Sel``/``Proj``/``IJ``/``PIJ``
    descend to their child, ``EJ`` to its left operand.  Every other
    operator's work is then a function of the delta tuples flowing
    past it, so counts are additive over disjoint slices.  A recursion
    reference on an inner (re-scanned) side would instead be rescanned
    per slice, multiplying the outer side's work.
    """
    references = [
        node
        for node in part.walk()
        if isinstance(node, RecLeaf) and node.name == name
    ]
    if len(references) != 1:
        return False
    node = part
    while True:
        if isinstance(node, RecLeaf):
            return node.name == name
        if isinstance(node, (Sel, Proj, IJ, PIJ)):
            node = node.child
        elif isinstance(node, EJ):
            node = node.left
        else:
            return False


def _rebinding_fields(fix: Fix, delta: Sequence[StoredRecord]) -> List[str]:
    """The recursion-binding columns: the tuple fields rewritten from
    one iteration to the next (everything but the invariant fields).
    Falls back to the full field set when all fields are invariant."""
    if not delta:
        return []
    fields = sorted(delta[0].values)
    rebinding = [f for f in fields if f not in fix.invariant_fields]
    return rebinding or fields


def partition_delta(
    delta: Sequence[StoredRecord],
    workers: int,
    fields: Sequence[str],
) -> List[List[StoredRecord]]:
    """Hash-partition delta records on their recursion-binding columns
    into ``workers`` (possibly empty) disjoint slices; deterministic
    for a given delta content."""
    slices: List[List[StoredRecord]] = [[] for _ in range(workers)]
    for record in delta:
        values = record.values
        key = tuple(values.get(field) for field in fields)
        try:
            index = hash(key) % workers
        except TypeError:  # an unhashable field value; rare but legal
            index = hash(repr(key)) % workers
        slices[index].append(record)
    return slices


class _StripedSeen:
    """The shared dedup set, striped so concurrent workers rarely
    contend on the same lock."""

    __slots__ = ("_locks", "_sets", "_mask")

    def __init__(self, stripes: int = SEEN_STRIPES) -> None:
        self._mask = stripes - 1
        self._locks = [threading.Lock() for _ in range(stripes)]
        self._sets: List[set] = [set() for _ in range(stripes)]

    def add(self, key: tuple) -> bool:
        """Insert ``key``; True when it was not present before."""
        stripe = hash(key) & self._mask
        with self._locks[stripe]:
            bucket = self._sets[stripe]
            if key in bucket:
                return False
            bucket.add(key)
            return True

    def add_batch(self, keys: Sequence[tuple]) -> List[bool]:
        """Insert a batch of keys; returns one freshness flag per key
        (order-aligned with ``keys``).  Keys are grouped by stripe so
        each stripe lock is taken at most once per batch; a duplicate
        *within* the batch is correctly reported stale because the
        first occurrence marks the bucket before the second probes it.
        """
        mask = self._mask
        flags = [False] * len(keys)
        by_stripe: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            by_stripe.setdefault(hash(key) & mask, []).append(position)
        for stripe, positions in by_stripe.items():
            with self._locks[stripe]:
                bucket = self._sets[stripe]
                for position in positions:
                    key = keys[position]
                    if key not in bucket:
                        bucket.add(key)
                        flags[position] = True
        return flags

    def add_batch_columns(
        self,
        sorted_names: Sequence[str],
        sorted_columns: Sequence[Sequence],
    ) -> List[bool]:
        """Column-slice form of :meth:`add_batch`: the keys are
        assembled row-wise from already-normalized column slices (in
        sorted field order, so they equal ``key_of_normalized`` of the
        corresponding binding) and claimed with the same stripe-grouped
        single-lock pass — no binding dicts are built to dedup."""
        keys = [
            tuple(zip(sorted_names, values))
            for values in zip(*sorted_columns)
        ]
        return self.add_batch(keys)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)


def run_fixpoint_parallel(
    engine,
    fix: Fix,
    delta_env: Dict[str, List[StoredRecord]],
    parallelism: int,
) -> str:
    """Evaluate ``fix`` semi-naively with a pool of worker threads;
    returns the temp entity name (same contract as the serial path).

    The coordinator (the calling thread) owns round boundaries, the
    iteration cap and profiler ``fix_iteration`` records; workers own
    part × delta-slice evaluation.  The first worker exception aborts
    the remaining tasks and re-raises in the coordinator, after which
    ``Engine.execute``'s cleanup drops the temporaries as usual.
    """
    temp_info = engine.physical.register_temp(fix.name)
    temp_name = temp_info.name
    engine.note_temp(temp_name)
    base_parts, recursive_parts = partition_parts(fix)

    seen = _StripedSeen()
    insert_lock = threading.Lock()
    abort = threading.Event()

    # One thread-confined engine view per pool thread, handed out per
    # task; their metrics/profiler views are flushed into the
    # coordinating engine after the run.
    contexts: "SimpleQueue" = SimpleQueue()
    workers = [engine.worker_clone() for _ in range(parallelism)]
    for worker in workers:
        contexts.put(worker)

    def run_task(part: PlanNode, env: Dict[str, List[StoredRecord]]):
        if abort.is_set():
            return []
        worker = contexts.get()
        hook = INTERLEAVE_HOOK
        try:
            if hook is not None:
                hook("task_start", part)
            fresh: List[StoredRecord] = []
            store = worker.store
            for batch in worker.iterate_batches(part, env):
                worker.check_cancelled()
                if abort.is_set():
                    break
                # Move the whole batch through dedup and insertion in
                # three set-oriented steps: normalize the slice, claim
                # the fresh keys with one striped-lock pass, then take
                # the insert lock once for all of the batch's inserts.
                # Columnar batches normalize column-wise and only build
                # binding dicts for the tuples that turn out fresh.
                if batch.is_columnar:
                    names, cols, sorted_names, sorted_cols = (
                        normalized_columns(batch.columns)
                    )
                    flags = seen.add_batch_columns(sorted_names, sorted_cols)
                    to_insert = [
                        {name: col[index] for name, col in zip(names, cols)}
                        for index, is_new in enumerate(flags)
                        if is_new
                    ]
                else:
                    normalized = [normalize_binding(b) for b in batch.rows]
                    flags = seen.add_batch(
                        [key_of_normalized(values) for values in normalized]
                    )
                    to_insert = [
                        values
                        for values, is_new in zip(normalized, flags)
                        if is_new
                    ]
                if not to_insert:
                    continue
                with insert_lock:
                    oids = [
                        store.insert(temp_name, values)
                        for values in to_insert
                    ]
                fresh.extend(store.peek(oid) for oid in oids)
            if hook is not None:
                hook("task_end", part)
            return fresh
        finally:
            contexts.put(worker)

    def run_round(tasks) -> List[StoredRecord]:
        futures = [pool.submit(run_task, part, env) for part, env in tasks]
        results: List[List[StoredRecord]] = []
        error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                abort.set()
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return [record for fresh in results for record in fresh]

    profiler = getattr(engine, "profiler", None)
    pool = ThreadPoolExecutor(
        max_workers=parallelism, thread_name_prefix=f"fix-{fix.name}"
    )
    try:
        # Base round: fan the non-recursive parts out across the pool.
        round_start = time.perf_counter()
        delta = run_round([(part, delta_env) for part in base_parts])
        if profiler is not None:
            profiler.fix_iteration(
                fix, 0, len(delta), time.perf_counter() - round_start
            )

        rebinding = _rebinding_fields(fix, delta)
        iterations = 0
        while delta:
            iterations += 1
            if iterations > engine.max_fix_iterations:
                raise FixpointLimitError(fix.name, engine.max_fix_iterations)
            engine.check_cancelled()
            engine.metrics.fix_iterations += 1
            round_start = time.perf_counter()
            tasks: List[Tuple[PlanNode, Dict[str, List[StoredRecord]]]] = []
            for part in recursive_parts:
                if partitionable(part, fix.name) and len(delta) > 1:
                    for piece in partition_delta(delta, parallelism, rebinding):
                        if not piece:
                            continue
                        env = dict(delta_env)
                        env[fix.name] = piece
                        tasks.append((part, env))
                else:
                    env = dict(delta_env)
                    env[fix.name] = delta
                    tasks.append((part, env))
            delta = run_round(tasks)
            if profiler is not None:
                profiler.fix_iteration(
                    fix,
                    iterations,
                    len(delta),
                    time.perf_counter() - round_start,
                )
    finally:
        abort.set()
        pool.shutdown(wait=True)
        for worker in workers:
            engine.absorb_worker(worker)
    return temp_name
