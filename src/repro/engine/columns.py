"""Column-store helpers for the columnar batch layout.

A columnar :class:`~repro.engine.batch.Batch` carries a dict of column
name → value list.  This module holds the small shared vocabulary the
column kernels need: the optional numpy backend (behind the ``fast``
extra, with a pure-Python fallback so the zero-dependency install keeps
working), cheap whole-column type classification (one C-level pass with
``set(map(type, column))`` instead of per-value ``isinstance`` chains),
and index-list gathering.

``REPRO_NO_NUMPY=1`` forces the pure-Python fallback even when numpy is
importable — the hook the no-numpy CI job and the columnar benchmark
use to measure the fallback on an image that ships numpy anyway.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

__all__ = [
    "numpy_backend",
    "column_kinds",
    "is_plain_kinds",
    "is_numeric_kinds",
    "has_structured_kinds",
    "gather",
    "gather_columns",
]

#: Value types the vectorized comparison kernels accept: plain atoms
#: whose comparisons cannot dereference, charge or recurse.  ``bool``
#: is deliberately *plain* (it compares as an int) but *not* numeric
#: below — the numpy path keeps away from bool/int dtype coercion.
_PLAIN_KINDS = frozenset({int, float, str, bool})
_NUMERIC_KINDS = frozenset({int, float})
_STRUCTURED_KINDS = frozenset({list, tuple, dict, set, frozenset})

_UNSET = object()
_numpy = _UNSET


def numpy_backend():
    """The numpy module, or None when unavailable or disabled.

    The import is attempted once and cached; the ``REPRO_NO_NUMPY``
    environment switch is consulted on every call so a test or
    benchmark can flip between the numpy and pure-Python column paths
    inside one process.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    global _numpy
    if _numpy is _UNSET:
        try:
            import numpy  # noqa: PLC0415 - optional ``fast`` extra

            _numpy = numpy
        except ImportError:
            _numpy = None
    return _numpy


def column_kinds(column: Sequence[object]) -> frozenset:
    """The set of concrete value types in a column (one C-level pass)."""
    return frozenset(map(type, column))


def is_plain_kinds(kinds: frozenset) -> bool:
    """Whether every value of a column with these kinds is a plain atom
    (no records, oids, collections or None — nothing a comparison could
    dereference or that the row-at-a-time fast path would reject)."""
    return kinds <= _PLAIN_KINDS


def is_numeric_kinds(kinds: frozenset) -> bool:
    """Whether a column with these kinds is safe for the numpy path."""
    return bool(kinds) and kinds <= _NUMERIC_KINDS


def has_structured_kinds(kinds: frozenset) -> bool:
    """Whether a column with these kinds holds any collection values
    (multivalued emission — column projections bail to row order so the
    multivalued-output error keeps its row-major raise point)."""
    return bool(kinds & _STRUCTURED_KINDS)


def gather(column: Sequence[object], indices: Sequence[int]) -> List[object]:
    """The values of one column at ``indices`` (order-preserving)."""
    return [column[i] for i in indices]


def gather_columns(
    columns: Dict[str, Sequence[object]],
    indices: Sequence[int],
    length: Optional[int] = None,
) -> Dict[str, List[object]]:
    """All columns gathered at ``indices``.  When ``indices`` selects
    every position of a column store of known ``length`` the input
    lists are reused unchanged — batches are immutable after emission,
    so a non-selective filter forwards its input columns for free."""
    if length is not None and len(indices) == length:
        return dict(columns)
    return {name: [col[i] for i in indices] for name, col in columns.items()}
