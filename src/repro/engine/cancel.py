"""Cooperative cancellation of running plan evaluations.

The semi-naive fixpoint loop can run for a long time (deep recursions,
large deltas), and a serving layer needs to bound it: a
:class:`CancellationToken` carries an optional wall-clock deadline and
an explicit cancel flag, and the engine polls it at safe points — each
fixpoint iteration, every batch of materialized tuples, every batch of
scanned records.  Cancellation is *graceful*: the check raises inside
the evaluation, the engine's normal cleanup drops the temporaries it
created, and the store is left consistent.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import ExecutionCancelled, ExecutionTimeout

__all__ = ["CancellationToken", "CHECK_INTERVAL"]

#: How many tuples the engine processes between token polls; polling is
#: two attribute reads plus (rarely) a clock call, so a small interval
#: keeps cancellation latency low without measurable overhead.
CHECK_INTERVAL = 128


class CancellationToken:
    """A cancel flag plus an optional deadline, polled by the engine.

    ``timeout`` is in seconds from token creation; ``clock`` is
    injectable for tests (defaults to :func:`time.monotonic`).
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self.deadline = clock() + timeout if timeout is not None else None
        self.timeout = timeout
        self._cancelled = False
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Request cancellation (thread-safe: a plain flag write)."""
        self._cancelled = True
        self.reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        return self.deadline is not None and self._clock() > self.deadline

    def check(self) -> None:
        """Raise if cancelled or past the deadline; otherwise no-op."""
        if self._cancelled:
            raise ExecutionCancelled(
                f"query cancelled: {self.reason or 'cancelled'}"
            )
        if self.deadline is not None and self._clock() > self.deadline:
            raise ExecutionTimeout(
                f"query exceeded its {self.timeout:.3f}s timeout"
            )
